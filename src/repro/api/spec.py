"""The declarative scenario tree: one serializable description per run.

A :class:`ScenarioSpec` captures everything a simulation run needs — the
workload (closed-loop draw or open-loop arrival process), the cluster
shape (homogeneous config, heterogeneous pools, or a federated fleet),
the scheduler, and the optional placement / async / autoscaler layers —
as a frozen dataclass tree that round-trips through JSON::

    spec = ScenarioSpec(
        scheduler=SchedulerSection("llmsched"),
        workload=WorkloadSection.closed_loop("mixed", num_jobs=300),
    )
    assert ScenarioSpec.from_json(spec.to_json()) == spec

Validation happens at construction time and raises :class:`SpecError`
(a ``ValueError``) with actionable messages: unknown scheduler / placement
/ router names list the available ones, and conflicting sections (pools +
cluster config, federation + autoscaler) name both offenders.  The spec is
resolved into live simulator objects by :mod:`repro.api.dispatch`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.api.prep import ExperimentSettings
from repro.core.llmsched import LLMSchedConfig
from repro.utils.canonical import content_hash
from repro.dag.task import TaskType
from repro.schedulers.registry import check_scheduler_kwargs
from repro.simulator.async_sched import (
    AsyncConfig,
    FixedLatency,
    PerJobLinearLatency,
    SampledLatency,
)
from repro.simulator.autoscaler import AutoscalerConfig
from repro.simulator.cluster import ClusterConfig
from repro.simulator.federation import MigrationConfig, available_job_routers
from repro.simulator.placement import available_placement_policies
from repro.simulator.pool import PoolSpec
from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    OpenLoopSpec,
    PoissonProcess,
    TraceReplayProcess,
    _Superposition,
    _Take,
    _Until,
)
from repro.workloads.mixtures import WorkloadSpec, WorkloadType
from repro.workloads.serving import available_token_mixes

__all__ = [
    "SCHEMA_VERSION",
    "SpecError",
    "SchedulerSection",
    "WorkloadSection",
    "ClusterSection",
    "PlacementSection",
    "AsyncSection",
    "AutoscalerSection",
    "MigrationSection",
    "SettingsSection",
    "SLOSection",
    "ScenarioSpec",
    "with_overrides",
]

#: Version stamped into every serialized spec; bumped on breaking changes.
#: v2 adds the token-level serving surface: an ``slo`` section (per-tier
#: TTFT/TPOT targets), ``token_mix`` / ``token_seed`` on the workload
#: section, and the prefill/decode ``role`` on pool specs.  v1 documents
#: are upcast on read (see :func:`_upcast_v1`): v1 predates every serving
#: construct, so a valid v1 spec is byte-for-byte a valid v2 spec.
SCHEMA_VERSION = 2

#: Sections that alias existing (already frozen, already validated) config
#: dataclasses: the spec tree embeds the real simulator configs, so resolving
#: a spec never copies fields around.
AutoscalerSection = AutoscalerConfig
MigrationSection = MigrationConfig
SettingsSection = ExperimentSettings


class SpecError(ValueError):
    """A scenario spec failed validation (message says how to fix it)."""


# --------------------------------------------------------------------------- #
# Generic (de)serialization helpers
# --------------------------------------------------------------------------- #
def _check_keys(data: Mapping, cls, where: str) -> None:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SpecError(
            f"unknown key(s) {unknown} in {where}; expected a subset of {sorted(known)}"
        )


def _config_to_dict(config) -> Dict[str, object]:
    """Flat dataclass -> dict, mapping enums to values and dropping Nones."""
    out: Dict[str, object] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if value is None:
            continue
        if isinstance(value, TaskType):
            value = value.value
        elif dataclasses.is_dataclass(value):
            value = _config_to_dict(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def _config_from_dict(cls, data: Mapping, where: str):
    _check_keys(data, cls, where)
    try:
        return cls(**dict(data))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"invalid {where}: {exc}") from exc


# --------------------------------------------------------------------------- #
# Arrival-process serialization
# --------------------------------------------------------------------------- #
_PROCESS_KINDS = {
    "poisson": PoissonProcess,
    "bursty": BurstyProcess,
    "diurnal": DiurnalProcess,
    "trace": TraceReplayProcess,
}


def process_to_dict(process: ArrivalProcess) -> Dict[str, object]:
    """Serialize an arrival process (including combinators) to a JSON dict."""
    if isinstance(process, _Take):
        return {"kind": "take", "count": process.count, "inner": process_to_dict(process.inner)}
    if isinstance(process, _Until):
        return {
            "kind": "until",
            "horizon": process.horizon,
            "inner": process_to_dict(process.inner),
        }
    if isinstance(process, _Superposition):
        return {"kind": "superpose", "processes": [process_to_dict(p) for p in process.processes]}
    for kind, cls in _PROCESS_KINDS.items():
        if type(process) is cls:
            payload = _config_to_dict(process)
            payload["kind"] = kind
            return payload
    raise SpecError(
        f"arrival process {type(process).__name__} is not serializable; "
        f"use one of {sorted(_PROCESS_KINDS)} or the take/until/superpose combinators"
    )


def process_from_dict(data: Mapping) -> ArrivalProcess:
    if not isinstance(data, Mapping) or "kind" not in data:
        raise SpecError('an arrival process needs a {"kind": ...} object')
    kind = data["kind"]
    body = {k: v for k, v in data.items() if k != "kind"}
    if kind == "take":
        return process_from_dict(body.get("inner", {})).take(int(body["count"]))
    if kind == "until":
        return process_from_dict(body.get("inner", {})).until(float(body["horizon"]))
    if kind == "superpose":
        inner = [process_from_dict(p) for p in body.get("processes", [])]
        if not inner:
            raise SpecError("superpose needs at least one inner process")
        return _Superposition(tuple(inner))
    cls = _PROCESS_KINDS.get(kind)
    if cls is None:
        raise SpecError(
            f"unknown arrival process kind {kind!r}; available: "
            f"{sorted(_PROCESS_KINDS) + ['take', 'until', 'superpose']}"
        )
    if cls is TraceReplayProcess:
        body["trace"] = tuple(float(v) for v in body.get("trace", ()))
    return _config_from_dict(cls, body, f"arrival process {kind!r}")


# --------------------------------------------------------------------------- #
# Sections
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SchedulerSection:
    """Which scheduler to run: a registry name plus constructor kwargs.

    For the LLMSched family the kwargs override fields of
    :class:`~repro.core.llmsched.LLMSchedConfig` (``epsilon``,
    ``sampling_ratio``, ...); for the baselines they pass through to the
    scheduler constructor.
    """

    name: str = "fcfs"
    kwargs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        try:
            check_scheduler_kwargs(self.name, self.kwargs)
        except ValueError as exc:
            raise SpecError(str(exc)) from None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name}
        if self.kwargs:
            out["kwargs"] = dict(self.kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "SchedulerSection":
        _check_keys(data, cls, "scheduler section")
        return cls(name=data.get("name", "fcfs"), kwargs=dict(data.get("kwargs", {})))


@dataclass(frozen=True)
class WorkloadSection:
    """The workload: a closed-loop draw or an open-loop arrival process.

    ``mode="closed"`` mirrors :class:`~repro.workloads.mixtures.WorkloadSpec`
    (one of the paper's four mixes, materialized up front);
    ``mode="open"`` mirrors :class:`~repro.workloads.arrivals.OpenLoopSpec`
    (jobs streamed lazily from ``process``).

    Schema v2: ``token_mix`` (chat / batch / agentic) attaches per-request
    ``prompt_tokens`` / ``output_tokens`` streams to every LLM task via
    :func:`repro.workloads.serving.attach_token_model`; ``token_seed``
    (defaults to the workload ``seed``) seeds that sampling independently
    of job generation.  Absent token fields mean the legacy JCT-only model
    — bit-identical traces.
    """

    mode: str = "closed"
    # Closed loop --------------------------------------------------------- #
    workload_type: str = "mixed"
    num_jobs: int = 300
    arrival_rate: float = 0.9
    # Open loop ----------------------------------------------------------- #
    process: Optional[ArrivalProcess] = None
    application_names: Optional[Tuple[str, ...]] = None
    max_jobs: Optional[int] = None
    horizon: Optional[float] = None
    name: str = "open_loop"
    # Shared -------------------------------------------------------------- #
    seed: int = 0
    # Token-level serving (schema v2) -------------------------------------- #
    token_mix: Optional[str] = None
    token_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.application_names is not None:
            object.__setattr__(self, "application_names", tuple(self.application_names))
        if self.mode not in ("closed", "open"):
            raise SpecError(f'workload mode must be "closed" or "open", not {self.mode!r}')
        if self.token_mix is not None and self.token_mix not in available_token_mixes():
            raise SpecError(
                f"unknown token_mix {self.token_mix!r}; available: {available_token_mixes()}"
            )
        if self.token_seed is not None and self.token_mix is None:
            raise SpecError("workload token_seed has no effect without a token_mix")
        if self.mode == "closed":
            try:
                WorkloadType(self.workload_type)
            except ValueError:
                raise SpecError(
                    f"unknown workload_type {self.workload_type!r}; available: "
                    f"{[w.value for w in WorkloadType]}"
                ) from None
            if self.process is not None:
                raise SpecError(
                    'a closed-loop workload draws its own Poisson arrivals; use mode="open" '
                    "to run an explicit arrival process"
                )
            if self.num_jobs <= 0:
                raise SpecError("workload num_jobs must be > 0")
            if self.arrival_rate <= 0:
                raise SpecError("workload arrival_rate must be > 0")
        else:
            if self.process is None:
                raise SpecError('an open-loop workload needs a "process" section')
            if self.max_jobs is not None and self.max_jobs <= 0:
                raise SpecError("workload max_jobs must be > 0 when given")
            if self.horizon is not None and self.horizon <= 0:
                raise SpecError("workload horizon must be > 0 when given")

    # Constructors -------------------------------------------------------- #
    @classmethod
    def closed_loop(
        cls,
        workload_type: str = "mixed",
        num_jobs: int = 300,
        arrival_rate: float = 0.9,
        seed: int = 0,
        token_mix: Optional[str] = None,
        token_seed: Optional[int] = None,
    ) -> "WorkloadSection":
        value = workload_type.value if isinstance(workload_type, WorkloadType) else workload_type
        return cls(
            mode="closed",
            workload_type=value,
            num_jobs=num_jobs,
            arrival_rate=arrival_rate,
            seed=seed,
            token_mix=token_mix,
            token_seed=token_seed,
        )

    @classmethod
    def open_loop(
        cls,
        process: ArrivalProcess,
        application_names: Optional[Sequence[str]] = None,
        seed: int = 0,
        max_jobs: Optional[int] = None,
        horizon: Optional[float] = None,
        name: str = "open_loop",
    ) -> "WorkloadSection":
        return cls(
            mode="open",
            process=process,
            application_names=tuple(application_names) if application_names else None,
            seed=seed,
            max_jobs=max_jobs,
            horizon=horizon,
            name=name,
        )

    @classmethod
    def from_workload_spec(cls, spec: WorkloadSpec) -> "WorkloadSection":
        return cls.closed_loop(
            spec.workload_type.value, spec.num_jobs, spec.arrival_rate, spec.seed
        )

    @classmethod
    def from_open_loop_spec(cls, spec: OpenLoopSpec) -> "WorkloadSection":
        return cls.open_loop(
            spec.process,
            application_names=spec.application_names,
            seed=spec.seed,
            max_jobs=spec.max_jobs,
            horizon=spec.horizon,
            name=spec.name,
        )

    # Resolution ---------------------------------------------------------- #
    def to_workload_spec(self) -> WorkloadSpec:
        if self.mode != "closed":
            raise SpecError("only closed-loop workload sections map to a WorkloadSpec")
        return WorkloadSpec(
            workload_type=WorkloadType(self.workload_type),
            num_jobs=self.num_jobs,
            arrival_rate=self.arrival_rate,
            seed=self.seed,
        )

    def to_open_loop_spec(self) -> OpenLoopSpec:
        if self.mode != "open":
            raise SpecError("only open-loop workload sections map to an OpenLoopSpec")
        return OpenLoopSpec(
            process=self.process,
            application_names=self.application_names,
            seed=self.seed,
            max_jobs=self.max_jobs,
            horizon=self.horizon,
            name=self.name,
        )

    # Serialization ------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        if self.mode == "closed":
            out: Dict[str, object] = {
                "mode": "closed",
                "workload_type": self.workload_type,
                "num_jobs": self.num_jobs,
                "arrival_rate": self.arrival_rate,
                "seed": self.seed,
            }
        else:
            out = {
                "mode": "open",
                "process": process_to_dict(self.process),
                "name": self.name,
                "seed": self.seed,
            }
            if self.application_names is not None:
                out["application_names"] = list(self.application_names)
            if self.max_jobs is not None:
                out["max_jobs"] = self.max_jobs
            if self.horizon is not None:
                out["horizon"] = self.horizon
        if self.token_mix is not None:
            out["token_mix"] = self.token_mix
        if self.token_seed is not None:
            out["token_seed"] = self.token_seed
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSection":
        _check_keys(data, cls, "workload section")
        body = dict(data)
        if body.get("process") is not None and not isinstance(body["process"], ArrivalProcess):
            body["process"] = process_from_dict(body["process"])
        return cls(**body)


@dataclass(frozen=True)
class ClusterSection:
    """The cluster shape: sized, explicit, heterogeneous, or federated.

    Exactly one of the single-cluster descriptions may be given:

    * ``config`` — an explicit homogeneous two-pool sizing;
    * ``pools`` — an explicit heterogeneous pool layout;
    * neither — the cluster is sized from the workload (closed-loop rate,
      or ``nominal_rate`` for open-loop processes without a ``rate``).

    ``num_shards > 1`` federates the fleet: the (explicit or sized) total
    ``config`` is split evenly across shards, jobs are routed by ``router``
    and ``migration`` enables cross-shard checkpoint rebalancing.
    """

    config: Optional[ClusterConfig] = None
    pools: Optional[Tuple[PoolSpec, ...]] = None
    num_shards: int = 1
    router: str = "least_loaded"
    router_kwargs: Mapping[str, object] = field(default_factory=dict)
    migration: Optional[MigrationConfig] = None
    nominal_rate: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "router_kwargs", dict(self.router_kwargs))
        if self.pools is not None:
            object.__setattr__(self, "pools", tuple(self.pools))
        if self.config is not None and self.pools is not None:
            raise SpecError(
                "cluster section sets both `config` and `pools`: pass either a homogeneous "
                "ClusterConfig or an explicit heterogeneous pool layout, not both"
            )
        if self.num_shards < 1:
            raise SpecError("cluster num_shards must be >= 1")
        if self.num_shards > 1:
            if self.pools is not None:
                raise SpecError(
                    "federated clusters (num_shards > 1) are built by splitting a total "
                    "ClusterConfig; explicit `pools` layouts are per-shard and not supported"
                )
            if self.router not in available_job_routers():
                raise SpecError(
                    f"unknown job router {self.router!r}; available: {available_job_routers()}"
                )
        elif self.migration is not None:
            raise SpecError(
                "cluster `migration` is cross-shard rebalancing; it requires num_shards > 1"
            )
        if self.nominal_rate is not None and self.nominal_rate <= 0:
            raise SpecError("cluster nominal_rate must be > 0 when given")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        if self.config is not None:
            out["config"] = _config_to_dict(self.config)
        if self.pools is not None:
            out["pools"] = [_config_to_dict(p) for p in self.pools]
        if self.num_shards != 1:
            out["num_shards"] = self.num_shards
        if self.num_shards != 1 or self.router != "least_loaded":
            out["router"] = self.router
        if self.router_kwargs:
            out["router_kwargs"] = dict(self.router_kwargs)
        if self.migration is not None:
            out["migration"] = _config_to_dict(self.migration)
        if self.nominal_rate is not None:
            out["nominal_rate"] = self.nominal_rate
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClusterSection":
        _check_keys(data, cls, "cluster section")
        body = dict(data)
        if body.get("config") is not None and not isinstance(body["config"], ClusterConfig):
            body["config"] = _config_from_dict(ClusterConfig, body["config"], "cluster config")
        if body.get("pools") is not None:
            body["pools"] = tuple(
                p if isinstance(p, PoolSpec) else _pool_from_dict(p) for p in body["pools"]
            )
        if body.get("migration") is not None and not isinstance(body["migration"], MigrationConfig):
            body["migration"] = _config_from_dict(
                MigrationConfig, body["migration"], "migration config"
            )
        return cls(**body)


def _pool_from_dict(data: Mapping) -> PoolSpec:
    body = dict(data)
    if "task_type" in body and not isinstance(body["task_type"], TaskType):
        try:
            body["task_type"] = TaskType(body["task_type"])
        except ValueError:
            raise SpecError(
                f"unknown pool task_type {body['task_type']!r}; available: "
                f"{[t.value for t in TaskType]}"
            ) from None
    return _config_from_dict(PoolSpec, body, "pool spec")


@dataclass(frozen=True)
class SLOSection:
    """Per-tier serving SLOs (schema v2): tier name → TTFT/TPOT targets.

    Tiers are the ``job.priority`` values assigned by the workload's token
    mix (``interactive`` / ``batch`` / ``default``); a tier absent from the
    map falls back to ``default`` and, failing that, is unconstrained.
    Targets are in seconds and feed both goodput accounting
    (:meth:`~repro.simulator.metrics.SimulationMetrics.serving_summary`) and
    the SLO-aware scheduler's admission/deadline logic.
    """

    tiers: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: Dict[str, Dict[str, float]] = {}
        for tier, targets in dict(self.tiers).items():
            if not isinstance(targets, Mapping):
                raise SpecError(
                    f'SLO tier {tier!r} must map to {{"ttft": seconds, "tpot": seconds}}'
                )
            unknown = sorted(set(targets) - {"ttft", "tpot"})
            if unknown:
                raise SpecError(
                    f"unknown SLO target(s) {unknown} for tier {tier!r}; "
                    'expected a subset of ["ttft", "tpot"]'
                )
            clean: Dict[str, float] = {}
            for key, value in targets.items():
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    raise SpecError(f"SLO {tier}.{key} must be a number, got {value!r}") from None
                if value <= 0:
                    raise SpecError(f"SLO {tier}.{key} must be > 0, got {value}")
                clean[key] = value
            if not clean:
                raise SpecError(f"SLO tier {tier!r} sets no targets; drop it or add ttft/tpot")
            normalized[tier] = clean
        if not normalized:
            raise SpecError("slo section needs at least one tier")
        object.__setattr__(self, "tiers", normalized)

    def targets(self) -> Dict[str, Dict[str, float]]:
        """A plain mutable copy (the shape SimulationMetrics.slo_targets takes)."""
        return {tier: dict(values) for tier, values in self.tiers.items()}

    def to_dict(self) -> Dict[str, object]:
        return {"tiers": self.targets()}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SLOSection":
        _check_keys(data, cls, "slo section")
        return cls(tiers=dict(data.get("tiers", {})))


@dataclass(frozen=True)
class PlacementSection:
    """Which placement policy decides the pool a task lands on."""

    name: str = "greedy"

    def __post_init__(self) -> None:
        if self.name not in available_placement_policies():
            raise SpecError(
                f"unknown placement policy {self.name!r}; available: "
                f"{available_placement_policies()}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlacementSection":
        _check_keys(data, cls, "placement section")
        return cls(**dict(data))


@dataclass(frozen=True)
class AsyncSection:
    """Asynchronous decision-latency scheduling, declaratively.

    ``kind`` picks the latency model: ``fixed`` (``latency`` seconds per
    decision), ``per_job_linear`` (``base + per_job * pending_jobs``) or
    ``sampled`` (drawn from ``samples`` with a seeded RNG).  ``pipelined``
    and ``max_in_flight`` mirror
    :class:`~repro.simulator.async_sched.AsyncConfig`.
    """

    kind: str = "fixed"
    latency: float = 0.0
    base: float = 0.0
    per_job: float = 0.01
    samples: Tuple[float, ...] = ()
    seed: int = 0
    pipelined: bool = False
    max_in_flight: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "samples", tuple(float(v) for v in self.samples))
        if self.kind not in ("fixed", "per_job_linear", "sampled"):
            raise SpecError(
                f'unknown async latency kind {self.kind!r}; available: '
                '["fixed", "per_job_linear", "sampled"]'
            )
        if self.latency < 0 or self.base < 0 or self.per_job < 0:
            raise SpecError("async latencies must be >= 0")
        if any(v < 0 for v in self.samples):
            raise SpecError("async latency samples must be >= 0")
        if self.kind == "sampled" and not self.samples:
            raise SpecError('async kind "sampled" needs a non-empty `samples` list')
        if self.max_in_flight < 1:
            raise SpecError("async max_in_flight must be >= 1")
        # Fields belonging to a *different* kind are rejected rather than
        # silently ignored: a grid overriding `async.latency` over a
        # "sampled" section would otherwise run identical cells.
        irrelevant = {
            "fixed": (("base", 0.0), ("per_job", 0.01), ("samples", ()), ("seed", 0)),
            "per_job_linear": (("latency", 0.0), ("samples", ()), ("seed", 0)),
            "sampled": (("latency", 0.0), ("base", 0.0), ("per_job", 0.01)),
        }
        for fname, default in irrelevant[self.kind]:
            if getattr(self, fname) != default:
                raise SpecError(
                    f"async field {fname!r} has no effect for kind {self.kind!r}; "
                    "drop it or switch the kind"
                )

    def to_async_config(self) -> AsyncConfig:
        if self.kind == "per_job_linear":
            latency = PerJobLinearLatency(base=self.base, per_job=self.per_job)
        elif self.kind == "sampled":
            latency = SampledLatency(list(self.samples), seed=self.seed)
        else:
            latency = self.latency
        return AsyncConfig(
            latency=latency, pipelined=self.pipelined, max_in_flight=self.max_in_flight
        )

    @classmethod
    def from_async_config(cls, config: Optional[AsyncConfig]) -> Optional["AsyncSection"]:
        """Best-effort declarative view of a live config.

        Returns ``None`` for ``None`` *and* for configs carrying latency
        models this schema cannot express (custom subclasses); callers that
        need exact behavior pass the live config through
        :func:`repro.api.run`'s ``async_config`` override as well.
        """
        if config is None:
            return None
        shared = {"pipelined": config.pipelined, "max_in_flight": config.max_in_flight}
        model = config.latency
        if isinstance(model, (int, float)):
            return cls(kind="fixed", latency=float(model), **shared)
        if type(model) is FixedLatency:
            return cls(kind="fixed", latency=model.seconds, **shared)
        if type(model) is PerJobLinearLatency:
            return cls(kind="per_job_linear", base=model.base, per_job=model.per_job, **shared)
        if type(model) is SampledLatency:
            return cls(
                kind="sampled", samples=tuple(model.samples), seed=model.seed, **shared
            )
        return None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        if self.kind == "fixed":
            out["latency"] = self.latency
        elif self.kind == "per_job_linear":
            out["base"] = self.base
            out["per_job"] = self.per_job
        else:
            out["samples"] = list(self.samples)
            out["seed"] = self.seed
        if self.pipelined:
            out["pipelined"] = True
        if self.max_in_flight != 2:
            out["max_in_flight"] = self.max_in_flight
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "AsyncSection":
        _check_keys(data, cls, "async section")
        body = dict(data)
        if "samples" in body:
            body["samples"] = tuple(body["samples"])
        return cls(**body)


# --------------------------------------------------------------------------- #
# Settings deserialization (ExperimentSettings + nested LLMSchedConfig;
# serialization is plain _config_to_dict, which recurses into llmsched)
# --------------------------------------------------------------------------- #
def _settings_from_dict(data: Mapping) -> ExperimentSettings:
    body = dict(data)
    if body.get("llmsched") is not None and not isinstance(body["llmsched"], LLMSchedConfig):
        body["llmsched"] = _config_from_dict(LLMSchedConfig, body["llmsched"], "llmsched config")
    return _config_from_dict(ExperimentSettings, body, "settings section")


# --------------------------------------------------------------------------- #
# Schema migration
# --------------------------------------------------------------------------- #
def _upcast_v1(data: Mapping) -> Dict[str, object]:
    """Upcast a schema_version-1 document to the v2 shape.

    v1 is a strict subset of v2 (v2 added the ``slo`` section, workload
    ``token_mix``/``token_seed``, and the pool ``role`` field), so the upcast
    is a re-stamp — but a v1 document that smuggles in v2-only constructs is
    mislabelled, and we reject it rather than guess what the author meant.
    """
    offenders = []
    if data.get("slo") is not None:
        offenders.append("top-level 'slo' section")
    workload = data.get("workload")
    if isinstance(workload, Mapping):
        for key in ("token_mix", "token_seed"):
            if workload.get(key) is not None:
                offenders.append(f"workload.{key}")
    cluster = data.get("cluster")
    if isinstance(cluster, Mapping):
        pools = cluster.get("pools")
        if isinstance(pools, Sequence):
            for i, pool in enumerate(pools):
                if isinstance(pool, Mapping) and pool.get("role") is not None:
                    offenders.append(f"cluster.pools[{i}].role")
    if offenders:
        raise SpecError(
            f"schema_version 1 spec uses v2-only construct(s): {offenders}; "
            f"stamp the document schema_version {SCHEMA_VERSION} instead"
        )
    out = dict(data)
    out["schema_version"] = SCHEMA_VERSION
    return out


# --------------------------------------------------------------------------- #
# The spec tree
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment scenario (see module docstring)."""

    scheduler: SchedulerSection = field(default_factory=SchedulerSection)
    workload: WorkloadSection = field(default_factory=WorkloadSection)
    cluster: ClusterSection = field(default_factory=ClusterSection)
    placement: Optional[PlacementSection] = None
    async_: Optional[AsyncSection] = None
    autoscaler: Optional[AutoscalerConfig] = None
    slo: Optional[SLOSection] = None
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ScenarioSpec":
        """Cross-section constraints; section-local rules run per section."""
        if self.schema_version != SCHEMA_VERSION:
            raise SpecError(
                f"unsupported spec schema_version {self.schema_version!r}; this build "
                f"reads version {SCHEMA_VERSION} (v1 documents are upcast automatically "
                "by ScenarioSpec.from_dict)"
            )
        if self.cluster.num_shards > 1:
            if self.workload.mode != "open":
                raise SpecError(
                    "federated clusters (num_shards > 1) are fed by an open-loop arrival "
                    'stream; use a workload section with mode="open"'
                )
            if self.autoscaler is not None:
                raise SpecError(
                    "autoscaling and federation cannot be combined yet: the autoscaler "
                    "resizes one cluster's pools, a federated fleet re-splits a fixed "
                    "total config (drop the autoscaler section or set num_shards=1)"
                )
            if self.placement is not None:
                raise SpecError(
                    "per-shard placement policies are not supported yet; drop the "
                    "placement section or set num_shards=1"
                )
            if self.workload.token_mix is not None:
                raise SpecError(
                    "token-level serving metrics are single-cluster for now: "
                    "FederationMetrics does not aggregate per-request token streams "
                    "(drop workload.token_mix or set num_shards=1)"
                )
        return self

    # Serialization ------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema_version": self.schema_version,
            "scheduler": self.scheduler.to_dict(),
            "workload": self.workload.to_dict(),
        }
        cluster = self.cluster.to_dict()
        if cluster:
            out["cluster"] = cluster
        if self.placement is not None:
            out["placement"] = self.placement.to_dict()
        if self.async_ is not None:
            out["async"] = self.async_.to_dict()
        if self.autoscaler is not None:
            out["autoscaler"] = _config_to_dict(self.autoscaler)
        if self.slo is not None:
            out["slo"] = self.slo.to_dict()
        out["settings"] = _config_to_dict(self.settings)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise SpecError("a scenario spec must be a JSON object")
        if data.get("schema_version", SCHEMA_VERSION) == 1:
            data = _upcast_v1(data)
        known = {
            "schema_version",
            "scheduler",
            "workload",
            "cluster",
            "placement",
            "async",
            "autoscaler",
            "slo",
            "settings",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown top-level key(s) {unknown} in scenario spec; "
                f"expected a subset of {sorted(known)}"
            )
        autoscaler = data.get("autoscaler")
        if autoscaler is not None and not isinstance(autoscaler, AutoscalerConfig):
            autoscaler = _config_from_dict(AutoscalerConfig, autoscaler, "autoscaler section")
        return cls(
            scheduler=SchedulerSection.from_dict(data.get("scheduler", {})),
            workload=WorkloadSection.from_dict(data.get("workload", {})),
            cluster=ClusterSection.from_dict(data.get("cluster", {})),
            placement=(
                PlacementSection.from_dict(data["placement"])
                if data.get("placement") is not None
                else None
            ),
            async_=(
                AsyncSection.from_dict(data["async"]) if data.get("async") is not None else None
            ),
            autoscaler=autoscaler,
            slo=(SLOSection.from_dict(data["slo"]) if data.get("slo") is not None else None),
            settings=_settings_from_dict(data.get("settings", {})),
            schema_version=data.get("schema_version", SCHEMA_VERSION),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def content_hash(self) -> str:
        """SHA-256 of the *canonical* serialized tree: the spec's identity.

        The hash is computed over :meth:`to_dict` rendered as canonical JSON
        (recursively sorted keys, fixed separators, shortest-round-trip float
        repr — see :mod:`repro.utils.canonical`), so equal specs hash equally
        regardless of dict insertion order or the formatting of any JSON file
        they round-tripped through: ``from_dict(to_dict(s)).content_hash()
        == s.content_hash()`` is a tested property.  This is the ``spec_hash``
        every :mod:`repro.store` record carries as provenance.
        """
        return content_hash(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # Convenience --------------------------------------------------------- #
    def with_scheduler(self, name: str, **kwargs) -> "ScenarioSpec":
        return replace(self, scheduler=SchedulerSection(name=name, kwargs=kwargs))


def with_overrides(spec: ScenarioSpec, overrides: Mapping[str, object]) -> ScenarioSpec:
    """A copy of ``spec`` with dotted-path overrides applied.

    Paths address the *serialized* tree (``"workload.arrival_rate"``,
    ``"scheduler.name"``, ``"async.latency"``, ``"cluster.num_shards"``), so
    every override value must be JSON-representable; intermediate objects
    (e.g. an ``async`` section) are created on demand with their defaults.
    This is the substrate of :func:`repro.api.run_grid`'s override axes.
    """
    data = spec.to_dict()
    for path, value in overrides.items():
        parts = path.split(".")
        node = data
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = {}
                node[part] = nxt
            node = nxt
        node[parts[-1]] = value
    return ScenarioSpec.from_dict(data)
