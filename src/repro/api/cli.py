"""``python -m repro`` — run declarative experiment specs from the shell.

Subcommands
-----------
``run <spec.json>``
    Resolve and run one scenario; print a summary, optionally write the
    full :class:`~repro.api.results.Result` JSON with ``--output``.
``grid <spec.json> --axis path=v1,v2,...``
    Fan the spec out over override axes (repeat ``--axis``), in parallel
    with ``--processes``.
``validate <spec.json> [...]``
    Parse + validate specs without running anything; exit 1 on the first
    invalid file with its actionable error.
``list-schedulers``
    Print every scheduler name :func:`repro.api.run` accepts, plus the
    available placement policies and job routers.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.api.dispatch import run as run_spec
from repro.api.grid import run_grid
from repro.api.results import Result
from repro.api.spec import ScenarioSpec, SpecError
from repro.schedulers.registry import available_schedulers
from repro.simulator.federation import available_job_routers
from repro.simulator.placement import available_placement_policies

__all__ = ["main"]


def _load_spec(path: str) -> ScenarioSpec:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path!r}: {exc}") from exc
    return ScenarioSpec.from_json(text)


def _parse_axis_value(raw: str) -> object:
    """Axis values are JSON when possible (2, 1.5, true), strings otherwise."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _parse_axes(pairs: Sequence[str]) -> Dict[str, List[object]]:
    axes: Dict[str, List[object]] = {}
    for pair in pairs:
        path, sep, values = pair.partition("=")
        if not sep or not path or not values:
            raise SpecError(
                f"invalid --axis {pair!r}; expected dotted.path=value1,value2,..."
            )
        axes[path] = [_parse_axis_value(v) for v in values.split(",")]
    return axes


def _summarize(result: Result, label: str = "") -> str:
    metrics = result.metrics
    prefix = f"{label:<28s} " if label else ""
    kind = "federated" if result.is_federated else "single"
    return (
        f"{prefix}{result.spec.scheduler.name:>12s} | {kind:9s} | "
        f"jobs {len(metrics.job_completion_times):5d} | "
        f"avg JCT {metrics.average_jct:10.2f}s | makespan {metrics.makespan:10.2f}s | "
        f"wall {result.wall_clock_sec:6.2f}s"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    result = run_spec(spec)
    print(_summarize(result))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.to_json(include_spec=not args.no_spec))
        print(f"wrote {args.output}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    axes = _parse_axes(args.axis or [])
    if not axes:
        raise SpecError("grid needs at least one --axis dotted.path=value1,value2,...")
    rows = run_grid(spec, axes, processes=args.processes)
    for overrides, result in rows:
        label = ", ".join(f"{k}={v}" for k, v in overrides.items())
        print(_summarize(result, label=label))
    if args.output:
        payload = [
            {"overrides": overrides, **result.to_dict(include_spec=not args.no_spec)}
            for overrides, result in rows
        ]
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    for path in args.specs:
        spec = _load_spec(path)
        mode = spec.workload.mode
        shards = spec.cluster.num_shards
        print(f"{path}: ok ({spec.scheduler.name}, {mode}-loop, {shards} shard(s))")
    return 0


def _cmd_list_schedulers(args: argparse.Namespace) -> int:
    names = available_schedulers(include_preemptive=True, include_ablations=True)
    print("schedulers:")
    for name in names:
        print(f"  {name}")
    print(f"placement policies: {', '.join(available_placement_policies())}")
    print(f"job routers: {', '.join(available_job_routers())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative LLMSched-reproduction experiment specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scenario spec")
    p_run.add_argument("spec", help="path to a ScenarioSpec JSON file")
    p_run.add_argument("--output", help="write the full Result JSON here")
    p_run.add_argument(
        "--no-spec", action="store_true", help="omit the resolved spec from --output"
    )
    p_run.set_defaults(func=_cmd_run)

    p_grid = sub.add_parser("grid", help="run a grid of override axes over one spec")
    p_grid.add_argument("spec", help="path to the base ScenarioSpec JSON file")
    p_grid.add_argument(
        "--axis",
        action="append",
        metavar="PATH=V1,V2,...",
        help="override axis, e.g. workload.arrival_rate=0.6,0.9,1.2 (repeatable)",
    )
    p_grid.add_argument("--processes", type=int, default=None, help="worker processes")
    p_grid.add_argument("--output", help="write all grid Results as JSON here")
    p_grid.add_argument(
        "--no-spec", action="store_true", help="omit resolved specs from --output"
    )
    p_grid.set_defaults(func=_cmd_grid)

    p_val = sub.add_parser("validate", help="validate spec files without running them")
    p_val.add_argument("specs", nargs="+", help="ScenarioSpec JSON files")
    p_val.set_defaults(func=_cmd_validate)

    p_list = sub.add_parser(
        "list-schedulers", help="list scheduler / placement / router names"
    )
    p_list.set_defaults(func=_cmd_list_schedulers)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # SpecError and the run-time resolution errors (e.g. an unsplittable
        # shard count) are all ValueErrors with actionable messages.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
