"""``python -m repro`` — run declarative experiment specs from the shell.

Subcommands
-----------
``run <spec.json>``
    Resolve and run one scenario; print a summary, optionally write the
    full :class:`~repro.api.results.Result` JSON with ``--output``.
``grid <spec.json> --axis path=v1,v2,...``
    Fan the spec out over override axes (repeat ``--axis``), in parallel
    with ``--processes``.
``pareto <spec.json> --axis path=v1,v2,...``
    Run a grid of token-model scenarios and print the serving Pareto
    table — TPS/GPU (fleet efficiency) vs TPS/User (stream speed) with
    per-tier goodput — marking the Pareto-optimal cells.  Human and JSON
    output via ``--format``, mirroring ``repro.analysis``.
``validate <spec.json> [...]``
    Parse + validate specs without running anything (reporting each
    document's stamped schema version); exit 1 on the first invalid file
    with its actionable error.
``list-schedulers``
    Print every scheduler name :func:`repro.api.run` accepts, plus the
    available placement policies and job routers.
``store ingest|list|query|diff|report``
    The content-addressed run store (see :mod:`repro.store.cli`); ``run``
    and ``grid`` also take ``--store DIR`` to record their Results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.dispatch import run as run_spec
from repro.api.grid import run_grid
from repro.api.results import Result
from repro.api.spec import SCHEMA_VERSION, ScenarioSpec, SpecError
from repro.schedulers.registry import available_schedulers
from repro.simulator.federation import available_job_routers
from repro.simulator.placement import available_placement_policies
from repro.store.cli import add_store_parser
from repro.store.report import ReportError
from repro.store.store import StoreError

__all__ = ["main", "pareto_rows"]

#: Schema of the ``pareto`` subcommand's JSON output.
PARETO_JSON_VERSION = 1


def _load_spec(path: str) -> ScenarioSpec:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path!r}: {exc}") from exc
    return ScenarioSpec.from_json(text)


def _parse_axis_value(raw: str) -> object:
    """Axis values are JSON when possible (2, 1.5, true), strings otherwise."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _parse_axes(pairs: Sequence[str]) -> Dict[str, List[object]]:
    axes: Dict[str, List[object]] = {}
    for pair in pairs:
        path, sep, values = pair.partition("=")
        if not sep or not path or not values:
            raise SpecError(
                f"invalid --axis {pair!r}; expected dotted.path=value1,value2,..."
            )
        axes[path] = [_parse_axis_value(v) for v in values.split(",")]
    return axes


def _summarize(result: Result, label: str = "") -> str:
    metrics = result.metrics
    prefix = f"{label:<28s} " if label else ""
    kind = "federated" if result.is_federated else "single"
    return (
        f"{prefix}{result.spec.scheduler.name:>12s} | {kind:9s} | "
        f"jobs {len(metrics.job_completion_times):5d} | "
        f"avg JCT {metrics.average_jct:10.2f}s | makespan {metrics.makespan:10.2f}s | "
        f"wall {result.wall_clock_sec:6.2f}s"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    result = run_spec(spec, store=args.store)
    print(_summarize(result))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.to_json(include_spec=not args.no_spec))
        print(f"wrote {args.output}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    axes = _parse_axes(args.axis or [])
    if not axes:
        raise SpecError("grid needs at least one --axis dotted.path=value1,value2,...")
    rows = run_grid(spec, axes, processes=args.processes, store=args.store)
    for overrides, result in rows:
        label = ", ".join(f"{k}={v}" for k, v in overrides.items())
        print(_summarize(result, label=label))
    if args.output:
        payload = [
            {"overrides": overrides, **result.to_dict(include_spec=not args.no_spec)}
            for overrides, result in rows
        ]
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def pareto_rows(
    cells: Sequence[Tuple[Dict[str, object], Result]]
) -> List[Dict[str, object]]:
    """Serving table rows (one per grid cell), Pareto front marked.

    A cell is Pareto-optimal when no other cell is at least as good on
    both throughput axes (TPS/GPU — fleet efficiency — and TPS/User —
    per-stream speed) and strictly better on one.
    """
    rows: List[Dict[str, object]] = []
    for overrides, result in cells:
        serving = result.serving
        if serving is None:
            label = ", ".join(f"{k}={v}" for k, v in overrides.items()) or "<base spec>"
            raise SpecError(
                f"pareto cell {label} produced no serving metrics; the spec needs "
                'a token-model workload (set workload.token_mix to "chat", '
                '"batch" or "agentic") on a single cluster'
            )
        rows.append(
            {
                "overrides": dict(overrides),
                "scheduler": result.spec.scheduler.name,
                "goodput": serving["goodput_overall"],
                "goodput_by_tier": serving["goodput"],
                "tps_per_gpu": serving["tps_per_gpu"],
                "tps_per_user": serving["tps_per_user"],
                "ttft_p95": serving["ttft"]["p95"],
                "tpot_p95": serving["tpot"]["p95"],
                "num_requests": serving["num_requests"],
            }
        )
    for row in rows:
        row["pareto"] = not any(
            other["tps_per_gpu"] >= row["tps_per_gpu"]
            and other["tps_per_user"] >= row["tps_per_user"]
            and (
                other["tps_per_gpu"] > row["tps_per_gpu"]
                or other["tps_per_user"] > row["tps_per_user"]
            )
            for other in rows
            if other is not row
        )
    rows.sort(key=lambda r: (-r["tps_per_gpu"], -r["tps_per_user"]))
    return rows


def _cmd_pareto(args: argparse.Namespace) -> int:
    spec = _load_spec(args.spec)
    axes = _parse_axes(args.axis or [])
    if axes:
        cells = run_grid(spec, axes, processes=args.processes)
    else:
        cells = [({}, run_spec(spec))]
    rows = pareto_rows(cells)
    payload = {"version": PARETO_JSON_VERSION, "rows": rows}
    if args.format == "json":
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        header = (
            f"{'':2s}{'cell':<40s} {'goodput':>8s} {'tps/gpu':>9s} "
            f"{'tps/user':>9s} {'ttft_p95':>9s} {'tpot_p95':>9s}"
        )
        print(header)
        for row in rows:
            label = ", ".join(f"{k}={v}" for k, v in row["overrides"].items())
            label = label or row["scheduler"]
            marker = "* " if row["pareto"] else "  "
            print(
                f"{marker}{label:<40s} {row['goodput']:>8.3f} "
                f"{row['tps_per_gpu']:>9.1f} {row['tps_per_user']:>9.1f} "
                f"{row['ttft_p95']:>9.2f} {row['tpot_p95']:>9.4f}"
            )
        print("* = Pareto-optimal on (TPS/GPU, TPS/User)")
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr if args.format == "json" else sys.stdout)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    for path in args.specs:
        spec = _load_spec(path)
        try:
            with open(path) as handle:
                stamped = json.load(handle).get("schema_version", SCHEMA_VERSION)
        except (OSError, json.JSONDecodeError):  # pragma: no cover - _load_spec caught it
            stamped = spec.schema_version
        version = f"schema v{stamped}"
        if stamped != spec.schema_version:
            version += f" upcast to v{spec.schema_version}"
        mode = spec.workload.mode
        shards = spec.cluster.num_shards
        print(
            f"{path}: ok ({version}, {spec.scheduler.name}, {mode}-loop, {shards} shard(s))"
        )
    return 0


def _cmd_list_schedulers(args: argparse.Namespace) -> int:
    names = available_schedulers(
        include_preemptive=True, include_ablations=True, include_serving=True
    )
    print("schedulers:")
    for name in names:
        print(f"  {name}")
    print(f"placement policies: {', '.join(available_placement_policies())}")
    print(f"job routers: {', '.join(available_job_routers())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative LLMSched-reproduction experiment specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scenario spec")
    p_run.add_argument("spec", help="path to a ScenarioSpec JSON file")
    p_run.add_argument("--output", help="write the full Result JSON here")
    p_run.add_argument(
        "--no-spec", action="store_true", help="omit the resolved spec from --output"
    )
    p_run.add_argument(
        "--store", metavar="DIR", help="record the Result into this run store"
    )
    p_run.set_defaults(func=_cmd_run)

    p_grid = sub.add_parser("grid", help="run a grid of override axes over one spec")
    p_grid.add_argument("spec", help="path to the base ScenarioSpec JSON file")
    p_grid.add_argument(
        "--axis",
        action="append",
        metavar="PATH=V1,V2,...",
        help="override axis, e.g. workload.arrival_rate=0.6,0.9,1.2 (repeatable)",
    )
    p_grid.add_argument("--processes", type=int, default=None, help="worker processes")
    p_grid.add_argument("--output", help="write all grid Results as JSON here")
    p_grid.add_argument(
        "--no-spec", action="store_true", help="omit resolved specs from --output"
    )
    p_grid.add_argument(
        "--store", metavar="DIR", help="record every cell Result into this run store"
    )
    p_grid.set_defaults(func=_cmd_grid)

    p_pareto = sub.add_parser(
        "pareto", help="serving Pareto table (TPS/GPU vs TPS/User) over a spec grid"
    )
    p_pareto.add_argument("spec", help="path to the base ScenarioSpec JSON file")
    p_pareto.add_argument(
        "--axis",
        action="append",
        metavar="PATH=V1,V2,...",
        help="override axis, e.g. scheduler.name=fcfs,slo_serving (repeatable)",
    )
    p_pareto.add_argument("--processes", type=int, default=None, help="worker processes")
    p_pareto.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    p_pareto.add_argument("--output", help="also write the JSON table here")
    p_pareto.set_defaults(func=_cmd_pareto)

    p_val = sub.add_parser("validate", help="validate spec files without running them")
    p_val.add_argument("specs", nargs="+", help="ScenarioSpec JSON files")
    p_val.set_defaults(func=_cmd_validate)

    p_list = sub.add_parser(
        "list-schedulers", help="list scheduler / placement / router names"
    )
    p_list.set_defaults(func=_cmd_list_schedulers)

    add_store_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, StoreError, ReportError) as exc:
        # SpecError, the run-time resolution errors (e.g. an unsplittable
        # shard count) and the store/report failures all carry actionable
        # messages.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
