"""Grid execution: fan a base spec out over override axes, in parallel.

:func:`run_grid` replaces the runner's four bespoke ``sweep_*`` functions
with one mechanism: a base :class:`~repro.api.spec.ScenarioSpec` plus a
mapping of dotted-path axes (``{"workload.arrival_rate": [0.5, 0.9],
"scheduler.name": ["fcfs", "sjf"]}``) expands into the cartesian product
of scenarios, which fan out over worker processes.  Each worker builds and
caches the expensive offline artifacts (priors, profiler) once per
settings configuration, exactly like the legacy sweep machinery did.
"""

from __future__ import annotations

import itertools
import multiprocessing
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.dispatch import run
from repro.api.prep import ExperimentSettings, build_priors, build_profiler
from repro.api.results import Result
from repro.api.spec import ScenarioSpec, with_overrides
from repro.schedulers.registry import scheduler_requirements
from repro.workloads.mixtures import default_applications

__all__ = ["expand_axes", "run_grid", "run_specs"]

GridRow = Tuple[Dict[str, object], Result]


def expand_axes(
    base_spec: ScenarioSpec, axes: Mapping[str, Sequence[object]]
) -> List[Tuple[Dict[str, object], ScenarioSpec]]:
    """Cartesian product of override axes, each cell a validated spec.

    Axis insertion order is significant: later axes vary fastest, so
    ``{"a": [1, 2], "b": [x, y]}`` expands to ``(1,x) (1,y) (2,x) (2,y)``.
    Expansion is eager on purpose — an invalid override value fails here,
    before any worker process is spawned.
    """
    if not axes:
        raise ValueError("run_grid needs at least one override axis")
    names = list(axes)
    for name, values in axes.items():
        if not list(values):
            raise ValueError(f"grid axis {name!r} must provide at least one value")
    cells: List[Tuple[Dict[str, object], ScenarioSpec]] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combo, strict=True))
        cells.append((overrides, with_overrides(base_spec, overrides)))
    return cells


# --------------------------------------------------------------------------- #
# Worker-side caches + process fan-out
# --------------------------------------------------------------------------- #
#: Per-worker-process cache: profiler fitting is the expensive part of a
#: cell, and it only depends on the settings, so each worker builds each
#: artifact at most once per settings configuration — and only when some
#: scheduler in the grid actually needs it.
_WORKER_STATE: Dict[Tuple, dict] = {}


def _worker_state(settings: ExperimentSettings) -> dict:
    key = (settings.profile_jobs, settings.prior_samples, settings.profiler_seed)
    if key not in _WORKER_STATE:
        _WORKER_STATE[key] = {"applications": default_applications()}
    return _WORKER_STATE[key]


def _run_spec(spec: ScenarioSpec) -> Result:
    return _run_spec_item((spec, None))


def _run_spec_item(item: Tuple[ScenarioSpec, Optional[str]]) -> Result:
    """Picklable worker: run one cell, optionally recording into a store.

    The store travels as its root *path* (each worker re-opens it), and the
    store's atomic record writes + ``O_APPEND`` journal make concurrent
    ingestion from many workers safe without any cross-process lock.
    """
    spec, store_root = item
    state = _worker_state(spec.settings)
    requirements = scheduler_requirements(spec.scheduler.name)
    if "priors" in requirements and "priors" not in state:
        state["priors"] = build_priors(state["applications"], spec.settings)
    if "profiler" in requirements and "profiler" not in state:
        state["profiler"] = build_profiler(state["applications"], spec.settings)
    return run(
        spec,
        applications=state["applications"],
        priors=state.get("priors"),
        profiler=state.get("profiler"),
        store=store_root,
    )


def _map_cells(worker: Callable, payload: Sequence, processes: Optional[int]) -> List:
    """Fan a picklable worker over payload items via worker processes.

    ``processes=None`` uses one worker per CPU (capped at the item count);
    ``processes=1`` runs serially in-process, which is also the fallback
    when the platform cannot fork/spawn workers.
    """
    if processes is None:
        processes = min(len(payload), multiprocessing.cpu_count())
    if processes <= 1:
        return [worker(item) for item in payload]
    try:
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(worker, payload)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed platforms
        return [worker(item) for item in payload]


def _store_root(store) -> Optional[str]:
    """Normalize a ``store=`` argument (RunStore or path) to a path string."""
    if store is None:
        return None
    root = getattr(store, "root", store)
    return str(root)


def run_specs(
    specs: Sequence[ScenarioSpec],
    processes: Optional[int] = None,
    *,
    store=None,
) -> List[Result]:
    """Run scenarios in order, fanned out over worker processes.

    ``store`` (a :class:`repro.store.RunStore` or path) records every cell's
    :class:`Result` from inside the worker that ran it — concurrent workers
    ingest safely via the store's atomic writes and append-only journal.
    """
    if not specs:
        return []
    root = _store_root(store)
    return _map_cells(_run_spec_item, [(spec, root) for spec in specs], processes)


def run_grid(
    base_spec: ScenarioSpec,
    axes: Mapping[str, Sequence[object]],
    processes: Optional[int] = None,
    *,
    store=None,
) -> List[GridRow]:
    """Run the cartesian product of override axes over ``base_spec``.

    Returns one ``(overrides, result)`` row per cell, in expansion order.
    Every cell is an independent simulation; cells sharing a workload
    section see the identical job draw, so grouping rows by any axis
    yields fair comparisons along the others.  ``store`` records each
    cell's Result as it completes (see :func:`run_specs`).
    """
    cells = expand_axes(base_spec, axes)
    results = run_specs([spec for _, spec in cells], processes=processes, store=store)
    return [(overrides, result) for (overrides, _), result in zip(cells, results, strict=True)]
