"""Uniform run results: what every :func:`repro.api.run` call returns.

A :class:`Result` bundles the metrics of a run with the *resolved* spec
that produced it (auto-sized cluster configs filled in), the workload RNG
seed and the wall-clock cost, and serializes to one schema consumed by the
CLI's ``--output``, the benchmark files (``BENCH_*.json``) and the CI
regression gate — single-cluster and federated runs alike.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.simulator.federation import FederationMetrics
from repro.simulator.metrics import SimulationMetrics
from repro.workloads.mixtures import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import ScenarioSpec

__all__ = ["Result", "ComparisonResult"]

AnyMetrics = Union[SimulationMetrics, FederationMetrics]


@dataclass
class Result:
    """Metrics + resolved spec + seed + wall-clock of one scenario run."""

    spec: "ScenarioSpec"
    metrics: AnyMetrics
    seed: int
    wall_clock_sec: float

    # Passthrough views ---------------------------------------------------- #
    @property
    def average_jct(self) -> float:
        return self.metrics.average_jct

    @property
    def job_completion_times(self) -> Dict[str, float]:
        return self.metrics.job_completion_times

    @property
    def makespan(self) -> float:
        return self.metrics.makespan

    @property
    def is_federated(self) -> bool:
        return isinstance(self.metrics, FederationMetrics)

    @property
    def serving(self) -> Optional[Dict[str, object]]:
        """The versioned serving summary, or None for non-token-model runs.

        Single-cluster runs with a ``workload.token_mix`` carry per-request
        TTFT/TPOT/ITL samples and SLO goodput (see
        :meth:`~repro.simulator.metrics.SimulationMetrics.serving_summary`);
        everything else — legacy specs, federated fleets — reports None.
        """
        metrics = self.metrics
        if isinstance(metrics, SimulationMetrics) and metrics.has_serving_samples:
            return metrics.serving_summary()
        return None

    # Serialization -------------------------------------------------------- #
    def to_dict(self, include_spec: bool = True) -> Dict[str, object]:
        """One schema for every run kind (fed straight into BENCH_*.json).

        ``include_spec=False`` drops the resolved spec for lean artifacts;
        the metrics payload is ``metrics.to_dict()`` either way, so the
        benchmark regression gate reads the same keys everywhere.  Token-
        model runs additionally surface the versioned ``serving`` summary
        as a top-level block — the stable serving-metrics API — alongside
        its copy inside ``metrics``.
        """
        out: Dict[str, object] = {
            "schema_version": self.spec.schema_version,
            "seed": self.seed,
            "wall_clock_sec": self.wall_clock_sec,
            "metrics": self.metrics.to_dict(),
        }
        serving = self.serving
        if serving is not None:
            out["serving"] = serving
        if include_spec:
            out["spec"] = self.spec.to_dict()
        return out

    def to_json(self, indent: int = 2, include_spec: bool = True) -> str:
        return (
            json.dumps(self.to_dict(include_spec=include_spec), indent=indent, sort_keys=True)
            + "\n"
        )


@dataclass
class ComparisonResult:
    """Average JCT (and full metrics) of several schedulers on one workload."""

    workload: WorkloadSpec
    metrics: Dict[str, SimulationMetrics]

    def average_jcts(self) -> Dict[str, float]:
        return {name: m.average_jct for name, m in self.metrics.items()}

    def normalized_to(self, reference: str) -> Dict[str, float]:
        base = self.metrics[reference].average_jct
        if base <= 0:
            raise ValueError(f"reference scheduler {reference!r} has non-positive JCT")
        return {name: m.average_jct / base for name, m in self.metrics.items()}

    def improvement_over(self, baseline: str, target: str = "llmsched") -> float:
        """Relative JCT reduction of ``target`` vs ``baseline`` (paper's headline %)."""
        base = self.metrics[baseline].average_jct
        ours = self.metrics[target].average_jct
        if base <= 0:
            return 0.0
        return 1.0 - ours / base
