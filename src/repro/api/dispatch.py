"""Resolve a :class:`~repro.api.spec.ScenarioSpec` and run it.

:func:`run` is the single front door for every engine the simulator
offers: closed-loop and open-loop single clusters (synchronous or behind
an asynchronous decision-latency backend, optionally autoscaled) and
federated fleets.  The spec is declarative; keyword overrides let callers
inject live objects — prebuilt priors/profilers (worker caches), custom
placement policies, routers or async configs that the JSON schema cannot
express — and always take precedence over the corresponding section.

The legacy ``repro.experiments.runner`` entry points are thin shims over
this module; running a spec here is bit-identical to the old paths (the
golden-trace identity tests in ``tests/test_api_run.py`` pin that).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, Mapping, Optional, Sequence

from repro.api.prep import (
    build_priors,
    build_profiler,
    size_cluster,
    size_cluster_for_workload,
    split_cluster_config,
)
from repro.api.results import ComparisonResult, Result
from repro.api.spec import ScenarioSpec, SchedulerSection, SpecError
from repro.core.profiler import BayesianProfiler
from repro.dag.application import ApplicationTemplate
from repro.schedulers.base import Scheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import (
    LLMSCHED_VARIANTS,
    create_scheduler,
    scheduler_requirements,
)
from repro.simulator.async_sched import AsyncConfig, AsyncSchedulerBackend
from repro.simulator.autoscaler import ThresholdAutoscaler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationConfig, SimulationEngine
from repro.simulator.federation import (
    FederatedCluster,
    FederatedSimulationEngine,
    JobRouter,
    create_job_router,
)
from repro.simulator.placement import PlacementPolicy, create_placement_policy
from repro.simulator.protocol import ensure_engine_protocol
from repro.workloads.mixtures import default_applications, generate_workload
from repro.workloads.serving import DEFAULT_SLO_TARGETS, attach_token_model

__all__ = ["run", "compare"]


def _make_scheduler(spec: ScenarioSpec, priors, profiler) -> Scheduler:
    section = spec.scheduler
    if section.name.lower() in LLMSCHED_VARIANTS:
        # LLMSched kwargs override Algorithm 1 config fields declaratively.
        settings = spec.settings
        if section.kwargs:
            settings = replace(settings, llmsched=replace(settings.llmsched, **section.kwargs))
        return create_scheduler(section.name, profiler=profiler, settings=settings)
    if section.name.lower() == "slo_serving":
        # The SLO scheduler reads the scenario's declarative targets and the
        # settings' latency slope unless the kwargs override them explicitly.
        kwargs = dict(section.kwargs)
        if spec.slo is not None and "slo_targets" not in kwargs:
            kwargs["slo_targets"] = spec.slo.targets()
        kwargs.setdefault("latency_slope", spec.settings.latency_slope)
        return create_scheduler(section.name, **kwargs)
    return create_scheduler(
        section.name, priors=priors, profiler=profiler, settings=spec.settings, **section.kwargs
    )


def _serving_targets(spec: ScenarioSpec) -> Dict[str, Dict[str, float]]:
    """The SLO targets a token-model run meters goodput against."""
    if spec.slo is not None:
        return spec.slo.targets()
    return {tier: dict(targets) for tier, targets in DEFAULT_SLO_TARGETS.items()}


def _resolve_total_config(
    spec: ScenarioSpec, applications: Mapping[str, ApplicationTemplate]
) -> Optional[ClusterConfig]:
    """The (explicit or workload-sized) total cluster config, None for pools."""
    section = spec.cluster
    if section.pools is not None:
        return None
    if section.config is not None:
        return section.config
    workload = spec.workload
    if workload.mode == "closed":
        return size_cluster_for_workload(
            workload.to_workload_spec(), applications, spec.settings
        )
    rate = section.nominal_rate
    if rate is None:
        rate = getattr(workload.process, "rate", None)
        if rate is None:
            raise SpecError(
                "open-loop sizing needs cluster.nominal_rate (or an explicit cluster "
                f"config) for {type(workload.process).__name__}"
            )
    names = list(workload.application_names or sorted(applications))
    return size_cluster(float(rate), names, applications, spec.settings)


def run(
    spec: ScenarioSpec,
    *,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    placement: Optional[PlacementPolicy] = None,
    autoscaler: Optional[ThresholdAutoscaler] = None,
    router: Optional[JobRouter] = None,
    async_config: Optional[AsyncConfig] = None,
    store=None,
) -> Result:
    """Run one scenario and return its uniform :class:`Result`.

    Offline artifacts (``priors``, ``profiler``) are built from the spec's
    settings only when the scheduler actually needs them; passing prebuilt
    ones (e.g. from a sweep worker's cache) skips that work without
    changing the simulation.  The live-object overrides supersede their
    declarative sections (see module docstring).

    ``store`` — a :class:`repro.store.RunStore` (or a path to one) — makes
    the run self-recording: the finished :class:`Result` persists as a
    content-addressed record before this returns.  The record's identity
    hash excludes wall-clock fields, so re-running the same spec + seed
    deduplicates instead of accumulating near-duplicates.
    """
    spec.validate()
    # Live-object overrides that the selected engine would never consult are
    # rejected (mirroring the spec-level conflict validation) — silently
    # dropping a router or autoscaler would corrupt an experiment.
    if spec.cluster.num_shards > 1:
        if placement is not None or autoscaler is not None:
            raise SpecError(
                "placement/autoscaler overrides do not apply to federated runs "
                "(num_shards > 1); drop them or set num_shards=1"
            )
    elif router is not None:
        raise SpecError(
            "a router override only applies to federated runs; set "
            "cluster.num_shards > 1 to route jobs across shards"
        )
    applications = applications or default_applications()
    requirements = scheduler_requirements(spec.scheduler.name)
    if priors is None and "priors" in requirements:
        priors = build_priors(applications, spec.settings)
    if profiler is None and "profiler" in requirements:
        profiler = build_profiler(applications, spec.settings)

    if async_config is None and spec.async_ is not None:
        async_config = spec.async_.to_async_config()
    if placement is None and spec.placement is not None:
        placement = create_placement_policy(spec.placement.name)
    if autoscaler is None and spec.autoscaler is not None:
        autoscaler = ThresholdAutoscaler(spec.autoscaler)

    total_config = _resolve_total_config(spec, applications)
    resolved = spec
    if total_config is not None and spec.cluster.config is None:
        resolved = replace(spec, cluster=replace(spec.cluster, config=total_config))

    started = time.perf_counter()  # repro: REP003-exempt -- meters the Result wall-clock field, outside the simulation
    if spec.cluster.num_shards > 1:
        metrics = _run_federated(resolved, applications, priors, profiler, router, async_config)
    else:
        metrics = _run_single(
            resolved, applications, priors, profiler, placement, autoscaler, async_config
        )
    wall_clock = time.perf_counter() - started  # repro: REP003-exempt -- meters the Result wall-clock field, outside the simulation
    result = Result(
        spec=resolved, metrics=metrics, seed=spec.workload.seed, wall_clock_sec=wall_clock
    )
    if store is not None:
        from repro.store import RunStore  # lazy: repro.store imports api.spec

        if not isinstance(store, RunStore):
            store = RunStore(store)
        store.add_result(result)
    return result


def _run_single(spec, applications, priors, profiler, placement, autoscaler, async_config):
    workload = spec.workload
    if spec.cluster.pools is not None:
        cluster = Cluster(pools=spec.cluster.pools)
    else:
        cluster = Cluster(spec.cluster.config)
    if workload.mode == "closed":
        jobs = generate_workload(workload.to_workload_spec(), applications=applications)
        workload_name = workload.workload_type
    else:
        jobs = workload.to_open_loop_spec().jobs(dict(applications))
        workload_name = workload.name
    if workload.token_mix is not None:
        token_seed = workload.token_seed if workload.token_seed is not None else workload.seed
        attach_token_model(jobs, workload.token_mix, seed=token_seed)
    engine = SimulationEngine(
        jobs,
        _make_scheduler(spec, priors, profiler),
        cluster=cluster,
        config=SimulationConfig(snapshot_policy=spec.settings.snapshot_policy),
        workload_name=workload_name,
        placement=placement,
        autoscaler=autoscaler,
        async_backend=(
            AsyncSchedulerBackend(async_config) if async_config is not None else None
        ),
    )
    if workload.token_mix is not None:
        engine.metrics.slo_targets = _serving_targets(spec)
    return ensure_engine_protocol(engine).run()


def _run_federated(spec, applications, priors, profiler, router, async_config):
    section = spec.cluster
    shard_configs = split_cluster_config(section.config, section.num_shards)
    fleet = FederatedCluster(
        [(f"shard-{i}", Cluster(cfg)) for i, cfg in enumerate(shard_configs)],
        router=(
            router
            if router is not None
            else create_job_router(section.router, **section.router_kwargs)
        ),
    )
    engine = ensure_engine_protocol(
        FederatedSimulationEngine(
            spec.workload.to_open_loop_spec().jobs(dict(applications)),
            lambda: _make_scheduler(spec, priors, profiler),
            fleet,
            config=SimulationConfig(snapshot_policy=spec.settings.snapshot_policy),
            workload_name=spec.workload.name,
            migration=section.migration,
            async_backend_factory=(
                (lambda: AsyncSchedulerBackend(async_config))
                if async_config is not None
                else None
            ),
        )
    )
    return engine.run()


def compare(
    spec: ScenarioSpec,
    scheduler_names: Sequence[str],
    *,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
) -> ComparisonResult:
    """Run several schedulers on the *identical* workload draw and cluster.

    The cluster is resolved once (auto-sizing included) and every scheduler
    replays the same closed-loop draw on it, so the returned
    :class:`ComparisonResult` is a fair comparison; priors/profiler are
    built once, only if some scheduler in the list needs them.
    """
    if not scheduler_names:
        raise ValueError("scheduler_names must not be empty")
    if spec.workload.mode != "closed":
        raise SpecError("compare() needs a closed-loop workload (identical draws per scheduler)")
    applications = applications or default_applications()
    needs = set()
    for name in scheduler_names:
        needs |= scheduler_requirements(name)
    if priors is None and "priors" in needs:
        priors = build_priors(applications, spec.settings)
    if profiler is None and "profiler" in needs:
        profiler = build_profiler(applications, spec.settings)
    if spec.cluster.pools is not None:
        resolved_cluster = spec.cluster
    else:
        resolved_cluster = replace(spec.cluster, config=_resolve_total_config(spec, applications))
    metrics = {}
    for name in scheduler_names:
        cell = replace(spec, scheduler=SchedulerSection(name=name), cluster=resolved_cluster)
        metrics[name] = run(
            cell, applications=applications, priors=priors, profiler=profiler
        ).metrics
    return ComparisonResult(workload=spec.workload.to_workload_spec(), metrics=metrics)
