"""Offline preparation shared by every experiment entry point.

Settings, priors/profiler construction and cluster sizing used to live in
:mod:`repro.experiments.runner`; they moved here so the declarative API
(:mod:`repro.api`) and the legacy runner shims share one implementation
without a circular import.  The runner re-exports every name, so existing
imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.core.llmsched import LLMSchedConfig
from repro.core.profiler import BayesianProfiler
from repro.dag.application import ApplicationTemplate
from repro.schedulers.priors import ApplicationPriors
from repro.simulator.cluster import ClusterConfig
from repro.simulator.latency import DecodingLatencyProfile
from repro.utils.rng import make_rng
from repro.workloads.mixtures import WorkloadSpec

__all__ = [
    "PAPER_BASELINES",
    "ExperimentSettings",
    "build_priors",
    "build_profiler",
    "size_cluster",
    "size_cluster_for_workload",
    "split_cluster_config",
]

#: Baseline order used in the paper's figures (LLMSched appended last).
PAPER_BASELINES = ["fcfs", "sjf", "fair", "argus", "decima", "carbyne"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Settings shared by every experiment.

    ``target_load`` plays the role of the paper's manually-configured
    cluster load: executor pools are sized so the offered work at the
    configured arrival rate matches roughly ``target_load`` of the pool
    capacity.  The default keeps the cluster close to saturation during the
    arrival period, which reproduces the paper's regime where the average
    JCT grows with the number of jobs and scheduling order matters.
    """

    target_load: float = 1.0
    max_batch_size: int = 4
    latency_slope: float = 0.06
    profile_jobs: int = 150
    prior_samples: int = 100
    profiler_seed: int = 77
    #: How async decisions are isolated from live mutations: "cow" hands out
    #: copy-on-write context snapshots, "deepcopy" the golden-oracle wholesale
    #: copy (bit-identical, O(jobs x stages x tasks) slower per pass).
    snapshot_policy: str = "cow"
    llmsched: LLMSchedConfig = field(default_factory=LLMSchedConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_load <= 2.0:
            raise ValueError("target_load must be within (0, 2]")
        if self.snapshot_policy not in ("cow", "deepcopy"):
            raise ValueError(
                f"snapshot_policy must be 'cow' or 'deepcopy', got {self.snapshot_policy!r}"
            )


def build_priors(
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> ApplicationPriors:
    settings = settings or ExperimentSettings()
    return ApplicationPriors.from_applications(
        applications.values(), n_samples=settings.prior_samples, seed=settings.profiler_seed
    )


def build_profiler(
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> BayesianProfiler:
    settings = settings or ExperimentSettings()
    profiler = BayesianProfiler()
    profiler.fit(
        applications.values(),
        n_profile_jobs=settings.profile_jobs,
        seed=settings.profiler_seed,
    )
    return profiler


def size_cluster_for_workload(
    spec: WorkloadSpec,
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> ClusterConfig:
    """Size executor pools for a closed-loop workload spec."""
    return size_cluster(spec.arrival_rate, spec.application_names, applications, settings)


def size_cluster(
    arrival_rate: float,
    application_names: Sequence[str],
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> ClusterConfig:
    """Size executor pools so the cluster runs at roughly ``target_load``.

    The offered load is estimated from the applications' mean LLM / regular
    work per job and the arrival rate; one LLM executor serving a batch of
    ``B`` requests completes up to ``B / latency(B)`` batch-size-1 seconds of
    work per second.
    """
    settings = settings or ExperimentSettings()
    rng = make_rng(settings.profiler_seed + 1)
    llm_work_per_job: List[float] = []
    regular_work_per_job: List[float] = []
    names = list(application_names)
    for name in names:
        app = applications[name]
        for i in range(30):
            job = app.sample_job(f"__size__{name}_{i}", 0.0, rng)
            llm = sum(s.duration for s in job.stages.values() if s.is_llm)
            regular = sum(
                s.duration for s in job.stages.values() if not s.is_llm and not s.is_dynamic
            )
            llm_work_per_job.append(llm)
            regular_work_per_job.append(regular)

    mean_llm = float(np.mean(llm_work_per_job))
    mean_regular = float(np.mean(regular_work_per_job))
    profile = DecodingLatencyProfile(slope=settings.latency_slope)
    llm_capacity = settings.max_batch_size / profile.latency(settings.max_batch_size)

    llm_rate = arrival_rate * mean_llm
    regular_rate = arrival_rate * mean_regular
    num_llm = max(1, int(round(llm_rate / (settings.target_load * llm_capacity))))
    # Regular executors (containers) are cheap compared to GPU-backed LLM
    # executors, so they get ~25% headroom: contention concentrates on the
    # LLM pool, which is the regime the paper studies.
    num_regular = max(2, int(np.ceil(regular_rate / (0.75 * settings.target_load))))
    return ClusterConfig(
        num_regular_executors=num_regular,
        num_llm_executors=num_llm,
        max_batch_size=settings.max_batch_size,
        latency_slope=settings.latency_slope,
    )


def split_cluster_config(config: ClusterConfig, num_shards: int) -> List[ClusterConfig]:
    """Divide one total cluster sizing into ``num_shards`` shard sizings.

    The executor totals are preserved (early shards take the remainder),
    so a shard-count sweep compares routing and isolation on *identical
    total hardware*.  Every shard needs at least one executor of each
    type; shard counts beyond that are rejected rather than silently
    growing the fleet.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if config.num_regular_executors < num_shards or config.num_llm_executors < num_shards:
        raise ValueError(
            f"cannot split {config.num_regular_executors} regular / "
            f"{config.num_llm_executors} LLM executors across {num_shards} shards "
            "(every shard needs at least one of each)"
        )
    regular, reg_rem = divmod(config.num_regular_executors, num_shards)
    llm, llm_rem = divmod(config.num_llm_executors, num_shards)
    configs: List[ClusterConfig] = []
    for index in range(num_shards):
        configs.append(
            ClusterConfig(
                num_regular_executors=regular + (1 if index < reg_rem else 0),
                num_llm_executors=llm + (1 if index < llm_rem else 0),
                max_batch_size=config.max_batch_size,
                latency_slope=config.latency_slope,
            )
        )
    return configs
