"""The declarative experiment API: one spec tree, one ``run()`` front door.

The paper's evaluation is a grid of scenarios — schedulers × workloads ×
cluster shapes × control-plane staleness.  This package expresses every
cell as a serializable :class:`ScenarioSpec` and runs it through a single
dispatcher::

    from repro import api

    spec = api.ScenarioSpec(
        scheduler=api.SchedulerSection("llmsched"),
        workload=api.WorkloadSection.closed_loop("mixed", num_jobs=300),
    )
    result = api.run(spec)                 # -> api.Result
    rows = api.run_grid(spec, {"workload.arrival_rate": [0.6, 0.9, 1.2],
                               "scheduler.name": ["fcfs", "llmsched"]})

Specs round-trip through JSON (``to_json`` / ``from_json``) and drive the
``python -m repro`` CLI (``run`` / ``grid`` / ``pareto`` / ``validate`` /
``list-schedulers``); committed examples live under ``examples/specs/``.
The legacy ``repro.experiments.runner`` entry points are deprecation shims
over this package.
"""

from repro.api.dispatch import compare, run
from repro.api.grid import expand_axes, run_grid, run_specs
from repro.api.prep import (
    PAPER_BASELINES,
    ExperimentSettings,
    build_priors,
    build_profiler,
    size_cluster,
    size_cluster_for_workload,
    split_cluster_config,
)
from repro.api.results import ComparisonResult, Result
from repro.api.spec import (
    SCHEMA_VERSION,
    AsyncSection,
    AutoscalerSection,
    ClusterSection,
    MigrationSection,
    PlacementSection,
    ScenarioSpec,
    SchedulerSection,
    SettingsSection,
    SLOSection,
    SpecError,
    WorkloadSection,
    with_overrides,
)

__all__ = [
    "SCHEMA_VERSION",
    "SpecError",
    "ScenarioSpec",
    "SchedulerSection",
    "WorkloadSection",
    "ClusterSection",
    "PlacementSection",
    "AsyncSection",
    "AutoscalerSection",
    "MigrationSection",
    "SettingsSection",
    "SLOSection",
    "with_overrides",
    "run",
    "compare",
    "run_grid",
    "run_specs",
    "expand_axes",
    "Result",
    "ComparisonResult",
    "ExperimentSettings",
    "PAPER_BASELINES",
    "build_priors",
    "build_profiler",
    "size_cluster",
    "size_cluster_for_workload",
    "split_cluster_config",
]
