"""Schedulers: the common interface plus the paper's baselines.

LLMSched itself lives in :mod:`repro.core.llmsched`; this package contains
the scheduling interface used by the simulation engine and the six baseline
policies of the evaluation (FCFS, SJF, Fair, Argus, Decima, Carbyne) plus a
plain SRTF used by the ablation study.
"""

from repro.schedulers.base import (
    PreemptionDirective,
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
    flatten_stage_tasks,
    interleave_by_job,
    interleave_tasks,
)
from repro.schedulers.snapshot import CowSnapshotTracker
from repro.schedulers.preemptive import PreemptiveSrtfScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.sjf import SjfScheduler
from repro.schedulers.slo import SloServingScheduler
from repro.schedulers.srtf import SrtfScheduler
from repro.schedulers.argus import ArgusScheduler
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.decima import DecimaScheduler, DecimaPolicy, train_decima
from repro.schedulers.registry import available_schedulers, create_scheduler

__all__ = [
    "Scheduler",
    "SchedulingContext",
    "SchedulingDecision",
    "PreemptionDirective",
    "PreemptiveSrtfScheduler",
    "CowSnapshotTracker",
    "flatten_stage_tasks",
    "interleave_tasks",
    "interleave_by_job",
    "FcfsScheduler",
    "FairScheduler",
    "SjfScheduler",
    "SloServingScheduler",
    "SrtfScheduler",
    "ArgusScheduler",
    "CarbyneScheduler",
    "DecimaScheduler",
    "DecimaPolicy",
    "train_decima",
    "available_schedulers",
    "create_scheduler",
]
