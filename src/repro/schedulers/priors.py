"""Historical per-application priors used by the duration-based baselines.

The paper gives every baseline the same prior information: "the average
duration and resource requirements for each application on its dataset".
:class:`ApplicationPriors` captures that — per-application mean job duration
estimated from offline samples — and provides the simple remaining-duration
estimate (mean minus observed progress) that SJF/SRTF-style baselines use.
LLMSched replaces these static estimates with Bayesian posterior updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.dag.application import ApplicationTemplate
from repro.dag.job import Job
from repro.utils.rng import make_rng

__all__ = ["ApplicationPriors"]

_MIN_REMAINING = 1e-3


class ApplicationPriors:
    """Mean job duration per application, estimated from offline samples."""

    def __init__(self, mean_durations: Mapping[str, float]) -> None:
        cleaned: Dict[str, float] = {}
        for name, value in mean_durations.items():
            if value <= 0:
                raise ValueError(f"mean duration for {name!r} must be > 0")
            cleaned[name] = float(value)
        self._mean_durations = cleaned

    # ------------------------------------------------------------------ #
    @classmethod
    def from_applications(
        cls,
        applications: Iterable[ApplicationTemplate],
        n_samples: int = 100,
        seed: int = 1234,
    ) -> "ApplicationPriors":
        """Estimate priors by sampling jobs from each application offline."""
        rng = make_rng(seed)
        means = {
            app.name: app.estimate_mean_duration(rng, n_samples=n_samples)
            for app in applications
        }
        return cls(means)

    # ------------------------------------------------------------------ #
    def mean_duration(self, application: str) -> float:
        """Historical mean total work of one job of ``application``."""
        if application not in self._mean_durations:
            raise KeyError(f"no prior for application {application!r}")
        return self._mean_durations[application]

    def knows(self, application: str) -> bool:
        return application in self._mean_durations

    def estimate_total(self, job: Job) -> float:
        """Estimated total work of a job (the application's historical mean)."""
        if not self.knows(job.application):
            # Unknown application: fall back to the global mean prior.
            return float(np.mean(list(self._mean_durations.values())))
        return self.mean_duration(job.application)

    def estimate_remaining(self, job: Job) -> float:
        """Estimated remaining work: historical mean minus observed progress."""
        observed = sum(job.observed_durations().values())
        return max(_MIN_REMAINING, self.estimate_total(job) - observed)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._mean_durations)
