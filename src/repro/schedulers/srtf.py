"""Shortest Remaining Time First with pluggable remaining-time estimation.

Plain SRTF (historical mean minus observed progress) is the JCT-efficient
component inside LLMSched's Algorithm 1 and also serves as the
"LLMSched w/o uncertainty" ablation when driven by the Bayesian estimator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
    flatten_stage_tasks,
)
from repro.schedulers.priors import ApplicationPriors

__all__ = ["SrtfScheduler"]

RemainingEstimator = Callable[[Job, SchedulingContext], float]


class SrtfScheduler(Scheduler):
    """Order jobs by their estimated *remaining* duration.

    Parameters
    ----------
    priors:
        Historical per-application means used by the default estimator.
    remaining_estimator:
        Optional replacement estimator ``f(job, context) -> seconds``; the
        Bayesian profiler plugs in here for the "w/o uncertainty" ablation.
    """

    name = "srtf"

    def __init__(
        self,
        priors: Optional[ApplicationPriors] = None,
        remaining_estimator: Optional[RemainingEstimator] = None,
    ) -> None:
        if priors is None and remaining_estimator is None:
            raise ValueError("provide priors or a remaining_estimator")
        self._priors = priors
        self._estimator = remaining_estimator

    def estimate_remaining(self, job: Job, context: SchedulingContext) -> float:
        if self._estimator is not None:
            return self._estimator(job, context)
        assert self._priors is not None
        return self._priors.estimate_remaining(job)

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        return self._schedule_with_remaining(context)[0]

    def _schedule_with_remaining(
        self, context: SchedulingContext
    ) -> Tuple[SchedulingDecision, Dict[str, float]]:
        """(decision, job_id → estimated remaining) for one scheduling pass.

        The estimate map is computed once and shared — the preemptive
        subclass reuses it for victim selection, so pluggable (expensive)
        estimators run once per job per pass, not twice.
        """
        remaining = {
            job.job_id: self.estimate_remaining(job, context) for job in context.jobs
        }
        ordered_jobs = sorted(
            context.jobs,
            key=lambda j: (remaining[j.job_id], j.arrival_time, j.job_id),
        )
        stages: List[Stage] = []
        for job in ordered_jobs:
            job_stages = sorted(
                job.schedulable_stages(),
                key=lambda s: (job.stage_depth(s.stage_id), s.stage_id),
            )
            stages.extend(job_stages)
        return SchedulingDecision.from_tasks(flatten_stage_tasks(stages)), remaining
