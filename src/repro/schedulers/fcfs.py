"""First Come First Serve — Spark's default policy (job-agnostic baseline)."""

from __future__ import annotations

from typing import List

from repro.dag.stage import Stage
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
    flatten_stage_tasks,
)

__all__ = ["FcfsScheduler"]


class FcfsScheduler(Scheduler):
    """Schedule jobs strictly in arrival order.

    Within a job, stages are ordered by DAG depth so upstream work runs
    first; the policy uses no duration or structure profile at all.
    """

    name = "fcfs"

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        ordered_jobs = sorted(context.jobs, key=lambda j: (j.arrival_time, j.job_id))
        stages: List[Stage] = []
        for job in ordered_jobs:
            job_stages = sorted(
                job.schedulable_stages(),
                key=lambda s: (job.stage_depth(s.stage_id), s.stage_id),
            )
            stages.extend(job_stages)
        return SchedulingDecision.from_tasks(flatten_stage_tasks(stages))
