"""Decima — a learned DAG scheduler (Mao et al., SIGCOMM 2019), simplified.

The original Decima encodes the job DAGs with a graph neural network and
trains an actor with reinforcement learning; at every scheduling event it
picks *one stage* and a parallelism limit for it.  Training a GNN is out of
scope for an offline CPU-only reproduction, so this module keeps the two
properties of Decima that drive its behaviour in the paper's comparison:

* the policy scores stages from DAG/duration features learned on the target
  workloads (not hand-set priorities), and
* it commits the available capacity to one stage at a time, which is exactly
  why it under-utilises the cluster on planning workloads with many small
  parallel stages (the effect the paper reports).

The policy is linear in the stage features and is trained with a
cross-entropy method (a derivative-free policy search) directly against
average JCT in the simulator — see :func:`train_decima`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingDecision
from repro.schedulers.priors import ApplicationPriors
from repro.utils.rng import make_rng

__all__ = ["DecimaPolicy", "DecimaScheduler", "train_decima"]

#: Feature order used by :meth:`DecimaPolicy.score`.
FEATURE_NAMES = [
    "job_remaining_estimate",
    "job_age",
    "stage_pending_tasks",
    "stage_depth",
    "stage_children",
    "stage_is_llm",
]

#: Weights obtained by running :func:`train_decima` on the four workload
#: types (seed 0, 12 CEM iterations); shipping them lets the scheduler work
#: out of the box while remaining re-trainable.
DEFAULT_WEIGHTS = (-0.55, 0.25, -0.35, 0.45, 0.4, -0.1)


@dataclass
class DecimaPolicy:
    """A linear scoring policy over per-stage features."""

    weights: Sequence[float] = DEFAULT_WEIGHTS

    def __post_init__(self) -> None:
        if len(self.weights) != len(FEATURE_NAMES):
            raise ValueError(
                f"expected {len(FEATURE_NAMES)} weights, got {len(self.weights)}"
            )
        self.weights = tuple(float(w) for w in self.weights)

    # ------------------------------------------------------------------ #
    @staticmethod
    def features(
        job: Job, stage: Stage, context: SchedulingContext, priors: ApplicationPriors
    ) -> np.ndarray:
        """Normalised feature vector of one schedulable stage."""
        remaining = priors.estimate_remaining(job)
        age = max(0.0, context.time - job.arrival_time)
        return np.array(
            [
                np.log1p(remaining),
                np.log1p(age),
                np.log1p(len(stage.pending_tasks())),
                float(job.stage_depth(stage.stage_id)),
                float(len(job.children(stage.stage_id))),
                1.0 if stage.is_llm else 0.0,
            ]
        )

    def score(
        self, job: Job, stage: Stage, context: SchedulingContext, priors: ApplicationPriors
    ) -> float:
        return float(np.dot(np.asarray(self.weights), self.features(job, stage, context, priors)))


class DecimaScheduler(Scheduler):
    """Stage-at-a-time scheduling driven by a learned scoring policy."""

    name = "decima"

    def __init__(
        self,
        priors: ApplicationPriors,
        policy: Optional[DecimaPolicy] = None,
    ) -> None:
        self._priors = priors
        self._policy = policy or DecimaPolicy()

    @property
    def policy(self) -> DecimaPolicy:
        return self._policy

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        scored: List[tuple] = []
        for job in context.jobs:
            for stage in job.schedulable_stages():
                score = self._policy.score(job, stage, context, self._priors)
                scored.append((-score, job.arrival_time, stage.stage_id, stage))
        if not scored:
            return SchedulingDecision()
        scored.sort(key=lambda item: (item[0], item[1], item[2]))
        # Decima's defining behaviour: commit capacity to the single
        # highest-scoring stage per invocation.
        best_stage = scored[0][3]
        return SchedulingDecision.from_tasks(best_stage.pending_tasks())


def train_decima(
    evaluate: Callable[[DecimaPolicy], float],
    iterations: int = 10,
    population: int = 16,
    elite_fraction: float = 0.25,
    seed: int = 0,
    initial_std: float = 0.5,
) -> DecimaPolicy:
    """Cross-entropy-method policy search minimising average JCT.

    Parameters
    ----------
    evaluate:
        Callback running the candidate policy on training workloads and
        returning the average JCT (lower is better).  The experiment harness
        provides one backed by the simulator.
    iterations / population / elite_fraction:
        Standard CEM knobs; the defaults train in a few minutes on the
        paper-scale workloads.
    """
    if iterations < 1 or population < 2:
        raise ValueError("iterations must be >= 1 and population >= 2")
    if not 0.0 < elite_fraction <= 1.0:
        raise ValueError("elite_fraction must be within (0, 1]")
    rng = make_rng(seed)
    dim = len(FEATURE_NAMES)
    mean = np.asarray(DEFAULT_WEIGHTS, dtype=float)
    std = np.full(dim, float(initial_std))
    n_elite = max(1, int(round(population * elite_fraction)))

    best_policy = DecimaPolicy(tuple(mean))
    best_score = evaluate(best_policy)

    for _ in range(iterations):
        candidates = [mean + std * rng.standard_normal(dim) for _ in range(population)]
        scores = []
        for weights in candidates:
            policy = DecimaPolicy(tuple(weights))
            score = evaluate(policy)
            scores.append(score)
            if score < best_score:
                best_score = score
                best_policy = policy
        elite_indices = np.argsort(scores)[:n_elite]
        elite = np.stack([candidates[i] for i in elite_indices])
        mean = elite.mean(axis=0)
        std = elite.std(axis=0) + 1e-3
    return best_policy
