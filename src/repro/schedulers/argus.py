"""Argus — topology-aware stage ranking (Wu et al., IPDPS 2021).

Argus ranks schedulable stages by DAG topology features: stages deeper in
the job (closer to completion), with more downstream children, and with
fewer tasks are preferred, because finishing them unlocks the most follow-up
work per unit of occupied resource.  Because every job of an application
shares the same (padded) topology, this effectively becomes per-application
scheduling on predefined workloads — the behaviour the paper calls out.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
    flatten_stage_tasks,
)

__all__ = ["ArgusScheduler"]


class ArgusScheduler(Scheduler):
    """Rank stages by (remaining depth, children count, task count)."""

    name = "argus"

    @staticmethod
    def _stage_rank(job: Job, stage: Stage) -> Tuple[float, float, float]:
        depth = job.stage_depth(stage.stage_id)
        num_children = len(job.children(stage.stage_id))
        num_tasks = len(stage.pending_tasks())
        # Higher depth first (closer to the sink), more children first,
        # fewer tasks first. Sorting is ascending, so negate the first two.
        return (-float(depth), -float(num_children), float(num_tasks))

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        ranked: List[Tuple[Tuple[float, float, float], float, str, Job, Stage]] = []
        for job in context.jobs:
            for stage in job.schedulable_stages():
                ranked.append(
                    (self._stage_rank(job, stage), job.arrival_time, stage.stage_id, job, stage)
                )
        ranked.sort(key=lambda item: (item[0], item[1], item[2]))
        stages = [item[4] for item in ranked]
        return SchedulingDecision.from_tasks(flatten_stage_tasks(stages))
