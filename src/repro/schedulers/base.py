"""Scheduler interface shared by LLMSched and all baselines.

The simulation engine calls :meth:`Scheduler.schedule` whenever capacity may
be available (job arrivals, task completions).  The scheduler returns two
*preference lists* — one for regular tasks, one for LLM tasks — and the
engine greedily places as many tasks from the front of each list as the
cluster can currently hold.  Tasks that do not fit simply stay pending and
are reconsidered at the next invocation, so schedulers never need to know
the exact free capacity (though it is exposed on the context for policies
that want it).
"""

from __future__ import annotations

import abc
import copy
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.dag.task import Task, TaskType
from repro.schedulers.snapshot import CowSnapshotTracker

__all__ = [
    "SchedulingContext",
    "SchedulingDecision",
    "PreemptionDirective",
    "Scheduler",
    "flatten_stage_tasks",
    "interleave_tasks",
    "interleave_by_job",
]


@dataclass
class SchedulingContext:
    """A snapshot of everything a scheduler may look at when deciding.

    Attributes
    ----------
    time:
        Current simulation time in seconds.
    jobs:
        Arrived and unfinished jobs, in arrival order.
    free_regular_slots / free_llm_slots:
        Currently available capacity (regular executors, LLM batch slots).
    llm_batch_sizes:
        Current batch size of every LLM executor (used by batching-aware
        duration calibration).
    """

    time: float
    jobs: List[Job]
    free_regular_slots: int = 0
    free_llm_slots: int = 0
    llm_batch_sizes: List[int] = field(default_factory=list)
    #: Executor ids that no longer accept work (draining or retired under
    #: autoscaling).  Preemptive schedulers must not pick victims here:
    #: preempting a draining executor frees no assignable capacity.
    inactive_executor_ids: Set[str] = field(default_factory=set)
    #: Executor-id → hardware speed factor (populated for preemptive
    #: schedulers only), so victim remaining-*time* estimates stay correct
    #: on heterogeneous pools; executors absent from the map run at 1.0.
    executor_speeds: Dict[str, float] = field(default_factory=dict)
    #: Executor-id → prefill/decode role (populated for preemptive
    #: schedulers on disaggregated clusters only; empty otherwise).  Lets
    #: SLO-aware policies detect requests that finished prefill on a
    #: prefill-role executor and should migrate to a decode pool.
    executor_roles: Dict[str, str] = field(default_factory=dict)
    #: Shard view (federated runs only): which shard of the fleet this
    #: context describes, how many shards exist, and the fleet-wide free
    #: capacity per task type.  Standalone runs keep the defaults, so
    #: schedulers can branch on ``shard_count > 1`` to detect federation.
    shard_name: str = ""
    shard_count: int = 1
    fleet_free_slots: Dict[TaskType, int] = field(default_factory=dict)
    #: Set on contexts produced by :meth:`snapshot`: the simulation time at
    #: which the view was frozen.  Live contexts keep ``None``.  Asynchronous
    #: backends hand snapshots to schedulers so a decision computed during a
    #: latency window cannot observe (or corrupt) later cluster mutations.
    snapshot_time: Optional[float] = None
    # Lazily-built job_id -> Job index backing job_of (built at most once
    # per context; the job *set* of a context never changes — COW snapshots
    # may swap individual entries for clones, which resets this cache).
    _jobs_by_id: Optional[Dict[str, Job]] = field(default=None, repr=False, compare=False)
    #: Copy-on-write wiring (set by the engine on live contexts when the
    #: run uses ``snapshot_policy="cow"``).  ``_cow_tracker`` makes
    #: :meth:`snapshot` return a sharing view instead of a deep copy;
    #: ``_cow_shared`` (snapshots only) maps job_id -> index of entries in
    #: ``jobs`` that still alias live job objects.  The tracker evicts an
    #: entry and swaps in a private clone right before the live engine
    #: mutates that job (see :class:`~repro.schedulers.snapshot.
    #: CowSnapshotTracker`).
    _cow_tracker: Optional[CowSnapshotTracker] = field(
        default=None, repr=False, compare=False
    )
    _cow_shared: Optional[Dict[str, int]] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def schedulable_stages(self) -> List[Stage]:
        """Every stage that currently has pending tasks and satisfied deps."""
        stages: List[Stage] = []
        for job in self.jobs:
            stages.extend(job.schedulable_stages())
        return stages

    def schedulable_tasks(self) -> List[Task]:
        return [t for s in self.schedulable_stages() for t in s.pending_tasks()]

    def running_tasks(self) -> List[Task]:
        """Tasks currently placed on executors (preemption candidates)."""
        tasks: List[Task] = []
        for job in self.jobs:
            # Running tasks only exist in non-complete stages, and
            # unfinished_stages() walks the stage dict without copying it.
            for stage in job.unfinished_stages():
                tasks.extend(stage.running_tasks())
        return tasks

    def job_of(self, task: Task) -> Job:
        index = self._jobs_by_id
        if index is None:
            index = {job.job_id: job for job in self.jobs}
            self._jobs_by_id = index
        try:
            return index[task.job_id]
        except KeyError:
            raise KeyError(f"task {task.key()} belongs to no active job") from None

    @property
    def average_llm_batch_size(self) -> float:
        """Mean batch size over *busy* LLM executors.

        Idle executors (batch size 0) are excluded: batching-aware duration
        calibration asks "what batch does a request share when it runs?",
        and an idle executor contributes batch 1 the moment a request lands
        on it, never batch 0.  Averaging zeros in deflated the estimate
        exactly when the cluster was underloaded.  With no busy executor
        (or no LLM pool at all) the answer is the no-contention batch of 1.
        """
        busy = [b for b in self.llm_batch_sizes if b > 0]
        if not busy:
            return 1.0
        return sum(busy) / len(busy)

    @property
    def is_snapshot(self) -> bool:
        return self.snapshot_time is not None

    def snapshot(self) -> "SchedulingContext":
        """A frozen view of this context, immune to live mutations.

        Two implementations, selected by whether the engine attached a
        :class:`~repro.schedulers.snapshot.CowSnapshotTracker`:

        * **Copy-on-write** (the engine default, ``snapshot_policy="cow"``):
          the snapshot starts out sharing every live ``Job`` object; the
          engine copies a job into the snapshot right before mutating it.
          Creation is O(active jobs) pointer copies instead of a deep copy
          of the whole DAG forest.  The snapshot is a *read-only* view —
          the scheduler contract already forbids mutating the context, and
          under COW a write-through would corrupt live state.
        * **Deep copy** (the golden oracle, ``snapshot_policy="deepcopy"``,
          and the default for bare contexts built outside an engine): jobs
          with their stages and tasks are deep-copied, so isolation holds
          in both directions.

        Either way a scheduler deciding against the snapshot sees the
        cluster exactly as it was at ``time`` no matter what the live
        simulation does in the meantime.  Tasks inside a decision computed
        from a snapshot may be copies; whoever applies the decision must
        map them back onto the live jobs by key (see
        ``SimulationEngine._resolve_live_task`` — under COW the mapping is
        usually the identity, but the engine never relies on that).

        Snapshots are frozen at a single instant: re-snapshotting one is
        always a bug (it would silently re-stamp ``snapshot_time``), so it
        raises instead.
        """
        if self.is_snapshot:
            raise RuntimeError(
                "cannot snapshot a snapshot: this context was already frozen "
                f"at t={self.snapshot_time}; take snapshots from the live context"
            )
        if self._cow_tracker is not None:
            snapshot = SchedulingContext(
                time=self.time,
                jobs=list(self.jobs),
                free_regular_slots=self.free_regular_slots,
                free_llm_slots=self.free_llm_slots,
                llm_batch_sizes=list(self.llm_batch_sizes),
                inactive_executor_ids=set(self.inactive_executor_ids),
                executor_speeds=dict(self.executor_speeds),
                executor_roles=dict(self.executor_roles),
                shard_name=self.shard_name,
                shard_count=self.shard_count,
                fleet_free_slots=dict(self.fleet_free_slots),
                snapshot_time=self.time,
            )
            snapshot._cow_shared = {
                job.job_id: index for index, job in enumerate(snapshot.jobs)
            }
            self._cow_tracker.register(snapshot)
            return snapshot
        return SchedulingContext(
            time=self.time,
            jobs=copy.deepcopy(self.jobs),
            free_regular_slots=self.free_regular_slots,
            free_llm_slots=self.free_llm_slots,
            llm_batch_sizes=list(self.llm_batch_sizes),
            inactive_executor_ids=set(self.inactive_executor_ids),
            executor_speeds=dict(self.executor_speeds),
            executor_roles=dict(self.executor_roles),
            shard_name=self.shard_name,
            shard_count=self.shard_count,
            fleet_free_slots=dict(self.fleet_free_slots),
            snapshot_time=self.time,
        )


@dataclass(frozen=True)
class PreemptionDirective:
    """Checkpoint one running task back to PENDING before placement.

    With ``checkpoint=True`` (the default) the task's progress is conserved
    — it resumes later with only its remaining work (the engine counts the
    preemption but no work is wasted).  ``checkpoint=False`` models
    restart-from-scratch preemption; the discarded progress is recorded as
    wasted work in the run metrics.
    """

    task: Task
    checkpoint: bool = True


@dataclass
class SchedulingDecision:
    """Ordered task preferences returned by a scheduler.

    ``preemptions`` (optional, preemptive schedulers only) are applied by
    the engine *before* the preference lists are placed, so freed capacity
    is immediately available to the listed tasks.
    """

    regular_tasks: List[Task] = field(default_factory=list)
    llm_tasks: List[Task] = field(default_factory=list)
    preemptions: List[PreemptionDirective] = field(default_factory=list)

    def __post_init__(self) -> None:
        for task in self.regular_tasks:
            if task.task_type is not TaskType.REGULAR:
                raise ValueError(f"{task.key()} is not a regular task")
        for task in self.llm_tasks:
            if task.task_type is not TaskType.LLM:
                raise ValueError(f"{task.key()} is not an LLM task")
        for directive in self.preemptions:
            if not isinstance(directive, PreemptionDirective):
                raise ValueError("preemptions must be PreemptionDirective instances")

    @classmethod
    def from_tasks(cls, tasks: Iterable[Task]) -> "SchedulingDecision":
        """Split an ordered task list into the two preference lists."""
        regular: List[Task] = []
        llm: List[Task] = []
        for task in tasks:
            (llm if task.task_type is TaskType.LLM else regular).append(task)
        return cls(regular_tasks=regular, llm_tasks=llm)

    @property
    def total_tasks(self) -> int:
        return len(self.regular_tasks) + len(self.llm_tasks)


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: Human-readable name used in experiment reports.
    name: str = "base"

    #: Preemptive schedulers may return :class:`PreemptionDirective`s and
    #: are invoked even when the cluster has no free capacity (a scheduling
    #: pass can *create* capacity).  Non-preemptive schedulers keep the
    #: pre-preemption fast path: no invocation on a full cluster.
    preemptive: bool = False

    # Optional hooks ----------------------------------------------------- #
    def on_job_arrival(self, job: Job, time: float) -> None:
        """Called once when a job arrives (before the next scheduling pass)."""

    def on_stage_complete(self, job: Job, stage: Stage, time: float) -> None:
        """Called when every task of a stage has finished (or it was skipped)."""

    def on_job_complete(self, job: Job, time: float) -> None:
        """Called when a job finishes."""

    # Mandatory ---------------------------------------------------------- #
    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        """Return preference lists for the currently schedulable tasks."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def flatten_stage_tasks(stages: Sequence[Stage]) -> List[Task]:
    """Flatten stages into tasks, keeping the given stage priority order.

    All tasks of a higher-priority stage come before tasks of lower-priority
    stages; within a stage, tasks keep their index order.  This is what the
    priority-ordering baselines (FCFS/SJF/SRTF/Argus) want: the stage order
    *is* the preference order, and no cross-stage fairness is implied.
    """
    tasks: List[Task] = []
    for stage in stages:
        tasks.extend(stage.pending_tasks())
    return tasks


def interleave_tasks(stages: Sequence[Stage]) -> List[Task]:
    """True round-robin over stages: one pending task per stage per round.

    The first pending task of every stage (in the given priority order),
    then every second pending task, and so on — so no single wide stage can
    starve the others while still respecting the priority order within each
    round.  Use :func:`flatten_stage_tasks` when strict stage priority is
    wanted instead.
    """
    queues = [stage.pending_tasks() for stage in stages]
    tasks: List[Task] = []
    for rank in range(max((len(q) for q in queues), default=0)):
        for queue in queues:
            if rank < len(queue):
                tasks.append(queue[rank])
    return tasks


def interleave_by_job(stages: Sequence[Stage]) -> List[Task]:
    """Deprecated misnomer for :func:`flatten_stage_tasks`.

    Despite the historical name (and docstring), this never interleaved
    anything — it flat-concatenates stage tasks in priority order.  Kept as
    an alias so downstream callers keep working; use
    :func:`flatten_stage_tasks` for the same behavior or
    :func:`interleave_tasks` for actual round-robin interleaving.
    """
    warnings.warn(
        "interleave_by_job is a misnomer and is deprecated: it flat-concatenates "
        "stage tasks (use flatten_stage_tasks) and never interleaved (use "
        "interleave_tasks for round-robin)",
        DeprecationWarning,
        stacklevel=2,
    )
    return flatten_stage_tasks(stages)
