"""Scheduler interface shared by LLMSched and all baselines.

The simulation engine calls :meth:`Scheduler.schedule` whenever capacity may
be available (job arrivals, task completions).  The scheduler returns two
*preference lists* — one for regular tasks, one for LLM tasks — and the
engine greedily places as many tasks from the front of each list as the
cluster can currently hold.  Tasks that do not fit simply stay pending and
are reconsidered at the next invocation, so schedulers never need to know
the exact free capacity (though it is exposed on the context for policies
that want it).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.dag.task import Task, TaskType

__all__ = ["SchedulingContext", "SchedulingDecision", "Scheduler", "interleave_by_job"]


@dataclass
class SchedulingContext:
    """A snapshot of everything a scheduler may look at when deciding.

    Attributes
    ----------
    time:
        Current simulation time in seconds.
    jobs:
        Arrived and unfinished jobs, in arrival order.
    free_regular_slots / free_llm_slots:
        Currently available capacity (regular executors, LLM batch slots).
    llm_batch_sizes:
        Current batch size of every LLM executor (used by batching-aware
        duration calibration).
    """

    time: float
    jobs: List[Job]
    free_regular_slots: int = 0
    free_llm_slots: int = 0
    llm_batch_sizes: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def schedulable_stages(self) -> List[Stage]:
        """Every stage that currently has pending tasks and satisfied deps."""
        stages: List[Stage] = []
        for job in self.jobs:
            stages.extend(job.schedulable_stages())
        return stages

    def schedulable_tasks(self) -> List[Task]:
        return [t for s in self.schedulable_stages() for t in s.pending_tasks()]

    def job_of(self, task: Task) -> Job:
        for job in self.jobs:
            if job.job_id == task.job_id:
                return job
        raise KeyError(f"task {task.key()} belongs to no active job")

    @property
    def average_llm_batch_size(self) -> float:
        if not self.llm_batch_sizes:
            return 1.0
        return max(1.0, sum(self.llm_batch_sizes) / len(self.llm_batch_sizes))


@dataclass
class SchedulingDecision:
    """Ordered task preferences returned by a scheduler."""

    regular_tasks: List[Task] = field(default_factory=list)
    llm_tasks: List[Task] = field(default_factory=list)

    def __post_init__(self) -> None:
        for task in self.regular_tasks:
            if task.task_type is not TaskType.REGULAR:
                raise ValueError(f"{task.key()} is not a regular task")
        for task in self.llm_tasks:
            if task.task_type is not TaskType.LLM:
                raise ValueError(f"{task.key()} is not an LLM task")

    @classmethod
    def from_tasks(cls, tasks: Iterable[Task]) -> "SchedulingDecision":
        """Split an ordered task list into the two preference lists."""
        regular: List[Task] = []
        llm: List[Task] = []
        for task in tasks:
            (llm if task.task_type is TaskType.LLM else regular).append(task)
        return cls(regular_tasks=regular, llm_tasks=llm)

    @property
    def total_tasks(self) -> int:
        return len(self.regular_tasks) + len(self.llm_tasks)


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: Human-readable name used in experiment reports.
    name: str = "base"

    # Optional hooks ----------------------------------------------------- #
    def on_job_arrival(self, job: Job, time: float) -> None:
        """Called once when a job arrives (before the next scheduling pass)."""

    def on_stage_complete(self, job: Job, stage: Stage, time: float) -> None:
        """Called when every task of a stage has finished (or it was skipped)."""

    def on_job_complete(self, job: Job, time: float) -> None:
        """Called when a job finishes."""

    # Mandatory ---------------------------------------------------------- #
    @abc.abstractmethod
    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        """Return preference lists for the currently schedulable tasks."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def interleave_by_job(stages: Sequence[Stage]) -> List[Task]:
    """Flatten stages into tasks, keeping the given stage (job) priority order.

    All tasks of a higher-priority stage come before tasks of lower-priority
    stages; within a stage, tasks keep their index order.
    """
    tasks: List[Task] = []
    for stage in stages:
        tasks.extend(stage.pending_tasks())
    return tasks
