"""Shortest Job First — prioritise the job with the shortest estimated duration."""

from __future__ import annotations

from typing import List

from repro.dag.stage import Stage
from repro.schedulers.base import (
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
    flatten_stage_tasks,
)
from repro.schedulers.priors import ApplicationPriors

__all__ = ["SjfScheduler"]


class SjfScheduler(Scheduler):
    """Order jobs by the historical mean duration of their application.

    This is the strongest simple baseline on mixed workloads in the paper,
    but it ignores duration uncertainty: two jobs of the same application are
    indistinguishable, and a job whose actual duration deviates from the
    historical mean is mis-ranked.
    """

    name = "sjf"

    def __init__(self, priors: ApplicationPriors) -> None:
        self._priors = priors

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        ordered_jobs = sorted(
            context.jobs,
            key=lambda j: (self._priors.estimate_total(j), j.arrival_time, j.job_id),
        )
        stages: List[Stage] = []
        for job in ordered_jobs:
            job_stages = sorted(
                job.schedulable_stages(),
                key=lambda s: (job.stage_depth(s.stage_id), s.stage_id),
            )
            stages.extend(job_stages)
        return SchedulingDecision.from_tasks(flatten_stage_tasks(stages))
