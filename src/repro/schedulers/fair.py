"""Fair scheduling — equal shares across running jobs (job-agnostic baseline)."""

from __future__ import annotations

from itertools import zip_longest
from typing import List

from repro.dag.task import Task
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingDecision

__all__ = ["FairScheduler"]


class FairScheduler(Scheduler):
    """Round-robin task interleaving so every active job gets an equal share.

    This mirrors Spark's Fair scheduler at the granularity the simulator
    works with: at every scheduling point the available slots are spread
    across jobs one task at a time instead of being handed to a single job.
    """

    name = "fair"

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        per_job_tasks: List[List[Task]] = []
        for job in sorted(context.jobs, key=lambda j: (j.arrival_time, j.job_id)):
            stages = sorted(
                job.schedulable_stages(),
                key=lambda s: (job.stage_depth(s.stage_id), s.stage_id),
            )
            tasks = [t for s in stages for t in s.pending_tasks()]
            if tasks:
                per_job_tasks.append(tasks)

        interleaved: List[Task] = []
        for round_tasks in zip_longest(*per_job_tasks):
            interleaved.extend(t for t in round_tasks if t is not None)
        return SchedulingDecision.from_tasks(interleaved)
