"""Carbyne — altruistic multi-resource scheduling (Grandl et al., OSDI 2016).

Carbyne lets every job claim just enough resources to keep its own expected
completion time, and altruistically donates the leftover to the jobs that
benefit most.  A faithful reimplementation requires the full multi-resource
packing machinery of the original system; this reproduction keeps the two
behaviours the paper's comparison actually exercises:

1. jobs are primarily ordered by their estimated remaining duration (the
   completion-time-preserving share), and
2. leftover capacity is donated to the tasks that most improve *other*
   jobs' progress — approximated by preferring stages that unlock the most
   downstream work (children count) across the remaining jobs.

The simplification is documented in DESIGN.md; like the original, the policy
is duration-informed but not uncertainty-aware.
"""

from __future__ import annotations

from typing import List

from repro.dag.stage import Stage
from repro.dag.task import Task
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingDecision
from repro.schedulers.priors import ApplicationPriors

__all__ = ["CarbyneScheduler"]


class CarbyneScheduler(Scheduler):
    """SRTF-ordered primary share plus an altruistic leftover share."""

    name = "carbyne"

    def __init__(self, priors: ApplicationPriors, primary_fraction: float = 0.7) -> None:
        if not 0.0 < primary_fraction <= 1.0:
            raise ValueError("primary_fraction must be within (0, 1]")
        self._priors = priors
        self._primary_fraction = primary_fraction

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        jobs_by_remaining = sorted(
            context.jobs,
            key=lambda j: (self._priors.estimate_remaining(j), j.arrival_time, j.job_id),
        )

        # Primary share: keep the shortest-remaining jobs on track.
        primary_tasks: List[Task] = []
        primary_count = max(1, int(round(len(jobs_by_remaining) * self._primary_fraction)))
        for job in jobs_by_remaining[:primary_count]:
            stages = sorted(
                job.schedulable_stages(),
                key=lambda s: (job.stage_depth(s.stage_id), s.stage_id),
            )
            for stage in stages:
                primary_tasks.extend(stage.pending_tasks())

        # Altruistic leftover: donate to stages that unlock the most
        # downstream work among the remaining jobs.
        leftover: List[Task] = []
        donations: List[tuple] = []
        for job in jobs_by_remaining[primary_count:]:
            for stage in job.schedulable_stages():
                unlocked = len(job.children(stage.stage_id))
                donations.append((-float(unlocked), job.arrival_time, stage.stage_id, stage))
        donations.sort(key=lambda item: (item[0], item[1], item[2]))
        for _, _, _, stage in donations:
            leftover.extend(stage.pending_tasks())

        return SchedulingDecision.from_tasks(primary_tasks + leftover)
