"""Preemptive SRTF: checkpoint long-job tasks when shorter jobs wait.

Non-preemptive SRTF can only reorder *pending* tasks, so a burst of short
jobs arriving while long jobs occupy the whole cluster must wait for
natural completions.  This scheduler extends SRTF with checkpoint
preemption: when tasks of a shorter-remaining job cannot be placed for
lack of capacity, it issues :class:`~repro.schedulers.base.
PreemptionDirective`s against running tasks of the longest-remaining jobs.
Preempted work is checkpointed (progress conserved), so under the work-
conserving simulator the cost of a preemption is only the requeue — which
is exactly when SRTF's exchange argument says swapping is worth it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dag.task import Task, TaskType
from repro.schedulers.base import PreemptionDirective, SchedulingContext, SchedulingDecision
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.srtf import RemainingEstimator, SrtfScheduler

__all__ = ["PreemptiveSrtfScheduler"]


class PreemptiveSrtfScheduler(SrtfScheduler):
    """SRTF preference lists plus preemption of longest-remaining victims.

    Parameters
    ----------
    priors / remaining_estimator:
        As for :class:`~repro.schedulers.srtf.SrtfScheduler`.
    min_advantage:
        A victim is only preempted for a task of a job whose estimated
        remaining time is at least ``min_advantage`` seconds shorter than
        the victim job's.  Raising it trades responsiveness for fewer
        preemptions (useful when estimates are noisy).
    max_preemptions_per_event:
        Safety valve bounding churn per scheduling point.
    """

    name = "srtf_preempt"
    preemptive = True

    def __init__(
        self,
        priors: Optional[ApplicationPriors] = None,
        remaining_estimator: Optional[RemainingEstimator] = None,
        min_advantage: float = 0.0,
        max_preemptions_per_event: int = 8,
    ) -> None:
        super().__init__(priors=priors, remaining_estimator=remaining_estimator)
        if min_advantage < 0:
            raise ValueError("min_advantage must be >= 0")
        if max_preemptions_per_event < 1:
            raise ValueError("max_preemptions_per_event must be >= 1")
        self._min_advantage = float(min_advantage)
        self._max_preemptions = int(max_preemptions_per_event)

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        decision, remaining = self._schedule_with_remaining(context)
        if (
            len(decision.regular_tasks) <= context.free_regular_slots
            and len(decision.llm_tasks) <= context.free_llm_slots
        ):
            return decision  # everything fits: nothing to preempt for
        preemptions = self._plan_preemptions(context, decision, remaining)
        if preemptions:
            decision.preemptions = preemptions
        return decision

    def _plan_preemptions(
        self,
        context: SchedulingContext,
        decision: SchedulingDecision,
        remaining: Dict[str, float],
    ) -> List[PreemptionDirective]:
        # Victim pool: running tasks, longest-remaining owning job first.
        # Ties break toward later-arrived jobs so FIFO fairness is kept.
        # Tasks on draining/retired executors are no use as victims —
        # preempting them frees no assignable slot — so they are excluded
        # up front rather than wasting the per-event preemption budget.
        inactive = context.inactive_executor_ids
        candidates = context.running_tasks()
        if inactive:
            candidates = [t for t in candidates if t.executor_id not in inactive]
        victims = sorted(
            candidates,
            key=lambda t: (
                remaining.get(t.job_id, 0.0),
                context.job_of(t).arrival_time,
                t.job_id,
                t.uid,
            ),
            reverse=True,
        )
        directives: List[PreemptionDirective] = []
        claimed: set = set()
        budget = self._max_preemptions
        for task_type, tasks, free in (
            (TaskType.REGULAR, decision.regular_tasks, context.free_regular_slots),
            (TaskType.LLM, decision.llm_tasks, context.free_llm_slots),
        ):
            # Tasks beyond the free capacity are the ones placement will cut.
            for blocked in tasks[free:]:
                if budget <= 0:
                    break
                blocked_remaining = remaining.get(blocked.job_id, 0.0)
                victim = self._pick_victim(
                    victims, remaining, claimed, task_type, blocked_remaining, blocked.job_id
                )
                if victim is None:
                    break  # no longer-remaining victim of this type exists
                claimed.add(victim.uid)
                directives.append(PreemptionDirective(task=victim, checkpoint=True))
                budget -= 1
        return directives

    def _pick_victim(
        self,
        victims: List[Task],
        remaining: Dict[str, float],
        claimed: set,
        task_type: TaskType,
        blocked_remaining: float,
        blocked_job_id: str,
    ) -> Optional[Task]:
        threshold = blocked_remaining + self._min_advantage
        for victim in victims:
            if victim.task_type is not task_type:
                continue
            if remaining.get(victim.job_id, 0.0) <= threshold:
                return None  # sorted longest-first: nothing further qualifies
            if victim.uid in claimed or victim.job_id == blocked_job_id:
                continue
            return victim
        return None
