"""Preemptive SRTF: checkpoint long-job tasks when shorter jobs wait.

Non-preemptive SRTF can only reorder *pending* tasks, so a burst of short
jobs arriving while long jobs occupy the whole cluster must wait for
natural completions.  This scheduler extends SRTF with checkpoint
preemption: when tasks of a shorter-remaining job cannot be placed for
lack of capacity, it issues :class:`~repro.schedulers.base.
PreemptionDirective`s against running tasks of the longest-remaining jobs.
Preempted work is checkpointed (progress conserved), so under the work-
conserving simulator the cost of a preemption is only the requeue — which
is exactly when SRTF's exchange argument says swapping is worth it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dag.task import Task, TaskType
from repro.schedulers.base import PreemptionDirective, SchedulingContext, SchedulingDecision
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.srtf import RemainingEstimator, SrtfScheduler

__all__ = ["PreemptiveSrtfScheduler"]


class PreemptiveSrtfScheduler(SrtfScheduler):
    """SRTF preference lists plus preemption of longest-remaining victims.

    Parameters
    ----------
    priors / remaining_estimator:
        As for :class:`~repro.schedulers.srtf.SrtfScheduler`.
    min_advantage:
        A victim is only preempted for a task of a job whose estimated
        remaining time is at least ``min_advantage`` seconds shorter than
        the victim job's.  Raising it trades responsiveness for fewer
        preemptions (useful when estimates are noisy).
    max_preemptions_per_event:
        Safety valve bounding churn per scheduling point.
    min_victim_remaining:
        Floor on the victim *task's* own remaining time: a task within
        this many seconds of finishing is never preempted — its slot frees
        at the next completion event anyway, so checkpointing it is pure
        churn (and, under restart-from-scratch preemption, discards almost
        the task's entire work).  The default matches the engine's
        eps-scale completion tolerance (the pre-``SimulationConfig.eps``
        hard-coded ``1e-6``); raise it to also spare nearly-done tasks.
    checkpoint:
        Whether preempted work is checkpointed (progress conserved, the
        default) or restarted from scratch (progress discarded and metered
        as wasted work) — the latter models systems without checkpointing.
    """

    name = "srtf_preempt"
    preemptive = True

    def __init__(
        self,
        priors: Optional[ApplicationPriors] = None,
        remaining_estimator: Optional[RemainingEstimator] = None,
        min_advantage: float = 0.0,
        max_preemptions_per_event: int = 8,
        min_victim_remaining: float = 1e-6,
        checkpoint: bool = True,
    ) -> None:
        super().__init__(priors=priors, remaining_estimator=remaining_estimator)
        if min_advantage < 0:
            raise ValueError("min_advantage must be >= 0")
        if max_preemptions_per_event < 1:
            raise ValueError("max_preemptions_per_event must be >= 1")
        if min_victim_remaining < 0:
            raise ValueError("min_victim_remaining must be >= 0")
        self._min_advantage = float(min_advantage)
        self._max_preemptions = int(max_preemptions_per_event)
        self._min_victim_remaining = float(min_victim_remaining)
        self._checkpoint = bool(checkpoint)

    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        decision, remaining = self._schedule_with_remaining(context)
        if (
            len(decision.regular_tasks) <= context.free_regular_slots
            and len(decision.llm_tasks) <= context.free_llm_slots
        ):
            return decision  # everything fits: nothing to preempt for
        preemptions = self._plan_preemptions(context, decision, remaining)
        if preemptions:
            decision.preemptions = preemptions
        return decision

    def _plan_preemptions(
        self,
        context: SchedulingContext,
        decision: SchedulingDecision,
        remaining: Dict[str, float],
    ) -> List[PreemptionDirective]:
        # Victim pool: running tasks, longest-remaining owning job first.
        # Ties break toward later-arrived jobs so FIFO fairness is kept.
        # Tasks on draining/retired executors are no use as victims —
        # preempting them frees no assignable slot — and a task within the
        # remaining-time floor of finishing frees its slot at the next
        # completion event anyway; both are excluded up front rather than
        # wasting the per-event preemption budget.
        inactive = context.inactive_executor_ids
        speeds = context.executor_speeds
        candidates = [
            t
            for t in context.running_tasks()
            if self._victim_remaining_time(t, context.time, speeds) > self._min_victim_remaining
        ]
        if inactive:
            candidates = [t for t in candidates if t.executor_id not in inactive]
        victims = sorted(
            candidates,
            key=lambda t: (
                remaining.get(t.job_id, 0.0),
                context.job_of(t).arrival_time,
                t.job_id,
                t.uid,
            ),
            reverse=True,
        )
        directives: List[PreemptionDirective] = []
        claimed: set = set()
        budget = self._max_preemptions
        for task_type, tasks, free in (
            (TaskType.REGULAR, decision.regular_tasks, context.free_regular_slots),
            (TaskType.LLM, decision.llm_tasks, context.free_llm_slots),
        ):
            # Tasks beyond the free capacity are the ones placement will cut.
            for blocked in tasks[free:]:
                if budget <= 0:
                    break
                blocked_remaining = remaining.get(blocked.job_id, 0.0)
                victim = self._pick_victim(
                    victims, remaining, claimed, task_type, blocked_remaining, blocked.job_id
                )
                if victim is None:
                    break  # no longer-remaining victim of this type exists
                claimed.add(victim.uid)
                directives.append(
                    PreemptionDirective(task=victim, checkpoint=self._checkpoint)
                )
                budget -= 1
        return directives

    @staticmethod
    def _victim_remaining_time(task: Task, now: float, speeds: Dict[str, float]) -> float:
        """Estimated wall-clock seconds until ``task`` itself finishes.

        ``speeds`` maps executor ids to their pool's hardware speed factor
        (from the scheduling context), so the estimate stays honest on
        heterogeneous pools.  LLM tasks carry accurate ``remaining_work``
        (progress is accrued by the engine's clock advance) but their wall
        time also depends on the batch, which only the executor knows —
        dividing by the speed factor is the closest scheduler-side
        estimate.  Regular tasks bank progress only at checkpoints, so
        elapsed running time is subtracted instead.
        """
        speed = speeds.get(task.executor_id, 1.0) if task.executor_id else 1.0
        if task.task_type is TaskType.REGULAR and task.start_time is not None:
            return max(0.0, task.remaining_work / speed - (now - task.start_time))
        return task.remaining_work / speed

    def _pick_victim(
        self,
        victims: List[Task],
        remaining: Dict[str, float],
        claimed: set,
        task_type: TaskType,
        blocked_remaining: float,
        blocked_job_id: str,
    ) -> Optional[Task]:
        threshold = blocked_remaining + self._min_advantage
        for victim in victims:
            if victim.task_type is not task_type:
                continue
            if remaining.get(victim.job_id, 0.0) <= threshold:
                return None  # sorted longest-first: nothing further qualifies
            if victim.uid in claimed or victim.job_id == blocked_job_id:
                continue
            return victim
        return None
