"""Name-based scheduler construction used by the experiment harness."""

from __future__ import annotations

from typing import List, Optional

from repro.schedulers.argus import ArgusScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.decima import DecimaPolicy, DecimaScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.preemptive import PreemptiveSrtfScheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.sjf import SjfScheduler
from repro.schedulers.srtf import SrtfScheduler

__all__ = ["available_schedulers", "create_scheduler"]

#: Baseline names in the order the paper's figures list them.
_BASELINES = ["fcfs", "sjf", "fair", "argus", "decima", "carbyne"]


def available_schedulers(
    include_llmsched: bool = True, include_preemptive: bool = False
) -> List[str]:
    """Names accepted by :func:`create_scheduler`.

    ``include_preemptive`` is off by default so harness code that sweeps
    "the paper's schedulers" (all non-preemptive) is unaffected by the
    preemptive extension.
    """
    names = list(_BASELINES) + ["srtf"]
    if include_llmsched:
        names.append("llmsched")
    if include_preemptive:
        names.append("srtf_preempt")
    return names


def create_scheduler(
    name: str,
    priors: Optional[ApplicationPriors] = None,
    decima_policy: Optional[DecimaPolicy] = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a scheduler by name.

    ``llmsched`` requires the profiler and configuration arguments of
    :class:`repro.core.llmsched.LLMSchedScheduler`, which are passed through
    ``kwargs``; the duration-based baselines require ``priors``.
    """
    key = name.lower()
    if key == "fcfs":
        return FcfsScheduler()
    if key == "fair":
        return FairScheduler()
    if key == "sjf":
        return SjfScheduler(_require_priors(key, priors))
    if key == "srtf":
        return SrtfScheduler(priors=_require_priors(key, priors))
    if key == "srtf_preempt":
        return PreemptiveSrtfScheduler(priors=_require_priors(key, priors))
    if key == "argus":
        return ArgusScheduler()
    if key == "carbyne":
        return CarbyneScheduler(_require_priors(key, priors))
    if key == "decima":
        return DecimaScheduler(_require_priors(key, priors), policy=decima_policy)
    if key == "llmsched":
        # Imported lazily to avoid a circular import (core depends on schedulers).
        from repro.core.llmsched import LLMSchedScheduler

        return LLMSchedScheduler(**kwargs)
    raise ValueError(f"unknown scheduler {name!r}; available: {available_schedulers()}")


def _require_priors(name: str, priors: Optional[ApplicationPriors]) -> ApplicationPriors:
    if priors is None:
        raise ValueError(f"scheduler {name!r} requires application priors")
    return priors
