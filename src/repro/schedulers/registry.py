"""Name-based scheduler construction: the single scheduler factory.

Every part of the harness — the declarative :mod:`repro.api` front door,
the legacy experiment runner shims, the golden-trace tests — builds
schedulers through :func:`create_scheduler`.  The factory accepts the
offline artifacts a scheduler may need (``priors`` for the duration-based
baselines, a fitted ``profiler`` plus experiment ``settings`` for the
LLMSched family, including its three ablation variants) so no caller has
to special-case construction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, FrozenSet, List, Mapping, Optional

from repro.schedulers.argus import ArgusScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.carbyne import CarbyneScheduler
from repro.schedulers.decima import DecimaPolicy, DecimaScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fcfs import FcfsScheduler
from repro.schedulers.preemptive import PreemptiveSrtfScheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.sjf import SjfScheduler
from repro.schedulers.slo import SloServingScheduler
from repro.schedulers.srtf import SrtfScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.api.prep import ExperimentSettings
    from repro.core.profiler import BayesianProfiler

__all__ = [
    "available_schedulers",
    "create_scheduler",
    "scheduler_requirements",
    "check_scheduler_kwargs",
    "LLMSCHED_VARIANTS",
]

#: Baseline names in the order the paper's figures list them.
_BASELINES = ["fcfs", "sjf", "fair", "argus", "decima", "carbyne"]

#: LLMSched plus its ablation variants (Fig. 10); all need a fitted profiler.
LLMSCHED_VARIANTS = (
    "llmsched",
    "llmsched_wo_bn",
    "llmsched_wo_uncertainty",
    "llmsched_wo_calibration",
)

#: Schedulers that estimate durations from per-application priors.
_NEEDS_PRIORS = frozenset({"sjf", "srtf", "srtf_preempt", "carbyne", "decima"})

#: Constructor classes per baseline name (kwargs validation + forwarding).
_SCHEDULER_CLASSES = {
    "fcfs": FcfsScheduler,
    "fair": FairScheduler,
    "sjf": SjfScheduler,
    "srtf": SrtfScheduler,
    "srtf_preempt": PreemptiveSrtfScheduler,
    "argus": ArgusScheduler,
    "carbyne": CarbyneScheduler,
    "decima": DecimaScheduler,
    "slo_serving": SloServingScheduler,
}


def available_schedulers(
    include_llmsched: bool = True,
    include_preemptive: bool = False,
    include_ablations: bool = False,
    include_serving: bool = False,
) -> List[str]:
    """Names accepted by :func:`create_scheduler`.

    ``include_preemptive`` is off by default so harness code that sweeps
    "the paper's schedulers" (all non-preemptive) is unaffected by the
    preemptive extension; ``include_ablations`` appends the LLMSched
    ablation variants of Fig. 10; ``include_serving`` appends the
    SLO-aware serving scheduler (token-model runs only — it degenerates
    to arrival order without token-annotated requests).
    """
    names = list(_BASELINES) + ["srtf"]
    if include_llmsched:
        names.append("llmsched")
    if include_preemptive:
        names.append("srtf_preempt")
    if include_serving:
        names.append("slo_serving")
    if include_llmsched and include_ablations:
        names.extend(v for v in LLMSCHED_VARIANTS if v != "llmsched")
    return names


def scheduler_requirements(name: str) -> FrozenSet[str]:
    """Which offline artifacts a scheduler needs: ``priors``, ``profiler``.

    Unknown names raise the same actionable error as :func:`create_scheduler`
    so validation can happen before any expensive offline preparation.
    """
    key = name.lower()
    if key in _NEEDS_PRIORS:
        return frozenset({"priors"})
    if key in LLMSCHED_VARIANTS:
        return frozenset({"profiler"})
    if key in {"fcfs", "fair", "argus", "slo_serving"}:
        return frozenset()
    raise ValueError(
        f"unknown scheduler {name!r}; available: "
        f"{available_schedulers(include_preemptive=True, include_ablations=True, include_serving=True)}"
    )


def check_scheduler_kwargs(name: str, kwargs: Mapping[str, object]) -> None:
    """Reject kwargs the named scheduler cannot accept, with the valid set.

    For the LLMSched family the kwargs override
    :class:`~repro.core.llmsched.LLMSchedConfig` fields; for the baselines
    they must match constructor parameters.  Called by the declarative
    spec layer so a typo fails at validation time (``repro validate``),
    not after the expensive profiler fit.
    """
    if not kwargs:
        scheduler_requirements(name)
        return
    key = name.lower()
    if key in LLMSCHED_VARIANTS:
        import dataclasses

        from repro.core.llmsched import LLMSchedConfig

        valid = {f.name for f in dataclasses.fields(LLMSchedConfig)}
    else:
        cls = _SCHEDULER_CLASSES.get(key)
        if cls is None:
            scheduler_requirements(key)  # raises the unknown-scheduler error
            return
        import inspect

        # ``priors`` / ``policy`` are supplied by create_scheduler itself.
        valid = {
            p
            for p in inspect.signature(cls.__init__).parameters
            if p not in ("self", "priors", "policy")
        }
    unknown = sorted(set(kwargs) - valid)
    if unknown:
        raise ValueError(
            f"scheduler {name!r} does not accept kwargs {unknown}; valid: {sorted(valid)}"
        )


def create_scheduler(
    name: str,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional["BayesianProfiler"] = None,
    settings: Optional["ExperimentSettings"] = None,
    decima_policy: Optional[DecimaPolicy] = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a scheduler by name.

    The duration-based baselines require ``priors``.  The LLMSched family
    (``llmsched`` and the ``llmsched_wo_*`` ablations) requires a fitted
    ``profiler``; ``settings`` (an :class:`~repro.api.prep.ExperimentSettings`)
    supplies the Algorithm 1 config and the latency-profile slope used by the
    batching-aware calibrator, defaulting to the paper's values.  For
    backwards compatibility, ``create_scheduler("llmsched", **kwargs)``
    without a profiler forwards ``kwargs`` verbatim to
    :class:`~repro.core.llmsched.LLMSchedScheduler`.
    """
    key = name.lower()
    if key == "fcfs":
        return FcfsScheduler(**kwargs)
    if key == "fair":
        return FairScheduler(**kwargs)
    if key == "sjf":
        return SjfScheduler(_require_priors(key, priors), **kwargs)
    if key == "srtf":
        return SrtfScheduler(priors=_require_priors(key, priors), **kwargs)
    if key == "srtf_preempt":
        return PreemptiveSrtfScheduler(priors=_require_priors(key, priors), **kwargs)
    if key == "argus":
        return ArgusScheduler(**kwargs)
    if key == "slo_serving":
        return SloServingScheduler(**kwargs)
    if key == "carbyne":
        return CarbyneScheduler(_require_priors(key, priors), **kwargs)
    if key == "decima":
        return DecimaScheduler(_require_priors(key, priors), policy=decima_policy, **kwargs)
    if key in LLMSCHED_VARIANTS:
        return _create_llmsched(key, profiler, settings, **kwargs)
    raise ValueError(
        f"unknown scheduler {name!r}; available: "
        f"{available_schedulers(include_preemptive=True, include_ablations=True, include_serving=True)}"
    )


def _create_llmsched(
    key: str,
    profiler: Optional["BayesianProfiler"],
    settings: Optional["ExperimentSettings"],
    **kwargs: object,
) -> Scheduler:
    # Imported lazily to avoid a circular import (core depends on schedulers).
    from repro.core.calibration import BatchingAwareCalibrator
    from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
    from repro.simulator.latency import DecodingLatencyProfile

    if profiler is None:
        if key == "llmsched" and kwargs:
            return LLMSchedScheduler(**kwargs)
        raise ValueError(
            f"scheduler {key!r} requires a fitted profiler "
            "(see repro.api.prep.build_profiler)"
        )
    config = settings.llmsched if settings is not None else LLMSchedConfig()
    if kwargs:
        config = replace(config, **kwargs)
    slope = settings.latency_slope if settings is not None else 0.06
    if key == "llmsched_wo_bn":
        config = replace(config, use_bn=False)
    elif key == "llmsched_wo_uncertainty":
        config = replace(config, use_uncertainty=False)
    # Extension ablation: disable Eq. 2 by calibrating against a flat latency
    # profile (batch size has no effect on the estimates).
    calibrator_slope = 0.0 if key == "llmsched_wo_calibration" else slope
    scheduler = LLMSchedScheduler(
        profiler,
        config=config,
        calibrator=BatchingAwareCalibrator(DecodingLatencyProfile(slope=calibrator_slope)),
    )
    if key != "llmsched":
        scheduler.name = key
    return scheduler


def _require_priors(name: str, priors: Optional[ApplicationPriors]) -> ApplicationPriors:
    if priors is None:
        raise ValueError(f"scheduler {name!r} requires application priors")
    return priors
