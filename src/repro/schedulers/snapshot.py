"""Copy-on-write bookkeeping for scheduling-context snapshots.

The asynchronous decision path snapshots the :class:`~repro.schedulers.base.
SchedulingContext` on every scheduling pass.  A wholesale ``copy.deepcopy``
of the job list is O(active jobs x stages x tasks) per pass — on open-loop
traces with hundreds of concurrently active jobs the simulation spends more
time copying state than simulating it.  Almost none of that copying is
needed: a snapshot only has to *diverge* from a job once the live engine
mutates that job while the snapshot is still alive.

:class:`CowSnapshotTracker` implements exactly that contract:

* ``register(snapshot)`` — a freshly built snapshot starts out *sharing*
  every live :class:`~repro.dag.job.Job` object.  The tracker holds only a
  weak reference: the moment the consumer drops the snapshot (typically as
  soon as ``Scheduler.schedule`` returns), all bookkeeping for it vanishes
  and subsequent mutations cost nothing.
* ``mark_dirty(job)`` — called by the engine *before* any mutation of
  ``job`` (placement, progress accrual, completion, preemption, migration).
  Every live snapshot still sharing that job object replaces its entry with
  a private structural clone (``Job.snapshot_clone``) frozen at the
  pre-mutation state.  A job is copied into a given snapshot at most once;
  later mutations find it already evicted from the snapshot's shared map.

Invariants:

1. A snapshot's observable state never changes after ``snapshot()`` returns,
   no matter what the live simulation does (same guarantee the deep-copy
   oracle gives, verified property-by-property in
   ``tests/test_context_snapshot.py``).
2. Multiple live snapshots (pipelined async mode) are mutually isolated:
   each keeps a private shared-job map, so materialization in one never
   aliases another.
3. When no snapshot is alive, ``mark_dirty`` is a dictionary-emptiness
   check — the steady-state overhead of COW mode is effectively zero.

The tracker deliberately knows nothing about ``SchedulingContext``'s
construction (avoiding an import cycle with ``schedulers.base``); it only
touches the two private COW fields the context exposes for it.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.job import Job
    from repro.schedulers.base import SchedulingContext

__all__ = ["CowSnapshotTracker"]


class CowSnapshotTracker:
    """Tracks live COW snapshots and copies jobs out on first mutation."""

    def __init__(self) -> None:
        # id(snapshot) -> weakref.  SchedulingContext is an eq-comparing
        # dataclass (unhashable), so a WeakSet cannot hold it; the id key is
        # safe because the death callback removes the entry before the id
        # can be reused.
        self._snapshots: Dict[int, weakref.ref] = {}

    @property
    def active(self) -> bool:
        """True while at least one registered snapshot is still alive."""
        return bool(self._snapshots)

    def num_live_snapshots(self) -> int:
        return len(self._snapshots)

    def register(self, snapshot: "SchedulingContext") -> None:
        """Start protecting ``snapshot`` (its ``_cow_shared`` map is set)."""
        key = id(snapshot)
        snapshots = self._snapshots

        def _expire(_ref: weakref.ref, _key: int = key) -> None:
            snapshots.pop(_key, None)

        snapshots[key] = weakref.ref(snapshot, _expire)

    def mark_dirty(self, job: "Job") -> None:
        """Copy ``job`` into every live snapshot that still shares it.

        Must be called *before* the mutation: the clone freezes the job at
        its current (pre-mutation) state.  Idempotent per (snapshot, job):
        once evicted from a snapshot's shared map the job is never copied
        into that snapshot again.
        """
        if not self._snapshots:
            return
        for ref in list(self._snapshots.values()):
            snapshot = ref()
            if snapshot is None:
                continue
            shared = snapshot._cow_shared
            if shared is None:
                continue
            index = shared.pop(job.job_id, None)
            if index is None:
                continue
            if snapshot.jobs[index] is not job:  # pragma: no cover - defensive
                continue
            # Every snapshot gets a *private* copy — pipelined snapshots must
            # stay mutually isolated, so clones are never shared between them.
            snapshot.jobs[index] = job.snapshot_clone()
            snapshot._jobs_by_id = None  # job_of index now stale
