"""SLO-aware serving scheduler: EDF admission + deadline-driven preemption.

The baselines optimise job completion time; a serving fleet optimises
*goodput* — the fraction of requests that meet their tier's latency SLOs
(TTFT for responsiveness, TPOT for stream smoothness).  This scheduler
works the token model end to end:

* **EDF ordering** — schedulable tasks are ranked by their TTFT deadline
  (``ready_time + tier ttft target``), so requests closest to blowing
  their first-token budget are admitted first.  Tasks outside the token
  model (or in a tier without a TTFT target) sort last, by arrival.
  Requests whose deadline already passed before their first token are
  *doomed* — no decision can recover their SLO — and demote behind every
  still-feasible request, cutting EDF's classic overload domino effect
  (doomed work starving work that could still meet its target).
* **TPOT admission control** — decode throughput per request degrades
  with batch size (``speed(b) = 1 / (1 + slope * (b - 1))``), so packing
  executors violates TPOT exactly when the cluster is busiest.  Each pass
  caps newly admitted LLM work so the projected mean batch stays within
  the tightest admitted tier's sustainable batch
  ``b_max = 1 + (tpot_target / per_token_work - 1) / slope``.
* **Deadline-driven preemption** — when an admissible task cannot be
  placed and its deadline is at risk, the running task with the most SLO
  slack is checkpoint-preempted (progress conserved, PR 2 machinery), so
  tight-deadline work displaces loose-deadline work and nothing is lost.
* **Disaggregation handoff** — on clusters with prefill/decode-role pools
  (``PoolSpec.role``), a request that finishes its prefill phase on a
  prefill-role executor is checkpoint-preempted so the
  ``prefill_decode`` placement policy can re-land it on a decode pool,
  keeping prefill capacity free for new-request admission.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

from repro.dag.task import Task, TaskType
from repro.schedulers.base import (
    PreemptionDirective,
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
)
from repro.workloads.serving import DEFAULT_SLO_TARGETS

__all__ = ["SloServingScheduler"]

#: Deadline assigned to work outside the SLO model: sorts after every
#: real deadline but stays finite so comparisons never hit inf-inf.
_NO_DEADLINE = 1e18


class SloServingScheduler(Scheduler):
    """Earliest-TTFT-deadline-first with TPOT admission and SLO preemption.

    Parameters
    ----------
    slo_targets:
        Per-tier targets ``{tier: {"ttft": s, "tpot": s}}``; defaults to
        :data:`~repro.workloads.serving.DEFAULT_SLO_TARGETS`.  The spec
        layer injects a scenario's ``SLOSection`` here.
    latency_slope:
        Slope of the decode latency profile (matches
        :class:`~repro.simulator.latency.DecodingLatencyProfile`), used by
        the TPOT admission cap.
    slack_margin:
        A blocked task only triggers preemption when its deadline is
        within ``slack_margin`` seconds; the victim must hold at least
        ``slack_margin`` more slack than the blocked task, so swaps only
        happen when they actually flip an SLO outcome.
    max_preemptions_per_event:
        Safety valve bounding churn per scheduling point.
    min_victim_remaining:
        Tasks within this many seconds of finishing are never preempted
        (their slot frees at the next completion event anyway).
    """

    name = "slo_serving"
    preemptive = True

    def __init__(
        self,
        slo_targets: Optional[Mapping[str, Mapping[str, float]]] = None,
        latency_slope: float = 0.06,
        slack_margin: float = 1.0,
        max_preemptions_per_event: int = 8,
        min_victim_remaining: float = 1e-6,
    ) -> None:
        if latency_slope < 0:
            raise ValueError("latency_slope must be >= 0")
        if slack_margin < 0:
            raise ValueError("slack_margin must be >= 0")
        if max_preemptions_per_event < 1:
            raise ValueError("max_preemptions_per_event must be >= 1")
        if min_victim_remaining < 0:
            raise ValueError("min_victim_remaining must be >= 0")
        targets = slo_targets if slo_targets is not None else DEFAULT_SLO_TARGETS
        self._targets: Dict[str, Dict[str, float]] = {
            tier: dict(values) for tier, values in targets.items()
        }
        self._slope = float(latency_slope)
        self._slack_margin = float(slack_margin)
        self._max_preemptions = int(max_preemptions_per_event)
        self._min_victim_remaining = float(min_victim_remaining)

    # ------------------------------------------------------------------ #
    # SLO bookkeeping
    # ------------------------------------------------------------------ #
    def _tier_of(self, context: SchedulingContext, task: Task) -> str:
        try:
            return context.job_of(task).priority
        except KeyError:
            return "default"

    def _tier_targets(self, tier: str) -> Mapping[str, float]:
        targets = self._targets.get(tier)
        if targets is None:
            targets = self._targets.get("default", {})
        return targets

    def _deadline(self, context: SchedulingContext, task: Task) -> float:
        """Absolute TTFT deadline of ``task`` (``_NO_DEADLINE`` if none)."""
        ttft = self._tier_targets(self._tier_of(context, task)).get("ttft")
        if ttft is None or not task.has_token_model:
            return _NO_DEADLINE
        ready = task.ready_time
        if ready is None:
            ready = context.time
        return ready + float(ttft)

    def _batch_cap(self, context: SchedulingContext, task: Task) -> float:
        """Largest batch under which ``task`` still meets its TPOT target.

        A request whose per-token work already exceeds its target at batch
        1 is hopeless — no admission decision can save it, so it must not
        constrain the batch for everyone else; it reports ``inf`` (and
        will be metered as an SLO miss regardless).
        """
        tpot = self._tier_targets(self._tier_of(context, task)).get("tpot")
        per_token = task.per_token_decode_work()
        if tpot is None or per_token is None or per_token <= 0:
            return math.inf
        if per_token >= float(tpot) or self._slope <= 0:
            return math.inf
        return 1.0 + (float(tpot) / per_token - 1.0) / self._slope

    @staticmethod
    def _is_doomed(task: Task, deadline: float, now: float) -> bool:
        """True when the TTFT race is already lost: even started right now,
        the remaining prefill work cannot emit the first token before the
        deadline.  No scheduling decision can recover such a request's SLO,
        so it must never displace or constrain still-feasible work — EDF
        without this pruning melts down under overload, pouring capacity
        into requests that expire mid-prefill (the classic domino effect).
        The remaining-prefill bound is optimistic (batch-1 speed), which is
        exactly right: anything it writes off is unsalvageable under every
        policy.  A request that already streamed its first token is *not*
        doomed — its TTFT is banked and prioritising its decode protects
        goodput already paid for."""
        if task.first_token_time is not None:
            return False
        prefill_left = max(0.0, task.remaining_work - task.decode_work)
        return deadline < now + prefill_left

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        now = context.time

        def sort_key(t: Task):
            deadline = self._deadline(context, t)
            return (
                self._is_doomed(t, deadline, now),
                deadline,
                context.job_of(t).arrival_time,
                t.job_id,
                t.uid,
            )

        ordered = sorted(context.schedulable_tasks(), key=sort_key)
        regular = [t for t in ordered if t.task_type is TaskType.REGULAR]
        llm = [t for t in ordered if t.task_type is TaskType.LLM]
        admitted_llm = self._admit_llm(context, llm)
        decision = SchedulingDecision(regular_tasks=regular, llm_tasks=admitted_llm)
        preemptions = self._plan_preemptions(context, decision)
        if preemptions:
            decision.preemptions = preemptions
        return decision

    def _admit_llm(self, context: SchedulingContext, llm: List[Task]) -> List[Task]:
        """Filter the EDF list so projected batches respect TPOT caps.

        The cap is aggregate (the scheduler ranks, pools place): admitting
        ``k`` more requests onto ``n`` LLM executors carrying ``r`` running
        requests projects a mean batch of ``(r + k) / n``, which must stay
        within the tightest batch cap among the in-flight token streams.
        The cap protects streams already running — near-certain goodput
        already paid for — from being degraded below their TPOT targets
        by new admissions; a candidate whose own cap is tight is its own
        gamble (it may blow its TPOT in a big batch, but that risks only
        itself) and is never deferred on its own account.

        Deferral is a trade, and the gate prices it per pass: protecting
        ``V`` at-risk streams by deferring ``D`` admissible candidates
        jeopardizes up to ``D`` TTFTs to save up to ``V`` TPOTs, so the
        cap only engages for feasible candidates when ``V >= D``.  Under
        sustained overload the queue is deep (``D`` large) and the gate
        stands down — parking the queue to save one stream forfeits far
        more goodput than it protects, and an EDF-ordered greedy admission
        is the best play.  Each deferral is additionally bounded by the
        request's own TTFT slack: once its deadline is within
        ``slack_margin`` the request is admitted unconditionally, since
        placed now it can still meet TTFT, whereas parking it until the
        deadline passes would forfeit both targets.

        Doomed candidates (deadline already missed, see
        :meth:`_is_doomed`) price differently: their TTFT is forfeit
        whatever happens, so deferring them is free and they are held
        back whenever the projected batch would exceed the cap — they
        drain only into capacity the feasible work leaves behind.
        """
        if not llm:
            return llm
        num_executors = len(context.llm_batch_sizes)
        if num_executors == 0:
            return llm
        cap = math.inf
        running_caps: List[float] = []
        for running in context.running_tasks():
            if running.task_type is TaskType.LLM and running.has_token_model:
                running_caps.append(self._batch_cap(context, running))
                cap = min(cap, running_caps[-1])
        load = float(sum(context.llm_batch_sizes))
        projected_full = (load + len(llm)) / num_executors
        if projected_full <= cap:
            return llm  # nothing at risk even admitting everything
        now = context.time
        candidates: List[Tuple[Task, float, bool]] = []
        for task in llm:
            deadline = self._deadline(context, task)
            candidates.append(
                (task, deadline - now, self._is_doomed(task, deadline, now))
            )
        protected = sum(1 for c in running_caps if c < projected_full)
        deferrable = sum(
            1 for _, slack, doomed in candidates
            if not doomed and slack > self._slack_margin
        )
        defer_feasible = protected >= deferrable
        admitted: List[Task] = []
        for task, slack, doomed in candidates:
            projected = (load + len(admitted) + 1) / num_executors
            if projected > cap:
                if doomed:
                    continue  # free deferral: its TTFT is lost either way
                if defer_feasible and slack > self._slack_margin:
                    continue  # defer: keeps in-flight streams within their caps
            admitted.append(task)
            # Admitted => effectively running: its cap now guards later admits.
            cap = min(cap, self._batch_cap(context, task))
        return admitted

    # ------------------------------------------------------------------ #
    # Preemption
    # ------------------------------------------------------------------ #
    def _plan_preemptions(
        self, context: SchedulingContext, decision: SchedulingDecision
    ) -> List[PreemptionDirective]:
        budget = self._max_preemptions
        directives: List[PreemptionDirective] = []
        claimed: set = set()

        # Disaggregation handoff first: prefill-complete requests squatting
        # on prefill-role executors block new-request admission, and their
        # checkpoint preemption costs nothing (progress conserved, decode
        # resumes on a decode pool via the prefill_decode placement).
        roles = context.executor_roles
        if roles:
            for task in context.running_tasks():
                if budget <= 0:
                    break
                if (
                    task.task_type is TaskType.LLM
                    and task.has_token_model
                    and task.prefill_done
                    and task.executor_id is not None
                    and roles.get(task.executor_id) == "prefill"
                    and task.executor_id not in context.inactive_executor_ids
                    and task.remaining_work > self._min_victim_remaining
                ):
                    claimed.add(task.uid)
                    directives.append(PreemptionDirective(task=task, checkpoint=True))
                    budget -= 1

        # Deadline-driven preemption: blocked near-deadline tasks displace
        # the running task with the most SLO slack, checkpointed so the
        # victim only pays the requeue.
        blocked = [
            (task, self._deadline(context, task))
            for task_list, free in (
                (decision.regular_tasks, context.free_regular_slots),
                (decision.llm_tasks, context.free_llm_slots),
            )
            for task in task_list[free:]
        ]
        blocked = [
            (t, d)
            for t, d in blocked
            # Doomed work (deadline unreachable) earns nothing by displacing
            # a running task, so only still-winnable deadlines preempt.
            if d - context.time <= self._slack_margin
            and not self._is_doomed(t, d, context.time)
        ]
        if not blocked or budget <= 0:
            return directives
        victims = self._victim_pool(context, claimed)
        for task, deadline in sorted(blocked, key=lambda pair: pair[1]):
            if budget <= 0:
                break
            victim = self._pick_victim(victims, claimed, task, deadline)
            if victim is None:
                continue
            claimed.add(victim.uid)
            directives.append(PreemptionDirective(task=victim, checkpoint=True))
            budget -= 1
        return directives

    def _victim_pool(
        self, context: SchedulingContext, claimed: set
    ) -> List[Tuple[Task, float]]:
        """Running tasks paired with their deadlines, loosest-slack first."""
        inactive = context.inactive_executor_ids
        pool = [
            (task, self._deadline(context, task))
            for task in context.running_tasks()
            if task.uid not in claimed
            and task.remaining_work > self._min_victim_remaining
            and (task.executor_id is None or task.executor_id not in inactive)
        ]
        pool.sort(key=lambda pair: (-pair[1], pair[0].job_id, pair[0].uid))
        return pool

    def _pick_victim(
        self,
        victims: List[Tuple[Task, float]],
        claimed: set,
        blocked: Task,
        blocked_deadline: float,
    ) -> Optional[Task]:
        for victim, victim_deadline in victims:
            if victim.task_type is not blocked.task_type:
                continue
            if victim_deadline <= blocked_deadline + self._slack_margin:
                return None  # sorted loosest-first: nothing further qualifies
            if victim.uid in claimed or victim.job_id == blocked.job_id:
                continue
            return victim
        return None
