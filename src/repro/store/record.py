"""The unit of provenance: one frozen, content-addressed :class:`RunRecord`.

A record wraps one serialized payload — either a full
:meth:`repro.api.results.Result.to_dict` (``kind="result"``) or a benchmark
summary section (``kind="section"``) — together with the provenance needed
to answer *which spec, seed and code produced which number*:

* ``spec_hash`` — :meth:`ScenarioSpec.content_hash` of the (resolved) spec;
* ``seed`` / ``scheduler`` / ``schema_version`` — the run's identity axes;
* ``bench_file`` / ``section`` / ``label`` — where the payload lives in the
  BENCH_*.json universe, so artifacts can be *regenerated* from the store;
* ``provenance`` — free-form, non-identity metadata (package version,
  ingest source, machine calibration fingerprint).

**Identity is deterministic.**  ``record_id`` is the SHA-256 of the
canonical JSON of the *deterministic* fields only.  Wall-clock-derived
leaves (``wall_clock_sec``, ``*_per_sec`` throughputs, elapsed times,
same-machine speedup ratios, the measured scheduler overhead) are
segregated into a parallel ``timing`` tree by :func:`split_timing` before
hashing and re-merged by :func:`merge_timing` on regeneration — so two runs
of the same seeded scenario on different machines produce the *same*
``record_id``, and the byte-for-byte BENCH artifact still comes back out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.utils.canonical import canonical_json, content_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.results import Result

__all__ = [
    "RecordError",
    "RunRecord",
    "split_timing",
    "merge_timing",
    "is_timing_leaf",
    "looks_like_result_payload",
]

#: Record schema version stamped into every serialized record.
RECORD_SCHEMA_VERSION = 1

#: Leaf keys that carry wall-clock measurements (or ratios of them) rather
#: than deterministic simulation output.  ``*_per_sec`` and ``*elapsed_sec``
#: are matched by suffix; the rest are exact names used across BENCH files.
_TIMING_EXACT = frozenset(
    {
        "wall_clock_sec",
        "avg_overhead_ms",  # measured scheduler-invocation wall clock (Table I)
        "speedup_vs_seed",
        "scaling_vs_1_shard",
        "scaling_at_4_shards",
        "cow_speedup",
    }
)


class RecordError(ValueError):
    """A record failed validation (corrupt payload, identity mismatch)."""


def is_timing_leaf(key: str) -> bool:
    """Whether a leaf key holds wall-clock-derived (machine-dependent) data."""
    return key in _TIMING_EXACT or key.endswith("_per_sec") or key.endswith("elapsed_sec")


def split_timing(payload: object) -> Tuple[object, Dict[str, object]]:
    """Split ``payload`` into (deterministic tree, timing tree).

    The timing tree mirrors the payload's nesting (list elements keyed by
    their stringified index) and holds exactly the wall-clock leaves, so
    ``merge_timing(*split_timing(p)) == p`` for any JSON payload.  A dict
    whose leaves were *all* timing stays behind as an empty dict, keeping
    the structural skeleton deterministic.
    """
    if isinstance(payload, Mapping):
        det: Dict[str, object] = {}
        timing: Dict[str, object] = {}
        for key, value in payload.items():
            key = str(key)
            if isinstance(value, (Mapping, list)):
                sub_det, sub_timing = split_timing(value)
                det[key] = sub_det
                if sub_timing:
                    timing[key] = sub_timing
            elif is_timing_leaf(key) and isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                timing[key] = value
            else:
                det[key] = value
        return det, timing
    if isinstance(payload, list):
        det_list: List[object] = []
        list_timing: Dict[str, object] = {}
        for i, item in enumerate(payload):
            sub_det, sub_timing = split_timing(item)
            det_list.append(sub_det)
            if sub_timing:
                list_timing[str(i)] = sub_timing
        return det_list, list_timing
    return payload, {}


def merge_timing(det: object, timing: Mapping[str, object]) -> object:
    """Inverse of :func:`split_timing`: re-insert the timing leaves."""
    if isinstance(det, Mapping):
        out: Dict[str, object] = {}
        for key, value in det.items():
            sub = timing.get(key, {}) if timing else {}
            if isinstance(value, (Mapping, list)):
                out[key] = merge_timing(value, sub if isinstance(sub, Mapping) else {})
            else:
                out[key] = value
        if timing:
            for key, value in timing.items():
                if key not in out:  # a timing leaf removed by the split
                    out[key] = value
        return out
    if isinstance(det, list):
        return [
            merge_timing(item, timing.get(str(i), {}) if timing else {})
            for i, item in enumerate(det)
        ]
    return det


def looks_like_result_payload(payload: object) -> bool:
    """Whether a dict has the :meth:`Result.to_dict` shape."""
    return isinstance(payload, Mapping) and "metrics" in payload and "seed" in payload


def _spec_hash_of(spec_dict: Optional[Mapping]) -> Optional[str]:
    """Canonical spec hash of an embedded serialized spec, if any.

    The dict is normalized through :class:`ScenarioSpec` when it parses (so
    a v1 document hashes identically to its v2 upcast); payloads carrying
    specs this build can no longer parse fall back to hashing the raw dict.
    """
    if spec_dict is None:
        return None
    from repro.api.spec import ScenarioSpec, SpecError  # lazy: avoids import cycle

    try:
        return ScenarioSpec.from_dict(spec_dict).content_hash()
    except SpecError:
        return content_hash(dict(spec_dict))


@dataclass(frozen=True)
class RunRecord:
    """One content-addressed, provenance-stamped payload (see module doc)."""

    kind: str  # "result" | "section"
    payload: Mapping[str, object]  # deterministic tree (identity-bearing)
    timing: Mapping[str, object] = field(default_factory=dict)  # non-identity
    spec_hash: Optional[str] = None
    seed: Optional[int] = None
    scheduler: Optional[str] = None
    schema_version: Optional[int] = None
    bench_file: Optional[str] = None
    section: Optional[str] = None
    label: Optional[str] = None
    provenance: Mapping[str, object] = field(default_factory=dict)  # non-identity
    record_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("result", "section"):
            raise RecordError(f'record kind must be "result" or "section", not {self.kind!r}')
        computed = self.compute_record_id()
        if not self.record_id:
            object.__setattr__(self, "record_id", computed)

    # Identity ------------------------------------------------------------- #
    def identity_dict(self) -> Dict[str, object]:
        """The exact fields the record identity hashes over."""
        return {
            "kind": self.kind,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "schema_version": self.schema_version,
            "bench_file": self.bench_file,
            "section": self.section,
            "label": self.label,
            "payload": self.payload,
        }

    def compute_record_id(self) -> str:
        return content_hash(self.identity_dict())

    def verify(self) -> "RunRecord":
        """Raise :class:`RecordError` if the stored id does not match the payload."""
        computed = self.compute_record_id()
        if self.record_id != computed:
            raise RecordError(
                f"record {self.record_id[:12]} fails integrity check: payload hashes "
                f"to {computed[:12]} (tampered or hand-edited record file)"
            )
        return self

    @property
    def dedup_key(self) -> Tuple[object, ...]:
        """The key re-ingesting the same run dedupes on.

        Results with a known spec dedupe on ``(spec_hash, seed, scheduler)``
        — the run's semantic identity; spec-less result payloads and summary
        sections fall back to their position in the BENCH universe.
        """
        if self.kind == "result" and self.spec_hash is not None:
            return ("result", self.spec_hash, self.seed, self.scheduler)
        return (self.kind, self.bench_file, self.section, self.label)

    # Constructors --------------------------------------------------------- #
    @classmethod
    def from_result(
        cls,
        result: "Result",
        *,
        bench_file: Optional[str] = None,
        section: Optional[str] = None,
        label: Optional[str] = None,
        provenance: Optional[Mapping[str, object]] = None,
    ) -> "RunRecord":
        """Wrap a live :class:`~repro.api.results.Result` (spec included)."""
        det, timing = split_timing(result.to_dict(include_spec=True))
        return cls(
            kind="result",
            payload=det,
            timing=timing,
            spec_hash=result.spec.content_hash(),
            seed=result.seed,
            scheduler=result.spec.scheduler.name,
            schema_version=result.spec.schema_version,
            bench_file=bench_file,
            section=section,
            label=label,
            provenance=dict(provenance or {}),
        )

    @classmethod
    def result_record(
        cls,
        payload: Mapping[str, object],
        *,
        bench_file: Optional[str],
        section: Optional[str],
        label: Optional[str],
        provenance: Optional[Mapping[str, object]] = None,
    ) -> "RunRecord":
        """Wrap a ``Result.to_dict``-shaped payload (e.g. from a BENCH file)."""
        if not looks_like_result_payload(payload):
            raise RecordError(
                f"payload under {section!r}/{label!r} does not look like a "
                "Result.to_dict (missing 'metrics'/'seed')"
            )
        det, timing = split_timing(dict(payload))
        spec = payload.get("spec")
        scheduler = None
        if isinstance(spec, Mapping):
            scheduler = spec.get("scheduler", {}).get("name", "fcfs")
        return cls(
            kind="result",
            payload=det,
            timing=timing,
            spec_hash=_spec_hash_of(spec if isinstance(spec, Mapping) else None),
            seed=payload.get("seed"),
            scheduler=scheduler,
            schema_version=payload.get("schema_version"),
            bench_file=bench_file,
            section=section,
            label=label,
            provenance=dict(provenance or {}),
        )

    @classmethod
    def section_record(
        cls,
        payload: Mapping[str, object],
        *,
        bench_file: Optional[str],
        section: str,
        provenance: Optional[Mapping[str, object]] = None,
    ) -> "RunRecord":
        """Wrap a benchmark summary section (its ``results`` hoisted out)."""
        det, timing = split_timing(dict(payload))
        return cls(
            kind="section",
            payload=det,
            timing=timing,
            bench_file=bench_file,
            section=section,
            provenance=dict(provenance or {}),
        )

    # Views ---------------------------------------------------------------- #
    def merged_payload(self) -> Dict[str, object]:
        """The original payload, timing leaves re-merged (regeneration view)."""
        merged = merge_timing(self.payload, self.timing)
        assert isinstance(merged, dict)
        return merged

    # Serialization --------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "record_schema": RECORD_SCHEMA_VERSION,
            "record_id": self.record_id,
            "kind": self.kind,
            "payload": self.payload,
        }
        for name in ("spec_hash", "seed", "scheduler", "schema_version",
                     "bench_file", "section", "label"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.timing:
            out["timing"] = self.timing
        if self.provenance:
            out["provenance"] = self.provenance
        return out

    def to_json(self) -> str:
        return canonical_json(self.to_dict()) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping, verify: bool = False) -> "RunRecord":
        if not isinstance(data, Mapping) or "kind" not in data or "payload" not in data:
            raise RecordError("a run record needs at least 'kind' and 'payload'")
        stamped = data.get("record_schema", RECORD_SCHEMA_VERSION)
        if stamped != RECORD_SCHEMA_VERSION:
            raise RecordError(
                f"unsupported record_schema {stamped!r}; this build reads "
                f"version {RECORD_SCHEMA_VERSION}"
            )
        record = cls(
            kind=data["kind"],
            payload=data["payload"],
            timing=data.get("timing", {}),
            spec_hash=data.get("spec_hash"),
            seed=data.get("seed"),
            scheduler=data.get("scheduler"),
            schema_version=data.get("schema_version"),
            bench_file=data.get("bench_file"),
            section=data.get("section"),
            label=data.get("label"),
            provenance=data.get("provenance", {}),
            record_id=data.get("record_id", ""),
        )
        return record.verify() if verify else record

    def with_provenance(self, **extra: object) -> "RunRecord":
        """A copy with extra provenance merged in (identity unchanged)."""
        merged = dict(self.provenance)
        merged.update(extra)
        return replace(self, provenance=merged)
