"""Regenerate human-facing artifacts from store contents alone.

The README scheduler-comparison and serving-pareto tables and every
BENCH_*.json artifact are *renderings* of what the store holds — this
module produces them byte-for-byte, so the tables can be asserted against
the committed docs in CI (no more hand-curated copies drifting apart).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.store.query import filter_records, latest_per_key
from repro.store.record import RunRecord

__all__ = [
    "ReportError",
    "bench_artifact",
    "bench_artifacts",
    "render_bench_artifact",
    "readme_async_table",
    "readme_pareto_table",
]

#: The sections the README tables are generated from.
ASYNC_SECTION = "async_latency_degradation"
PARETO_SECTION = "slo_serving_pareto"


class ReportError(RuntimeError):
    """The store lacks the records a report needs."""


def _latest(store_or_records) -> List[RunRecord]:
    from repro.store.store import RunStore  # lazy to avoid import cycle

    if isinstance(store_or_records, RunStore):
        return store_or_records.latest_records()
    return latest_per_key(store_or_records)


def _section_payload(records: Sequence[RunRecord], section: str) -> Mapping[str, object]:
    matches = filter_records(records, kind="section", section=section)
    if not matches:
        raise ReportError(f"store holds no {section!r} section record")
    if len(matches) > 1:
        files = sorted({str(r.bench_file) for r in matches})
        raise ReportError(f"ambiguous {section!r} section (in {', '.join(files)})")
    return matches[0].merged_payload()


def _scheduler_order(present: Sequence[str]) -> List[str]:
    from repro.schedulers.registry import available_schedulers

    known = available_schedulers(include_llmsched=True)
    ordered = [name for name in known if name in present]
    return ordered + sorted(set(present) - set(known))


# BENCH artifacts ----------------------------------------------------------- #
def bench_artifact(store_or_records, bench_file: str) -> Dict[str, object]:
    """The BENCH_*.json-shaped dict for ``bench_file``, rebuilt from records.

    Section payloads come back with their hoisted ``results`` re-attached
    under their original labels; rendering with :func:`render_bench_artifact`
    reproduces the committed file byte-for-byte.
    """
    records = _latest(store_or_records)
    sections = filter_records(records, kind="section", bench_file=bench_file)
    if not sections:
        raise ReportError(f"store holds no sections for {bench_file!r}")
    artifact: Dict[str, object] = {}
    for section_record in sections:
        assert section_record.section is not None
        payload = section_record.merged_payload()
        hoisted = filter_records(
            records,
            kind="result",
            bench_file=bench_file,
            section=section_record.section,
        )
        if hoisted:
            results = dict(payload.get("results") or {})
            for result_record in hoisted:
                assert result_record.label is not None
                results[result_record.label] = result_record.merged_payload()
            payload["results"] = results
        artifact[section_record.section] = payload
    return artifact


def bench_artifacts(store_or_records) -> Dict[str, Dict[str, object]]:
    """Every reconstructable artifact, keyed by bench filename."""
    records = _latest(store_or_records)
    files = sorted(
        {r.bench_file for r in records if r.kind == "section" and r.bench_file}
    )
    return {name: bench_artifact(records, name) for name in files}


def render_bench_artifact(data: Mapping[str, object]) -> str:
    """Render exactly as ``benchmarks/bench_output.py`` writes BENCH files."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


# README tables ------------------------------------------------------------- #
def readme_async_table(store_or_records) -> str:
    """The README mean-JCT-vs-decision-latency table, byte-for-byte."""
    payload = _section_payload(_latest(store_or_records), ASYNC_SECTION)
    latencies = payload["latencies"]
    averages = payload["average_jct_by_scheduler"]
    degradation = payload["degradation_at_max_latency"]
    assert isinstance(latencies, list) and isinstance(averages, Mapping)
    assert isinstance(degradation, Mapping)

    max_latency = latencies[-1]
    lines = [
        "| scheduler | "
        + " | ".join(f"{lat:g} s" for lat in latencies)
        + f" | degradation at {max_latency:g} s |",
        "|-----------|" + "-----:|" * len(latencies) + "---:|",
    ]
    for name in _scheduler_order(sorted(averages)):
        by_latency = averages[name]
        assert isinstance(by_latency, Mapping)
        cells = " | ".join(f"{by_latency[str(lat)]:.1f}" for lat in latencies)
        lines.append(f"| {name:<9} | {cells} | ×{degradation[name]:.1f} |")
    return "\n".join(lines) + "\n"


def readme_pareto_table(store_or_records) -> str:
    """The README serving-goodput pareto table, byte-for-byte."""
    from repro.workloads.serving import TOKEN_MIXES

    payload = _section_payload(_latest(store_or_records), PARETO_SECTION)
    mixes = payload["mixes"]
    assert isinstance(mixes, Mapping)
    schedulers = payload.get("schedulers")
    order = (
        [str(s) for s in schedulers]
        if isinstance(schedulers, list)
        else _scheduler_order(sorted(mixes))
    )
    mix_order = [m for m in TOKEN_MIXES if m in mixes] + sorted(
        set(mixes) - set(TOKEN_MIXES)
    )

    lines = ["| mix | `slo_serving` goodput | best incumbent |", "|---|---|---|"]
    for mix in mix_order:
        entry = mixes[mix]
        assert isinstance(entry, Mapping)
        goodput = entry["goodput"]
        assert isinstance(goodput, Mapping)
        best = entry["best_incumbent_goodput"]
        assert isinstance(best, (int, float))
        winners = "/".join(
            name
            for name in order
            if name != "slo_serving" and goodput.get(name) == best
        )
        lines.append(
            f"| {mix} | **{goodput['slo_serving']:.3f}** | {best:.3f} ({winners}) |"
        )
    return "\n".join(lines) + "\n"


def readme_tables(store_or_records) -> Dict[str, str]:
    """Both README tables (best-effort: absent sections are skipped)."""
    records = _latest(store_or_records)
    tables: Dict[str, str] = {}
    for name, renderer in (("async", readme_async_table), ("pareto", readme_pareto_table)):
        try:
            tables[name] = renderer(records)
        except ReportError:
            continue
    return tables


def baseline_payloads(store_or_records) -> Dict[str, Dict[str, object]]:
    """Alias of :func:`bench_artifacts` for the regression gate's store view."""
    return bench_artifacts(store_or_records)


def diff_payloads(
    old: Mapping[str, object], new: Mapping[str, object], *, prefix: str = ""
) -> List[str]:
    """Human-readable leaf-level differences between two payload trees."""
    out: List[str] = []
    keys = sorted(set(old) | set(new))
    for key in keys:
        path = f"{prefix}.{key}" if prefix else str(key)
        if key not in old:
            out.append(f"+ {path} = {_brief(new[key])}")
        elif key not in new:
            out.append(f"- {path} = {_brief(old[key])}")
        elif isinstance(old[key], Mapping) and isinstance(new[key], Mapping):
            out.extend(diff_payloads(old[key], new[key], prefix=path))
        elif old[key] != new[key]:
            out.append(f"~ {path}: {_brief(old[key])} -> {_brief(new[key])}")
    return out


def _brief(value: object, limit: int = 60) -> str:
    text = json.dumps(value, sort_keys=True, default=str)
    return text if len(text) <= limit else text[: limit - 3] + "..."
