"""The ``python -m repro store`` subcommand family.

``store ingest <root> <bench.json ...>``
    Ingest BENCH_*.json artifacts into a store (dedup on re-ingest).
``store list <root>``
    One line per record: short id, kind, and its identity axes.
``store query <root> [--kind ...] [--scheduler ...] [--latest] ...``
    Filter records; ``--format json`` emits the merged payloads.
``store diff <root> <id> <id>``
    Leaf-level differences between two records' merged payloads
    (ids may be unambiguous prefixes).
``store report <root> [--table async|pareto|all] [--bench NAME] [--out DIR]``
    Regenerate the README tables and/or BENCH artifacts from the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.store.query import filter_records
from repro.store.record import RunRecord
from repro.store.report import (
    ReportError,
    bench_artifact,
    bench_artifacts,
    diff_payloads,
    readme_async_table,
    readme_pareto_table,
    render_bench_artifact,
)
from repro.store.store import RunStore, StoreError

__all__ = ["add_store_parser"]


def _describe(record: RunRecord) -> str:
    bits = [record.record_id[:12], f"{record.kind:<7s}"]
    if record.scheduler is not None:
        bits.append(f"scheduler={record.scheduler}")
    if record.seed is not None:
        bits.append(f"seed={record.seed}")
    if record.spec_hash is not None:
        bits.append(f"spec={record.spec_hash[:12]}")
    if record.bench_file is not None:
        where = record.bench_file
        if record.section is not None:
            where += f":{record.section}"
        if record.label is not None:
            where += f"@{record.label}"
        bits.append(where)
    return "  ".join(bits)


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = RunStore(args.root)
    total_added = total_seen = 0
    for path in args.files:
        outcomes = store.ingest_bench_file(path)
        added = sum(1 for _, was_added in outcomes if was_added)
        total_added += added
        total_seen += len(outcomes)
        print(f"{path}: {added} added, {len(outcomes) - added} deduplicated")
    print(f"store {store.root}: {total_added}/{total_seen} new record(s)")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    store = RunStore(args.root)
    records = store.latest_records() if args.latest else store.records()
    for record in records:
        print(_describe(record))
    print(f"{len(records)} record(s) in {store.root}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    store = RunStore(args.root)
    records = store.latest_records() if args.latest else store.records(verify=args.verify)
    if args.verify and args.latest:
        for record in records:
            record.verify()
    fields = {
        name: getattr(args, name)
        for name in ("kind", "scheduler", "spec_hash", "bench_file", "section", "label")
        if getattr(args, name) is not None
    }
    if args.seed is not None:
        fields["seed"] = args.seed
    matches = filter_records(records, **fields)
    if args.format == "json":
        payload = [
            {**record.to_dict(), "merged_payload": record.merged_payload()}
            for record in matches
        ]
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for record in matches:
            print(_describe(record))
        print(f"{len(matches)} matching record(s)")
    return 0


def _resolve_id(store: RunStore, prefix: str) -> RunRecord:
    matches = [rid for rid in store.record_ids() if rid.startswith(prefix)]
    if not matches:
        raise StoreError(f"no record with id prefix {prefix!r}")
    if len(matches) > 1:
        raise StoreError(
            f"record id prefix {prefix!r} is ambiguous "
            f"({', '.join(m[:12] for m in matches[:4])}...)"
        )
    record = store.get(matches[0])
    assert record is not None
    return record


def _cmd_diff(args: argparse.Namespace) -> int:
    store = RunStore(args.root)
    left = _resolve_id(store, args.left)
    right = _resolve_id(store, args.right)
    lines = diff_payloads(left.merged_payload(), right.merged_payload())
    for line in lines:
        print(line)
    if not lines:
        print(f"{left.record_id[:12]} and {right.record_id[:12]} have identical payloads")
    return 1 if lines else 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = RunStore(args.root)
    printed: List[str] = []
    if args.table in ("async", "all"):
        try:
            printed.append(readme_async_table(store))
        except ReportError as exc:
            if args.table == "async":
                raise
            print(f"(skipping async table: {exc})", file=sys.stderr)
    if args.table in ("pareto", "all"):
        try:
            printed.append(readme_pareto_table(store))
        except ReportError as exc:
            if args.table == "pareto":
                raise
            print(f"(skipping pareto table: {exc})", file=sys.stderr)
    sys.stdout.write("\n".join(printed))

    if args.bench or args.out:
        artifacts = (
            {name: bench_artifact(store, name) for name in args.bench}
            if args.bench
            else bench_artifacts(store)
        )
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            for name, data in sorted(artifacts.items()):
                target = out_dir / name
                target.write_text(render_bench_artifact(data), encoding="utf-8")
                print(f"wrote {target}", file=sys.stderr)
        else:
            for name, data in sorted(artifacts.items()):
                sys.stdout.write(render_bench_artifact(data))
    return 0


def add_store_parser(sub: argparse._SubParsersAction) -> None:
    """Wire the ``store`` subcommand family into the ``python -m repro`` parser."""
    p_store = sub.add_parser(
        "store", help="content-addressed run store: ingest, query, report"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_ingest = store_sub.add_parser("ingest", help="ingest BENCH_*.json files")
    p_ingest.add_argument("root", help="store directory (created if missing)")
    p_ingest.add_argument("files", nargs="+", help="BENCH_*.json artifacts")
    p_ingest.set_defaults(func=_cmd_ingest)

    p_list = store_sub.add_parser("list", help="list records")
    p_list.add_argument("root", help="store directory")
    p_list.add_argument(
        "--latest", action="store_true", help="one record per dedup key (newest)"
    )
    p_list.set_defaults(func=_cmd_list)

    p_query = store_sub.add_parser("query", help="filter records")
    p_query.add_argument("root", help="store directory")
    p_query.add_argument("--kind", choices=("result", "section"))
    p_query.add_argument("--scheduler")
    p_query.add_argument("--seed", type=int)
    p_query.add_argument("--spec-hash", dest="spec_hash", metavar="PREFIX")
    p_query.add_argument("--bench-file", dest="bench_file")
    p_query.add_argument("--section")
    p_query.add_argument("--label")
    p_query.add_argument(
        "--latest", action="store_true", help="one record per dedup key (newest)"
    )
    p_query.add_argument(
        "--verify", action="store_true", help="integrity-check every record read"
    )
    p_query.add_argument("--format", choices=("human", "json"), default="human")
    p_query.set_defaults(func=_cmd_query)

    p_diff = store_sub.add_parser("diff", help="diff two records' payloads")
    p_diff.add_argument("root", help="store directory")
    p_diff.add_argument("left", help="record id (or unambiguous prefix)")
    p_diff.add_argument("right", help="record id (or unambiguous prefix)")
    p_diff.set_defaults(func=_cmd_diff)

    p_report = store_sub.add_parser(
        "report", help="regenerate README tables / BENCH artifacts"
    )
    p_report.add_argument("root", help="store directory")
    p_report.add_argument(
        "--table",
        choices=("async", "pareto", "all", "none"),
        default="all",
        help="which README table(s) to print (default: all)",
    )
    p_report.add_argument(
        "--bench",
        action="append",
        metavar="BENCH_N.json",
        help="regenerate this artifact (repeatable; default with --out: all)",
    )
    p_report.add_argument("--out", help="write regenerated artifacts into this directory")
    p_report.set_defaults(func=_cmd_report)


def resolve_store(root: Optional[str]) -> Optional[RunStore]:
    """``--store PATH`` -> a :class:`RunStore` (``None`` passes through)."""
    return RunStore(root) if root else None
