"""Pure-function queries over :class:`~repro.store.record.RunRecord` lists.

Everything here takes records (or a :class:`~repro.store.store.RunStore`)
and returns plain data — no I/O, no mutation — so the same queries serve
the CLI, the report generator, and the regression gate's store view.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.store.record import RunRecord

__all__ = [
    "filter_records",
    "group_records",
    "latest_per_key",
    "pareto_front",
    "metric_of",
]

_FIELD_FILTERS = (
    "kind",
    "spec_hash",
    "seed",
    "scheduler",
    "schema_version",
    "bench_file",
    "section",
    "label",
)


def _resolve(store_or_records) -> List[RunRecord]:
    from repro.store.store import RunStore  # lazy: store imports query lazily too

    if isinstance(store_or_records, RunStore):
        return store_or_records.records()
    return list(store_or_records)


def filter_records(
    store_or_records,
    *,
    predicate: Optional[Callable[[RunRecord], bool]] = None,
    **fields: object,
) -> List[RunRecord]:
    """Records matching every given field value (and the optional predicate).

    ``spec_hash`` matches on any unambiguous prefix, so CLI users can pass
    the short ids printed by ``repro store list``.
    """
    unknown = set(fields) - set(_FIELD_FILTERS)
    if unknown:
        raise ValueError(
            f"unknown filter field(s) {sorted(unknown)}; "
            f"expected one of {list(_FIELD_FILTERS)}"
        )
    out = []
    for record in _resolve(store_or_records):
        for name, wanted in fields.items():
            have = getattr(record, name)
            if name == "spec_hash" and isinstance(wanted, str) and isinstance(have, str):
                if not have.startswith(wanted):
                    break
            elif have != wanted:
                break
        else:
            # Field filters narrow first, so the predicate only sees records
            # whose optional fields it can assume (e.g. kind="result" labels).
            if predicate is None or predicate(record):
                out.append(record)
    return out


def group_records(
    store_or_records, key: Callable[[RunRecord], object] | str
) -> Dict[object, List[RunRecord]]:
    """Group records by a field name or key function (insertion-ordered)."""
    key_fn = (lambda r, _name=key: getattr(r, _name)) if isinstance(key, str) else key
    groups: Dict[object, List[RunRecord]] = {}
    for record in _resolve(store_or_records):
        groups.setdefault(key_fn(record), []).append(record)
    return groups


def latest_per_key(
    store_or_records, *, order: Optional[Mapping[str, int]] = None
) -> List[RunRecord]:
    """One record per :attr:`~RunRecord.dedup_key` — the newest version.

    ``order`` maps record_id to ingest position (a store's journal order);
    records absent from it rank oldest, in record-id order, so a lost
    journal degrades to a deterministic choice instead of an error.
    """
    order = order or {}

    def rank(record: RunRecord) -> Tuple[int, int, str]:
        known = record.record_id in order
        return (1 if known else 0, order.get(record.record_id, -1), record.record_id)

    chosen: Dict[Tuple[object, ...], RunRecord] = {}
    for record in _resolve(store_or_records):
        incumbent = chosen.get(record.dedup_key)
        if incumbent is None or rank(record) > rank(incumbent):
            chosen[record.dedup_key] = record
    return sorted(chosen.values(), key=lambda r: r.record_id)


def metric_of(record: RunRecord, metric: str) -> Optional[float]:
    """A dotted-path scalar out of a record's merged payload.

    ``metric_of(r, "metrics.average_jct")`` walks the payload; bare names
    are tried under ``metrics.`` first, then at the top level.
    """
    payload = record.merged_payload()
    for path in (metric, f"metrics.{metric}") if "." not in metric else (metric,):
        node: object = payload
        for part in path.split("."):
            if isinstance(node, Mapping) and part in node:
                node = node[part]
            else:
                break
        else:
            if isinstance(node, (int, float)) and not isinstance(node, bool):
                return float(node)
    return None


def pareto_front(
    store_or_records,
    objectives: Sequence[str],
    *,
    maximize: Sequence[bool] | None = None,
) -> List[Tuple[RunRecord, Tuple[float, ...]]]:
    """Records on the Pareto front of the given metric objectives.

    Records missing any objective are excluded.  ``maximize`` defaults to
    all-True; pass ``False`` per objective to minimize it (e.g. JCT).
    Returns ``(record, objective_values)`` pairs sorted by record id.
    """
    if maximize is None:
        maximize = [True] * len(objectives)
    if len(maximize) != len(objectives):
        raise ValueError("maximize must match objectives in length")

    scored: List[Tuple[RunRecord, Tuple[float, ...]]] = []
    for record in _resolve(store_or_records):
        values = [metric_of(record, objective) for objective in objectives]
        if any(v is None for v in values):
            continue
        oriented = tuple(
            v if up else -v for v, up in zip(values, maximize, strict=True)
        )
        scored.append((record, oriented))

    front = []
    for record, oriented in scored:
        dominated = any(
            all(o >= s for o, s in zip(other, oriented, strict=True)) and other != oriented
            for _, other in scored
        )
        if not dominated:
            values = tuple(v if up else -v for v, up in zip(oriented, maximize, strict=True))
            front.append((record, values))
    return sorted(front, key=lambda pair: pair[0].record_id)
