"""``repro.store`` — a content-addressed run store with provenance.

Every experiment run (a :class:`~repro.api.results.Result`) or benchmark
summary section persists as one frozen
:class:`~repro.store.record.RunRecord` whose id is the SHA-256 of its
deterministic content — wall-clock-derived leaves are segregated so the
same seeded scenario hashes identically on any machine.  A
:class:`~repro.store.store.RunStore` keeps records in sharded,
atomically-written JSON files with an append-only journal (safe for
concurrent ``run_grid`` workers) and a rebuildable index;
:mod:`repro.store.query` answers filter/group/latest/pareto questions and
:mod:`repro.store.report` regenerates the README tables and BENCH_*.json
artifacts byte-for-byte from store contents alone.

CLI: ``python -m repro store ingest|list|query|diff|report``.
"""

from repro.store.record import (
    RecordError,
    RunRecord,
    is_timing_leaf,
    merge_timing,
    split_timing,
)
from repro.store.store import STORE_FORMAT_VERSION, RunStore, StoreError

__all__ = [
    "RecordError",
    "RunRecord",
    "RunStore",
    "StoreError",
    "STORE_FORMAT_VERSION",
    "is_timing_leaf",
    "merge_timing",
    "split_timing",
]
