""":class:`RunStore`: a directory of sharded, atomically-written records.

Layout (everything JSON, everything regenerable from ``records/`` alone)::

    <root>/
      FORMAT.json        # store format version + creating package version
      records/<aa>/<record_id>.json   # one canonical record per file
      journal.jsonl      # append-only ingest log (ordering + audit trail)
      index.json         # rebuildable summary cache (rebuild_index())

Durability rules:

* **Atomic record writes** — each record lands via ``<file>.tmp.<pid>`` +
  ``os.replace``; a crash mid-write leaves only a ``*.tmp.*`` turd, which
  every reader ignores (and which a later ingest of the same record simply
  replaces).
* **Append-only journal** — one JSON line per accepted record, written with
  ``O_APPEND`` so concurrent ``run_grid`` workers interleave whole lines;
  the journal is the store's ordering (``latest`` queries) and audit trail,
  never its source of truth.
* **Content-addressed dedup** — a record's filename *is* its identity hash,
  so re-ingesting identical data is a no-op; a record with the same
  :attr:`~repro.store.record.RunRecord.dedup_key` but different content is
  accepted as a new version (the journal notes what it supersedes) and
  ``latest``-style queries pick the newest.
* **Rebuildable index** — ``index.json`` is a pure cache; deleting it (or
  racing workers clobbering it) loses nothing: :meth:`rebuild_index`
  reconstructs it from the record files alone.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import repro
from repro.store.record import RecordError, RunRecord, looks_like_result_payload
from repro.utils.canonical import canonical_json

__all__ = ["StoreError", "RunStore", "STORE_FORMAT_VERSION"]

STORE_FORMAT_VERSION = 1

_FORMAT_FILE = "FORMAT.json"
_RECORDS_DIR = "records"
_JOURNAL_FILE = "journal.jsonl"
_INDEX_FILE = "index.json"

#: Index summary fields (a subset of the record, for cheap listing/queries).
_INDEX_FIELDS = (
    "kind",
    "spec_hash",
    "seed",
    "scheduler",
    "schema_version",
    "bench_file",
    "section",
    "label",
)


class StoreError(RuntimeError):
    """A store operation failed (bad layout, unreadable record, ...)."""


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class RunStore:
    """Persist, deduplicate and enumerate :class:`RunRecord`\\ s (see module doc).

    The object holds only the root path, so it pickles cleanly into
    ``run_grid`` worker processes; every operation re-opens the directory.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # Paths ----------------------------------------------------------------- #
    @property
    def records_dir(self) -> Path:
        return self.root / _RECORDS_DIR

    @property
    def journal_path(self) -> Path:
        return self.root / _JOURNAL_FILE

    @property
    def index_path(self) -> Path:
        return self.root / _INDEX_FILE

    def _record_path(self, record_id: str) -> Path:
        return self.records_dir / record_id[:2] / f"{record_id}.json"

    # Layout ---------------------------------------------------------------- #
    def _ensure_layout(self) -> None:
        self.records_dir.mkdir(parents=True, exist_ok=True)
        format_path = self.root / _FORMAT_FILE
        if not format_path.exists():
            _atomic_write_text(
                format_path,
                canonical_json(
                    {
                        "format_version": STORE_FORMAT_VERSION,
                        "package_version": repro.__version__,
                    }
                )
                + "\n",
            )

    def exists(self) -> bool:
        return self.records_dir.is_dir()

    def check_format(self) -> None:
        format_path = self.root / _FORMAT_FILE
        if not format_path.exists():
            return  # pre-format or empty store: records alone are authoritative
        try:
            stamped = json.loads(format_path.read_text())["format_version"]
        except (OSError, ValueError, KeyError) as exc:
            raise StoreError(f"unreadable {format_path}: {exc}") from exc
        if stamped != STORE_FORMAT_VERSION:
            raise StoreError(
                f"store {self.root} has format_version {stamped!r}; this build "
                f"reads version {STORE_FORMAT_VERSION}"
            )

    # Writing --------------------------------------------------------------- #
    def add(
        self, record: RunRecord, *, source: Optional[str] = None
    ) -> Tuple[RunRecord, bool]:
        """Persist one record; returns ``(record, added)``.

        Identical content (same ``record_id``) dedupes to a no-op.  Same
        ``dedup_key`` with different content is stored as a new version and
        journaled with the ids it supersedes.
        """
        self._ensure_layout()
        self.check_format()
        record = record.with_provenance(
            package_version=record.provenance.get("package_version", repro.__version__),
            **({"source": source} if source else {}),
        )
        path = self._record_path(record.record_id)
        if path.exists():
            return record, False
        supersedes = sorted(
            rid
            for rid, entry in self._index_snapshot().items()
            if tuple(entry.get("dedup_key", ())) == tuple(map(_jsonable, record.dedup_key))
            and rid != record.record_id
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(path, record.to_json())
        journal_entry: Dict[str, object] = {
            "event": "add",
            "record_id": record.record_id,
            "dedup_key": [_jsonable(part) for part in record.dedup_key],
        }
        if source:
            journal_entry["source"] = source
        if supersedes:
            journal_entry["supersedes"] = supersedes
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(canonical_json(journal_entry) + "\n")
        self._update_index(record)
        return record, True

    def add_result(self, result, *, source: Optional[str] = None, **meta) -> Tuple[RunRecord, bool]:
        """Persist a live :class:`~repro.api.results.Result`."""
        return self.add(RunRecord.from_result(result, **meta), source=source or "api.run")

    # Ingestion ------------------------------------------------------------- #
    def ingest_bench_payload(
        self,
        bench_file: str,
        data: Mapping[str, object],
        *,
        source: Optional[str] = None,
    ) -> List[Tuple[RunRecord, bool]]:
        """Ingest a BENCH_*.json-shaped mapping of sections.

        Each section becomes one ``section`` record with its ``results``
        payloads hoisted into individual ``result`` records (keyed by label),
        so every persisted ``Result`` is individually addressable while the
        artifact stays byte-for-byte regenerable (the section record keeps an
        empty ``results`` slot marking where they re-attach).
        """
        out: List[Tuple[RunRecord, bool]] = []
        for section in sorted(data):
            payload = data[section]
            if not isinstance(payload, Mapping):
                raise StoreError(
                    f"{bench_file}: section {section!r} is not a JSON object"
                )
            payload = dict(payload)
            results = payload.get("results")
            if isinstance(results, Mapping) and all(
                looks_like_result_payload(v) for v in results.values()
            ):
                for label in sorted(results):
                    out.append(
                        self.add(
                            RunRecord.result_record(
                                results[label],
                                bench_file=bench_file,
                                section=section,
                                label=label,
                            ),
                            source=source,
                        )
                    )
                payload["results"] = {}
            out.append(
                self.add(
                    RunRecord.section_record(
                        payload, bench_file=bench_file, section=section
                    ),
                    source=source,
                )
            )
        return out

    def ingest_bench_file(
        self,
        path: str | os.PathLike,
        *,
        bench_file: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[Tuple[RunRecord, bool]]:
        """Ingest one BENCH_*.json file (``bench_file`` defaults to its name)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot ingest {path}: {exc}") from exc
        if not isinstance(data, Mapping):
            raise StoreError(f"cannot ingest {path}: top level is not a JSON object")
        return self.ingest_bench_payload(
            bench_file or path.name, data, source=source or f"ingest:{path.name}"
        )

    # Reading --------------------------------------------------------------- #
    def get(self, record_id: str, *, verify: bool = False) -> Optional[RunRecord]:
        path = self._record_path(record_id)
        if not path.exists():
            return None
        return self._load_record(path, verify=verify)

    def record_ids(self) -> List[str]:
        if not self.records_dir.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.records_dir.glob("*/*.json")  # *.tmp.* never matches
        )

    def records(self, *, verify: bool = False) -> List[RunRecord]:
        """Every record, sorted by id (tmp turds from crashed writes ignored)."""
        return [
            self._load_record(self._record_path(rid), verify=verify)
            for rid in self.record_ids()
        ]

    def _load_record(self, path: Path, *, verify: bool = False) -> RunRecord:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"unreadable record file {path}: {exc}") from exc
        try:
            record = RunRecord.from_dict(data, verify=verify)
        except RecordError as exc:
            raise StoreError(f"{path}: {exc}") from exc
        if record.record_id != path.stem:
            raise StoreError(
                f"{path}: filename does not match stored record_id "
                f"{record.record_id[:12]}..."
            )
        return record

    def __len__(self) -> int:
        return len(self.record_ids())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RunStore({str(self.root)!r}, {len(self)} records)"

    # Journal / ordering ---------------------------------------------------- #
    def journal_entries(self) -> List[Dict[str, object]]:
        if not self.journal_path.exists():
            return []
        entries: List[Dict[str, object]] = []
        for line in self.journal_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                # A torn line (crash mid-append) is an audit gap, not data
                # loss: records/ is the source of truth.
                continue
        return entries

    def journal_order(self) -> Dict[str, int]:
        """record_id -> first journal position (ids missing from a lost
        journal rank before journaled ones, in id order, keeping totals stable)."""
        order: Dict[str, int] = {}
        for position, entry in enumerate(self.journal_entries()):
            rid = entry.get("record_id")
            if isinstance(rid, str) and rid not in order:
                order[rid] = position
        return order

    # Index ----------------------------------------------------------------- #
    def _index_entry(self, record: RunRecord) -> Dict[str, object]:
        entry: Dict[str, object] = {
            name: getattr(record, name)
            for name in _INDEX_FIELDS
            if getattr(record, name) is not None
        }
        entry["dedup_key"] = [_jsonable(part) for part in record.dedup_key]
        return entry

    def _index_snapshot(self) -> Dict[str, Dict[str, object]]:
        if self.index_path.exists():
            try:
                data = json.loads(self.index_path.read_text(encoding="utf-8"))
                if (
                    isinstance(data, Mapping)
                    and data.get("format_version") == STORE_FORMAT_VERSION
                    and isinstance(data.get("records"), Mapping)
                ):
                    return dict(data["records"])
            except (OSError, ValueError):
                pass  # stale/corrupt cache: fall through to rebuild
        return {
            record.record_id: self._index_entry(record) for record in self.records()
        }

    def _update_index(self, record: RunRecord) -> None:
        # Best-effort cache refresh: concurrent writers may clobber each
        # other's entries, which is fine — rebuild_index() restores from the
        # record files, and queries never *trust* the index for correctness.
        try:
            snapshot = self._index_snapshot()
            snapshot[record.record_id] = self._index_entry(record)
            self._write_index(snapshot)
        except OSError:  # pragma: no cover - index is advisory
            pass

    def _write_index(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "num_records": len(snapshot),
            "records": {rid: snapshot[rid] for rid in sorted(snapshot)},
        }
        _atomic_write_text(
            self.index_path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def rebuild_index(self) -> Dict[str, Dict[str, object]]:
        """Reconstruct ``index.json`` from the record files alone."""
        snapshot = {
            record.record_id: self._index_entry(record) for record in self.records()
        }
        self._ensure_layout()
        self._write_index(snapshot)
        return snapshot

    # Convenience views ------------------------------------------------------ #
    def latest_records(self, *, verify: bool = False) -> List[RunRecord]:
        """One record per dedup key — the newest version by journal order."""
        from repro.store.query import latest_per_key  # lazy: query imports store types

        return latest_per_key(self.records(verify=verify), order=self.journal_order())

    def bench_files(self) -> List[str]:
        return sorted(
            {r.bench_file for r in self.records() if r.bench_file is not None}
        )


def _jsonable(value: object) -> object:
    return value if isinstance(value, (str, int, float, bool)) or value is None else str(value)


def _iter_records(store_or_records) -> Iterable[RunRecord]:
    """Accept a RunStore or a plain record sequence (shared by query/report)."""
    if isinstance(store_or_records, RunStore):
        return store_or_records.records()
    return store_or_records
