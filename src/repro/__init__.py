"""LLMSched reproduction: uncertainty-aware scheduling for compound LLM applications.

Subpackages
-----------
``repro.dag``
    The LLM DAG model: regular / LLM / dynamic stages, tasks, runtime jobs
    and application templates.
``repro.bayes``
    Discrete Bayesian-network substrate (factors, CPDs, exact inference,
    learning, discretisation, information measures).
``repro.simulator``
    Discrete-event cluster simulator with batched LLM executors.
``repro.schedulers``
    Scheduler interface and the six baselines of the paper's evaluation.
``repro.core``
    LLMSched itself: Bayesian profiler, batching-aware calibration,
    entropy-based uncertainty quantification, and Algorithm 1.
``repro.workloads``
    Generative models of the six compound LLM applications and the four
    workload mixes.
``repro.experiments``
    Harness regenerating every table and figure of the paper.
``repro.api``
    The declarative experiment API: a serializable :class:`ScenarioSpec`
    tree, one ``run()`` front door for every engine, override-axis grids,
    and the ``python -m repro`` CLI.
"""

from repro import api
from repro.core import (
    BatchingAwareCalibrator,
    BayesianProfiler,
    LLMSchedConfig,
    LLMSchedScheduler,
    UncertaintyQuantifier,
)
from repro.dag import ApplicationTemplate, Job, Stage, StageType, Task
from repro.schedulers import available_schedulers, create_scheduler
from repro.simulator import Cluster, ClusterConfig, SimulationEngine
from repro.workloads import WorkloadSpec, WorkloadType, default_applications, generate_workload

__version__ = "1.0.0"

__all__ = [
    "api",
    "BayesianProfiler",
    "BatchingAwareCalibrator",
    "LLMSchedConfig",
    "LLMSchedScheduler",
    "UncertaintyQuantifier",
    "ApplicationTemplate",
    "Job",
    "Stage",
    "StageType",
    "Task",
    "available_schedulers",
    "create_scheduler",
    "Cluster",
    "ClusterConfig",
    "SimulationEngine",
    "WorkloadSpec",
    "WorkloadType",
    "default_applications",
    "generate_workload",
    "__version__",
]
