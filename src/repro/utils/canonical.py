"""Canonical JSON: one byte representation per value, for content hashing.

Two equal spec trees must hash identically no matter how their dicts were
built, so the canonical form fixes everything ``json.dumps`` leaves to the
caller: keys sorted recursively, separators without whitespace, ASCII-only
escapes, and ``allow_nan=False`` (NaN breaks the equality semantics a
content hash exists to provide — ``nan != nan`` — so it is rejected rather
than serialized).  Floats use Python's shortest-round-trip ``repr``, which
is injective on distinct doubles, so value equality and byte equality
coincide for everything a :class:`~repro.api.spec.ScenarioSpec` or
:class:`~repro.api.results.Result` serializes.

This module is the hashing substrate of :meth:`ScenarioSpec.content_hash`
and of :mod:`repro.store`'s content-addressed records; pretty-printed
output (``to_json``, the BENCH files) stays human-indented — only the
*hash* goes through the canonical form.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "content_hash"]


def canonical_json(obj: object) -> str:
    """The canonical (sorted, compact, ASCII, NaN-free) JSON encoding."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def content_hash(obj: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
