"""Shared utilities: deterministic RNG management, statistics, validation."""

from repro.utils.rng import RngMixin, derive_rng, make_rng
from repro.utils.stats import (
    OnlineStats,
    histogram_probabilities,
    pearson_correlation,
    pearson_correlation_matrix,
    summarize,
)
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "RngMixin",
    "derive_rng",
    "make_rng",
    "OnlineStats",
    "histogram_probabilities",
    "pearson_correlation",
    "pearson_correlation_matrix",
    "summarize",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
