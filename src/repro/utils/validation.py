"""Argument-validation helpers raising consistent, descriptive errors."""

from __future__ import annotations

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_in_range",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Return ``value`` if within [0, 1], otherwise raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if within [low, high], otherwise raise ``ValueError``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")
    return value
