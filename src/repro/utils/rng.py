"""Deterministic random-number-generator helpers.

Every stochastic component in the library (workload generators, the cluster
simulator, the schedulers that randomise) receives an explicit
:class:`numpy.random.Generator`.  Global random state is never used, so every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: object) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and a key tuple.

    Used to give each job / application / executor its own stream so that
    adding one more consumer of randomness does not perturb the draws seen by
    the others (important when comparing schedulers on an identical workload).
    """
    # Hash the keys into a stable 32-bit value and fold it with fresh words
    # from the parent stream.
    key_hash = abs(hash(tuple(str(k) for k in keys))) % (2**32)
    words = rng.integers(0, 2**32, size=4, dtype=np.uint64)
    seed_seq = np.random.SeedSequence([int(w) for w in words] + [key_hash])
    return np.random.default_rng(seed_seq)


class RngMixin:
    """Mixin giving a class a lazily-created private generator.

    Subclasses may set ``self._seed`` in ``__init__``; the generator is
    created on first use and cached.
    """

    _seed: SeedLike = None
    _rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = make_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator to a new seed (used between repetitions)."""
        self._seed = seed
        self._rng = make_rng(seed)
