"""Small statistics helpers used across the library.

The heatmap experiment (paper Fig. 5) needs Pearson correlation matrices, the
profiler needs empirical histograms, and the metrics module needs streaming
mean/percentile summaries.  Everything here operates on plain sequences or
numpy arrays and has no dependency on the rest of the package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = [
    "OnlineStats",
    "pearson_correlation",
    "pearson_correlation_matrix",
    "histogram_probabilities",
    "summarize",
    "percentile_summary",
]


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either sequence is (numerically) constant, which is the
    convention the heatmap plots need: a stage whose duration never varies
    carries no correlation signal.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        return 0.0
    sx = x.std()
    sy = y.std()
    if sx < 1e-12 or sy < 1e-12:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def pearson_correlation_matrix(columns: Dict[str, Sequence[float]]) -> Dict[str, Dict[str, float]]:
    """Pairwise Pearson correlations between named columns.

    The result is a nested mapping ``matrix[a][b]`` mirroring the stage-ID
    heatmap in the paper's Fig. 5.
    """
    names = list(columns)
    matrix: Dict[str, Dict[str, float]] = {}
    for a in names:
        matrix[a] = {}
        for b in names:
            if a == b:
                matrix[a][b] = 1.0
            else:
                matrix[a][b] = pearson_correlation(columns[a], columns[b])
    return matrix


def histogram_probabilities(
    values: Sequence[float],
    bin_edges: Sequence[float],
) -> List[float]:
    """Empirical probability mass of ``values`` within consecutive bins.

    ``bin_edges`` must be increasing; values outside the range are clipped to
    the first/last bin so the masses always sum to 1 for non-empty input.
    """
    edges = np.asarray(bin_edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("bin_edges must contain at least two edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("bin_edges must be strictly increasing")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return [0.0] * (edges.size - 1)
    clipped = np.clip(data, edges[0], edges[-1])
    counts, _ = np.histogram(clipped, bins=edges)
    return list(counts / data.size)


@dataclass
class OnlineStats:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]) of all values seen so far."""
        if not self._values:
            raise ValueError("no values recorded")
        return float(np.percentile(np.asarray(self._values), q))

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
        }


def percentile_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, float]:
    """count / mean / pXX summary of a latency-sample sequence.

    The single percentile implementation behind every serving-latency
    surface (Result ``serving`` block, the ``pareto`` CLI, benchmark
    writers, the regression gate) so their numbers agree bit-for-bit.
    Percentile keys are formatted ``p50`` / ``p99.9`` (trailing ``.0``
    dropped).  Empty input yields ``count == 0`` and NaNs.
    """
    arr = np.asarray(list(values), dtype=float)

    def _key(q: float) -> str:
        return f"p{int(q)}" if float(q).is_integer() else f"p{q}"

    if arr.size == 0:
        out = {"count": 0.0, "mean": float("nan")}
        out.update({_key(q): float("nan") for q in percentiles})
        return out
    out = {"count": float(arr.size), "mean": float(arr.mean())}
    for q in percentiles:
        out[_key(q)] = float(np.percentile(arr, q))
    return out


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """One-shot summary (count / mean / std / min / p50 / p95 / max)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {
            "count": 0.0,
            "mean": float("nan"),
            "std": float("nan"),
            "min": float("nan"),
            "p50": float("nan"),
            "p95": float("nan"),
            "max": float("nan"),
        }
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
