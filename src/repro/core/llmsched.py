"""LLMSched — the uncertainty-aware scheduler (paper Algorithm 1).

The scheduler maintains two orderings of the currently schedulable stages:

* **St** — stages of jobs sorted by their estimated remaining duration
  (Shortest Remaining Time First; the estimates come from the Bayesian
  profiler's posterior, calibrated for the current batch size), and
* **Su** — stages sorted by their quantified uncertainty reduction, computed
  within non-overlapping groups of jobs (jobs whose remaining-duration
  intervals overlap are grouped together so that exploration never jumps
  ahead of a provably shorter job).

An ε-greedy rule merges the two lists: with probability ε the next scheduled
stage comes from Su (exploration — only a sampled fraction ``r`` of its
tasks is released, enough to learn its duration without monopolising the
cluster), otherwise from St (exploitation).  The two ablations of the paper
are exposed as flags: ``use_bn=False`` replaces the posterior estimates with
historical means ("LLMSched w/o BN"), and ``use_uncertainty=False`` disables
the exploration list entirely ("LLMSched w/o uncertainty", i.e. plain SRTF
on Bayesian estimates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.profiler import BayesianProfiler
from repro.dag.job import Job
from repro.dag.stage import Stage
from repro.dag.task import Task
from repro.schedulers.base import Scheduler, SchedulingContext, SchedulingDecision
from repro.utils.rng import make_rng
from repro.utils.validation import require_probability

__all__ = ["LLMSchedConfig", "LLMSchedScheduler"]

#: Remaining-duration estimate used for jobs of applications that were never
#: profiled; a neutral middle-of-the-road value keeps the scheduler robust.
_UNPROFILED_REMAINING = 10.0


@dataclass(frozen=True)
class LLMSchedConfig:
    """Knobs of Algorithm 1.

    ``epsilon`` is the exploration probability, ``sampling_ratio`` the
    fraction of an explored stage's tasks that is actually released
    (Algorithm 1's ``r``).  The defaults are the sweet spot of this
    reproduction's sensitivity sweep (Fig. 9a/9b harness); the paper's own
    sweep favours a slightly larger ε on its testbed workloads.
    """

    epsilon: float = 0.1
    sampling_ratio: float = 0.3
    use_bn: bool = True
    use_uncertainty: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        require_probability(self.epsilon, "epsilon")
        require_probability(self.sampling_ratio, "sampling_ratio")


class LLMSchedScheduler(Scheduler):
    """The paper's uncertainty-aware scheduler."""

    name = "llmsched"

    def __init__(
        self,
        profiler: BayesianProfiler,
        config: Optional[LLMSchedConfig] = None,
        calibrator: Optional[BatchingAwareCalibrator] = None,
    ) -> None:
        self.profiler = profiler
        self.config = config or LLMSchedConfig()
        self.calibrator = calibrator or BatchingAwareCalibrator()
        self._rng = make_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    # Estimation helpers
    # ------------------------------------------------------------------ #
    def estimate_remaining(self, job: Job, context: SchedulingContext) -> float:
        """Posterior (or historical) remaining duration, batch-calibrated."""
        if not self.profiler.has_profile(job.application):
            return _UNPROFILED_REMAINING
        return self.profiler.estimate_remaining_duration(
            job,
            target_batch_size=context.average_llm_batch_size,
            calibrator=self.calibrator,
            use_posterior=self.config.use_bn,
        )

    def _remaining_interval(self, job: Job) -> Tuple[float, float]:
        if not self.profiler.has_profile(job.application):
            return (_UNPROFILED_REMAINING * 0.5, _UNPROFILED_REMAINING * 1.5)
        return self.profiler.estimate_remaining_interval(job, use_posterior=self.config.use_bn)

    def _uncertainty_reduction(self, job: Job, stage: Stage) -> float:
        if not self.profiler.has_profile(job.application):
            return 0.0
        return self.profiler.uncertainty_reduction(job, stage.profile_key)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def schedule(self, context: SchedulingContext) -> SchedulingDecision:
        jobs = [j for j in context.jobs if not j.is_finished]
        if not jobs:
            return SchedulingDecision()

        # Lines 1-4: SRTF-ordered stage list St.
        remaining = {job.job_id: self.estimate_remaining(job, context) for job in jobs}
        jobs_by_remaining = sorted(
            jobs, key=lambda j: (remaining[j.job_id], j.arrival_time, j.job_id)
        )
        srtf_stages: List[Tuple[Job, Stage]] = []
        for job in jobs_by_remaining:
            stages = sorted(
                job.schedulable_stages(),
                key=lambda s: (job.stage_depth(s.stage_id), s.stage_id),
            )
            srtf_stages.extend((job, s) for s in stages)

        # Lines 5-10: uncertainty-ordered stage list Su over non-overlapping
        # job groups.  Only uncertainty-reducing stages (R > 0) are worth
        # exploring; stages with nothing to reveal stay exclusively in St.
        exploration_stages: List[Tuple[Job, Stage]] = []
        if self.config.use_uncertainty and self.config.epsilon > 0.0:
            groups = self._non_overlapping_groups(jobs)
            for group in groups:
                group_stages: List[Tuple[float, float, str, Job, Stage]] = []
                for job in group:
                    for stage in job.schedulable_stages():
                        reduction = self._uncertainty_reduction(job, stage)
                        if reduction <= 0.0:
                            continue
                        group_stages.append(
                            (-reduction, job.arrival_time, stage.stage_id, job, stage)
                        )
                group_stages.sort(key=lambda item: (item[0], item[1], item[2]))
                exploration_stages.extend((job, stage) for *_, job, stage in group_stages)

        # Lines 11-21: epsilon-greedy merge with task sampling.
        intervals = {job.job_id: self._remaining_interval(job) for job in jobs}
        return self._merge_preferences(srtf_stages, exploration_stages, intervals)

    # ------------------------------------------------------------------ #
    def _non_overlapping_groups(self, jobs: Sequence[Job]) -> List[List[Job]]:
        """Group jobs whose remaining-duration intervals overlap (line 5).

        The groups themselves are ordered by their lower bound, so stages of
        a group of provably-shorter jobs always precede stages of longer
        ones in the exploration list.
        """
        intervals = []
        for job in jobs:
            lower, upper = self._remaining_interval(job)
            intervals.append((lower, max(upper, lower), job))
        intervals.sort(key=lambda item: (item[0], item[1], item[2].job_id))

        groups: List[List[Job]] = []
        current: List[Job] = []
        current_upper = -math.inf
        for lower, upper, job in intervals:
            if not current or lower <= current_upper:
                current.append(job)
                current_upper = max(current_upper, upper)
            else:
                groups.append(current)
                current = [job]
                current_upper = upper
        if current:
            groups.append(current)
        return groups

    def _merge_preferences(
        self,
        srtf_stages: List[Tuple[Job, Stage]],
        exploration_stages: List[Tuple[Job, Stage]],
        intervals: Dict[str, Tuple[float, float]],
    ) -> SchedulingDecision:
        """ε-greedy merge of the exploitation and exploration lists.

        An exploration pick is only allowed to displace the current SRTF head
        when the explored job's remaining-duration interval overlaps the head
        job's interval — for non-overlapping jobs the SRTF order is already
        provably correct (the paper's rationale for the non-overlapping
        grouping), so exploring them ahead of a certainly-shorter job would
        only inflate the average JCT.
        """
        ordered_tasks: List[Task] = []
        seen_tasks: Set[int] = set()
        seen_stages: Set[Tuple[str, str]] = set()

        def stage_key(job: Job, stage: Stage) -> Tuple[str, str]:
            return (job.job_id, stage.stage_id)

        def add_tasks(tasks: Sequence[Task]) -> None:
            for task in tasks:
                if task.uid not in seen_tasks:
                    seen_tasks.add(task.uid)
                    ordered_tasks.append(task)

        def overlaps(job_a: Job, job_b: Job) -> bool:
            low_a, high_a = intervals[job_a.job_id]
            low_b, high_b = intervals[job_b.job_id]
            return low_a <= high_b and low_b <= high_a

        srtf_queue = list(srtf_stages)
        exploration_queue = list(exploration_stages)
        while srtf_queue and exploration_queue:
            job_t, stage_t = srtf_queue.pop(0)
            explore = self._rng.random() <= self.config.epsilon
            candidate_index = None
            if explore:
                for index, (job_u, _) in enumerate(exploration_queue):
                    if job_u.job_id == job_t.job_id or overlaps(job_u, job_t):
                        candidate_index = index
                        break
            if candidate_index is not None:
                job_u, stage_u = exploration_queue.pop(candidate_index)
                if stage_key(job_u, stage_u) not in seen_stages:
                    seen_stages.add(stage_key(job_u, stage_u))
                    add_tasks(self._sample_tasks(stage_u))
            else:
                if explore and exploration_queue:
                    exploration_queue.pop(0)
                if stage_key(job_t, stage_t) not in seen_stages:
                    seen_stages.add(stage_key(job_t, stage_t))
                    add_tasks(stage_t.pending_tasks())

        # Line 21: attach every remaining task, SRTF stages first.
        for _job, stage in srtf_queue + exploration_queue + srtf_stages + exploration_stages:
            add_tasks(stage.pending_tasks())

        return SchedulingDecision.from_tasks(ordered_tasks)

    def _sample_tasks(self, stage: Stage) -> List[Task]:
        """Release only a sampled fraction of an explored stage's tasks (line 15)."""
        pending = stage.pending_tasks()
        if not pending:
            return []
        count = max(1, int(math.ceil(len(pending) * self.config.sampling_ratio)))
        if count >= len(pending):
            return pending
        indices = self._rng.choice(len(pending), size=count, replace=False)
        return [pending[i] for i in sorted(int(i) for i in indices)]
