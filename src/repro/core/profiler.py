"""Bayesian-network profiler (paper Section IV-B).

For every application the profiler runs an offline profiling pass (sampling
historical jobs), discretises each stage's duration distribution into at
most six intervals (plus a zero state for stages that may not execute),
learns a Bayesian network over the stage durations from the inter-stage
correlations, and then answers the two questions LLMSched asks at runtime:

* *What is this job's remaining duration*, given the durations of its
  completed stages (posterior expectation, with batching-aware calibration
  of the LLM share)?
* *Which stages are uncertainty-reducing*, i.e. correlated with other
  unscheduled stages through a directed path in the learned network?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.bayes.discretize import DiscretizationSpec, Discretizer
from repro.bayes.information import conditional_mutual_information
from repro.bayes.learning import StructureLearningConfig, build_network_from_samples
from repro.bayes.network import DiscreteBayesianNetwork
from repro.dag.application import ApplicationTemplate
from repro.dag.dynamic import dynamic_stage_entropy
from repro.dag.job import Job
from repro.utils.rng import make_rng

__all__ = ["ApplicationProfile", "BayesianProfiler"]


@dataclass
class ApplicationProfile:
    """Everything the profiler learned about one application."""

    name: str
    variables: List[str]
    network: DiscreteBayesianNetwork
    specs: Dict[str, DiscretizationSpec]
    llm_variables: Set[str]
    mean_durations: Dict[str, float]
    #: dynamic-stage profile key -> (preceding LLM key, entropy, duration range)
    dynamic_info: Dict[str, Tuple[str, float, float]] = field(default_factory=dict)

    @property
    def mean_total_duration(self) -> float:
        return float(sum(self.mean_durations.values()))

    def variable_range(self, variable: str) -> float:
        return self.specs[variable].value_range


class BayesianProfiler:
    """Offline profiling plus online posterior queries for LLMSched."""

    def __init__(
        self,
        structure_config: Optional[StructureLearningConfig] = None,
        max_intervals: int = 6,
        max_correlated_targets: int = 3,
    ) -> None:
        if max_intervals < 1:
            raise ValueError("max_intervals must be >= 1")
        if max_correlated_targets < 1:
            raise ValueError("max_correlated_targets must be >= 1")
        # Single-parent (tree) structures keep the fast forward-pass posterior
        # exact and avoid sparse multi-parent CPD columns.
        self.structure_config = structure_config or StructureLearningConfig(
            correlation_threshold=0.3, max_parents=1
        )
        self.max_intervals = int(max_intervals)
        self.max_correlated_targets = int(max_correlated_targets)
        self._profiles: Dict[str, ApplicationProfile] = {}
        # Memoised posterior marginals keyed by (application, evidence signature).
        self._marginal_cache: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], Dict[str, np.ndarray]] = {}
        # Memoised uncertainty reductions keyed by (application, stage, evidence signature).
        self._reduction_cache: Dict[Tuple[str, str, Tuple[Tuple[str, int], ...]], float] = {}

    # ------------------------------------------------------------------ #
    # Offline profiling
    # ------------------------------------------------------------------ #
    def fit(
        self,
        applications: Iterable[ApplicationTemplate],
        n_profile_jobs: int = 200,
        seed: int = 7,
    ) -> "BayesianProfiler":
        """Profile every application from offline job samples."""
        if n_profile_jobs < 2:
            raise ValueError("n_profile_jobs must be >= 2")
        rng = make_rng(seed)
        for app in applications:
            self._profiles[app.name] = self._fit_application(app, n_profile_jobs, rng)
        return self

    def _fit_application(
        self, app: ApplicationTemplate, n_jobs: int, rng: np.random.Generator
    ) -> ApplicationProfile:
        variables = app.profile_variables()
        traces: Dict[str, List[float]] = {v: [] for v in variables}
        dynamic_candidates = app.dynamic_candidates()
        dynamic_totals: Dict[str, List[float]] = {k: [] for k in dynamic_candidates}

        for i in range(n_jobs):
            job = app.sample_job(f"__profile__{app.name}_{i}", 0.0, rng)
            durations = self._ground_truth_durations(job)
            for variable in variables:
                traces[variable].append(durations.get(variable, 0.0))
            for dyn_key in dynamic_candidates:
                inner = [
                    stage.duration
                    for stage in job.stages.values()
                    if stage.profile_key in self._candidate_keys(app, dyn_key)
                ]
                dynamic_totals[dyn_key].append(float(sum(inner)))

        # Discretise each variable; reserve a zero state if the stage ever
        # skips execution.
        specs: Dict[str, DiscretizationSpec] = {}
        discrete: Dict[str, List[int]] = {}
        for variable in variables:
            samples = traces[variable]
            needs_zero_state = any(v <= 1e-9 for v in samples)
            discretizer = Discretizer(max_intervals=self.max_intervals, zero_state=needs_zero_state)
            spec, states = discretizer.fit_transform(samples)
            specs[variable] = spec
            discrete[variable] = states

        cardinalities = {v: specs[v].cardinality for v in variables}
        state_labels = {v: list(specs[v].representatives) for v in variables}
        network = build_network_from_samples(
            continuous_samples=traces,
            discrete_samples=discrete,
            cardinalities=cardinalities,
            state_labels=state_labels,
            variable_order=variables,
            config=self.structure_config,
            laplace_alpha=0.5,
            smoothing_prior="marginal",
        )

        llm_variables = set(app.llm_profile_keys())
        mean_durations = {v: float(np.mean(traces[v])) for v in variables}

        dynamic_info: Dict[str, Tuple[str, float, float]] = {}
        for dyn_key, candidates in dynamic_candidates.items():
            preceding = self._preceding_llm_key(app, dyn_key)
            entropy = dynamic_stage_entropy(candidates)
            totals = dynamic_totals[dyn_key]
            duration_range = float(max(totals) - min(totals)) if totals else 0.0
            dynamic_info[dyn_key] = (preceding, entropy, duration_range)

        return ApplicationProfile(
            name=app.name,
            variables=list(variables),
            network=network,
            specs=specs,
            llm_variables=llm_variables,
            mean_durations=mean_durations,
            dynamic_info=dynamic_info,
        )

    @staticmethod
    def _ground_truth_durations(job: Job) -> Dict[str, float]:
        """profile_key -> executed duration (0 when the stage is skipped)."""
        durations: Dict[str, float] = {}
        for stage in job.stages.values():
            if stage.is_dynamic:
                continue
            durations[stage.profile_key] = stage.duration
        return durations

    @staticmethod
    def _candidate_keys(app: ApplicationTemplate, dyn_key: str) -> Set[str]:
        """Profile keys of the candidate stages of a dynamic stage."""
        candidates = app.dynamic_candidates().get(dyn_key, [])
        keys: Set[str] = set()
        for candidate in candidates:
            if hasattr(app, "tool_profile_key"):
                keys.add(app.tool_profile_key(candidate.name))
            else:  # pragma: no cover - defensive fallback
                keys.add(candidate.name)
        return keys

    @staticmethod
    def _preceding_llm_key(app: ApplicationTemplate, dyn_key: str) -> str:
        """The LLM stage whose completion resolves the dynamic stage."""
        for parent, child in app.profile_edges():
            if child == dyn_key:
                return parent
        # Dynamic stages in this model are always planned by an LLM stage; if
        # the static edges do not say which, fall back to the first LLM key.
        llm_keys = app.llm_profile_keys()
        return llm_keys[0] if llm_keys else dyn_key

    # ------------------------------------------------------------------ #
    # Profile access
    # ------------------------------------------------------------------ #
    def has_profile(self, application: str) -> bool:
        return application in self._profiles

    def profile_for(self, application: str) -> ApplicationProfile:
        if application not in self._profiles:
            raise KeyError(f"no profile for application {application!r}")
        return self._profiles[application]

    @property
    def applications(self) -> List[str]:
        return list(self._profiles)

    # ------------------------------------------------------------------ #
    # Online evidence handling
    # ------------------------------------------------------------------ #
    def evidence_for(self, job: Job) -> Dict[str, int]:
        """Discretised durations of the job's completed (visible) stages.

        Two refinements beyond completed stages:

        * *Task sampling*: a running stage with at least one finished task
          already reveals its duration scale — the paper's Algorithm 1 samples
          a fraction ``r`` of a stage's tasks exactly to obtain this estimate.
          The stage's duration is extrapolated from the finished tasks and
          used as (soft) evidence.
        * Once a dynamic stage's planner has finished (so the realised plan is
          visible), candidate stages that were *not* selected are pinned to
          the zero state — their absence is now known.
        """
        profile = self.profile_for(job.application)
        evidence: Dict[str, int] = {}
        observed = dict(job.observed_durations())
        # Task-sampling estimates from partially finished stages.
        for stage in job.stages.values():
            if stage.is_complete or not stage.visible or stage.is_dynamic:
                continue
            finished = [t for t in stage.tasks if t.is_finished]
            if finished and stage.profile_key not in observed:
                mean_task = sum(t.work for t in finished) / len(finished)
                observed[stage.profile_key] = mean_task * len(stage.tasks)
        for variable, duration in observed.items():
            if variable in profile.specs:
                evidence[variable] = Discretizer.transform(duration, profile.specs[variable])

        present_keys = {s.profile_key for s in job.stages.values()}
        for dyn_key, (preceding, _, _) in profile.dynamic_info.items():
            if preceding in observed:
                for variable in profile.variables:
                    if variable == preceding or variable in evidence:
                        continue
                    if variable not in present_keys and self._is_candidate_variable(profile, dyn_key, variable):
                        evidence[variable] = Discretizer.transform(0.0, profile.specs[variable])
        return evidence

    @staticmethod
    def _is_candidate_variable(profile: ApplicationProfile, dyn_key: str, variable: str) -> bool:
        """Candidate variables share the dynamic stage's key prefix (``ta_tool_*``)."""
        prefix = dyn_key.rsplit("_", 1)[0]
        return variable.startswith(f"{prefix}_tool_")

    @staticmethod
    def _evidence_signature(evidence: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(evidence.items()))

    def posterior_marginals(self, application: str, evidence: Mapping[str, int]) -> Dict[str, np.ndarray]:
        """Posterior state distributions of every profile variable.

        Computed by a single forward pass in topological order: evidence
        variables are point masses, every other variable mixes its CPD over
        the (already computed) parent marginals.  Because evidence always
        sits on *completed* (upstream) stages, this matches exact inference
        on the chain/tree structures the profiler learns while staying fast
        enough for the scheduler's critical path.
        """
        profile = self.profile_for(application)
        signature = (application, self._evidence_signature(evidence))
        cached = self._marginal_cache.get(signature)
        if cached is not None:
            return cached

        network = profile.network
        marginals: Dict[str, np.ndarray] = {}
        for variable in network.topological_order():
            card = network.cardinality(variable)
            if variable in evidence:
                point = np.zeros(card)
                point[int(evidence[variable])] = 1.0
                marginals[variable] = point
                continue
            cpd = network.get_cpd(variable)
            if not cpd.parents:
                marginals[variable] = cpd.table[:, 0].copy()
                continue
            # Mix the CPD columns over the joint parent distribution
            # (parents treated as independent, which is exact for the
            # tree-structured networks the profiler learns).
            distribution = np.zeros(card)
            parent_cards = [cpd.parent_cardinalities[p] for p in cpd.parents]
            for column_index in range(int(np.prod(parent_cards))):
                weight = 1.0
                remainder = column_index
                for parent, parent_card in zip(reversed(cpd.parents), reversed(parent_cards)):
                    state = remainder % parent_card
                    remainder //= parent_card
                    weight *= float(marginals[parent][state])
                if weight > 0:
                    distribution += weight * cpd.table[:, column_index]
            total = distribution.sum()
            marginals[variable] = distribution / total if total > 0 else np.full(card, 1.0 / card)

        self._marginal_cache[signature] = marginals
        return marginals

    # ------------------------------------------------------------------ #
    # Duration estimation
    # ------------------------------------------------------------------ #
    def expected_stage_duration(
        self, application: str, variable: str, evidence: Mapping[str, int]
    ) -> float:
        """Posterior expected duration of one stage."""
        profile = self.profile_for(application)
        if variable not in profile.specs:
            raise KeyError(f"unknown profile variable {variable!r} for {application!r}")
        marginal = self.posterior_marginals(application, evidence)[variable]
        representatives = np.asarray(profile.specs[variable].representatives, dtype=float)
        return float(np.dot(marginal, representatives))

    def estimate_remaining_duration(
        self,
        job: Job,
        target_batch_size: float = 1.0,
        calibrator=None,
        use_posterior: bool = True,
    ) -> float:
        """Estimated remaining work of a job (paper: mean of the posterior
        job-duration distribution, with Eq. 2 calibration of the LLM share).

        ``use_posterior=False`` gives the "LLMSched w/o BN" ablation: the
        historical mean duration of every unfinished stage is used instead of
        the Bayesian posterior.
        """
        profile = self.profile_for(job.application)
        evidence = self.evidence_for(job)
        marginals = self.posterior_marginals(job.application, evidence) if use_posterior else None

        remaining_regular = 0.0
        remaining_llm = 0.0
        for variable in profile.variables:
            if variable in evidence and self._variable_is_resolved(job, variable):
                continue
            if use_posterior:
                representatives = np.asarray(profile.specs[variable].representatives, dtype=float)
                expected = float(np.dot(marginals[variable], representatives))
            else:
                expected = profile.mean_durations[variable]
            if variable in profile.llm_variables:
                remaining_llm += expected
            else:
                remaining_regular += expected

        if calibrator is not None:
            remaining_llm = calibrator.calibrate(remaining_llm, target_batch_size)
        return remaining_regular + remaining_llm

    def _variable_is_resolved(self, job: Job, variable: str) -> bool:
        """True when the variable's duration is fully known for this job."""
        for stage in job.stages.values():
            if stage.profile_key == variable:
                return stage.is_complete
        # Variable has no stage in this job (unselected candidate): resolved.
        return True

    def estimate_remaining_interval(
        self, job: Job, use_posterior: bool = True
    ) -> Tuple[float, float]:
        """(lower, upper) bound of the remaining-duration distribution.

        Used by Algorithm 1 to group jobs into non-overlapping sets.  The
        bounds are mean ± one standard deviation of the posterior remaining
        duration (per-stage variances summed, i.e. stages treated as
        conditionally independent given the evidence); without the posterior
        the per-stage historical spread is used instead.
        """
        profile = self.profile_for(job.application)
        evidence = self.evidence_for(job)
        marginals = self.posterior_marginals(job.application, evidence) if use_posterior else None
        mean_total = 0.0
        variance_total = 0.0
        for variable in profile.variables:
            if variable in evidence and self._variable_is_resolved(job, variable):
                continue
            representatives = np.asarray(profile.specs[variable].representatives, dtype=float)
            if use_posterior:
                distribution = np.asarray(marginals[variable], dtype=float)
            else:
                distribution = np.full(representatives.size, 1.0 / representatives.size)
            mean = float(np.dot(distribution, representatives))
            second_moment = float(np.dot(distribution, representatives**2))
            mean_total += mean
            variance_total += max(0.0, second_moment - mean**2)
        spread = math.sqrt(variance_total)
        return max(0.0, mean_total - spread), mean_total + spread

    # ------------------------------------------------------------------ #
    # Uncertainty-reducing stages
    # ------------------------------------------------------------------ #
    def correlated_variables(self, application: str, variable: str) -> Set[str]:
        """Variables connected to ``variable`` by a directed path (Eq. 1)."""
        profile = self.profile_for(application)
        if variable not in profile.specs:
            return set()
        return profile.network.correlated_nodes(variable)

    def is_uncertainty_reducing(self, application: str, variable: str) -> bool:
        """A stage is uncertainty-reducing when correlated with >= 1 stage."""
        if not self.has_profile(application):
            return False
        profile = self.profile_for(application)
        if variable in profile.dynamic_info:
            return True
        if any(variable == preceding for preceding, _, _ in profile.dynamic_info.values()):
            return True
        return bool(self.correlated_variables(application, variable))

    def uncertainty_reduction(self, job: Job, stage_profile_key: str) -> float:
        """R(X) of scheduling the given stage of the given job (Eq. 6).

        Conditional mutual information between the stage and its correlated
        unscheduled stages (given the evidence of completed stages), scaled
        by the duration-range sum of those stages; for LLM stages that
        precede an unresolved dynamic stage, the dynamic stage's node+edge
        entropy times its duration range is added.
        """
        profile = self.profile_for(job.application)
        evidence = self.evidence_for(job)
        signature = (job.application, stage_profile_key, self._evidence_signature(evidence))
        cached = self._reduction_cache.get(signature)
        if cached is not None:
            return cached

        reduction = 0.0
        if stage_profile_key in profile.specs and stage_profile_key not in evidence:
            correlated = self.correlated_variables(job.application, stage_profile_key)
            targets = [
                v for v in profile.variables
                if v in correlated and v not in evidence and v != stage_profile_key
            ]
            if targets:
                # Keep the largest-range targets to bound inference cost.
                targets.sort(key=lambda v: profile.variable_range(v), reverse=True)
                targets = targets[: self.max_correlated_targets]
                mi = conditional_mutual_information(
                    profile.network, targets, stage_profile_key, evidence
                )
                range_sum = sum(profile.variable_range(v) for v in targets)
                reduction += mi * range_sum

        # Dynamic-stage bonus for the preceding LLM (planner) stage.
        for preceding, entropy, duration_range in profile.dynamic_info.values():
            if stage_profile_key == preceding and preceding not in evidence:
                reduction += entropy * duration_range

        self._reduction_cache[signature] = reduction
        return reduction
