"""Batching-aware duration calibration (paper Eq. 2).

LLM task durations are profiled at some reference batch size but executed at
whatever batch size the cluster happens to be running; the calibrator
rescales estimates by the ratio of the profiled per-token decoding
latencies:  ``d_t = d_r * l(b_t) / l(b_r)``.
"""

from __future__ import annotations

from typing import Optional

from repro.schedulers.base import SchedulingContext
from repro.simulator.latency import DecodingLatencyProfile

__all__ = ["BatchingAwareCalibrator"]


class BatchingAwareCalibrator:
    """Rescales LLM duration estimates to the cluster's current batch size.

    Parameters
    ----------
    latency_profile:
        The measured batch-size → decoding-latency profile.  Defaults to the
        same profile the simulator uses, which corresponds to the paper's
        setup where the profiling pass and the simulator share measurements.
    profiled_batch_size:
        The batch size at which the historical durations were recorded
        (the paper profiles applications with batch size 1).
    """

    def __init__(
        self,
        latency_profile: Optional[DecodingLatencyProfile] = None,
        profiled_batch_size: int = 1,
    ) -> None:
        if profiled_batch_size < 1:
            raise ValueError("profiled_batch_size must be >= 1")
        self.latency_profile = latency_profile or DecodingLatencyProfile()
        self.profiled_batch_size = int(profiled_batch_size)

    # ------------------------------------------------------------------ #
    def calibrate(self, duration: float, target_batch_size: float) -> float:
        """Rescale ``duration`` from the profiled batch size to the target one."""
        if duration < 0:
            raise ValueError("duration must be >= 0")
        target = max(1, int(round(target_batch_size)))
        return self.latency_profile.calibrate(duration, self.profiled_batch_size, target)

    def calibrate_for_context(self, duration: float, context: SchedulingContext) -> float:
        """Calibrate against the average batch size currently running."""
        return self.calibrate(duration, context.average_llm_batch_size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchingAwareCalibrator(profiled_batch_size={self.profiled_batch_size})"
        )
