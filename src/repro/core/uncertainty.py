"""Entropy-based uncertainty quantification (paper Section IV-C).

The paper characterises each stage type with a random variable and uses its
Shannon entropy as the stage's uncertainty:

* a **regular stage** is a Bernoulli variable over whether it executes
  (its duration is assumed stable),
* an **LLM stage** is a categorical variable over k duration intervals plus
  a "not executed" state,
* a **dynamic stage** is the sum of the selection entropies of its candidate
  stages and candidate edges (Eq. 4, provided by
  :func:`repro.dag.dynamic.dynamic_stage_entropy`).

The uncertainty *reduction* of scheduling a stage (Eq. 5-6) additionally
needs the learned Bayesian network, so it lives on
:class:`repro.core.profiler.BayesianProfiler`; the
:class:`UncertaintyQuantifier` here is a thin façade combining both views
for users of the public API.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayes.information import binary_entropy, entropy_of_distribution
from repro.core.profiler import BayesianProfiler
from repro.dag.dynamic import dynamic_stage_entropy
from repro.dag.job import Job
from repro.dag.stage import Stage, StageType

__all__ = ["regular_stage_entropy", "llm_stage_entropy", "UncertaintyQuantifier"]


def regular_stage_entropy(execution_probability: float) -> float:
    """Uncertainty of a regular stage: entropy of its execution indicator."""
    return binary_entropy(execution_probability)


def llm_stage_entropy(interval_probabilities: Sequence[float]) -> float:
    """Uncertainty of an LLM stage.

    ``interval_probabilities`` is the distribution over the k duration
    intervals plus the non-execution (duration 0) state, i.e. k+1 values.
    """
    return entropy_of_distribution(interval_probabilities)


class UncertaintyQuantifier:
    """Per-stage uncertainty and uncertainty-reduction queries.

    Wraps a fitted :class:`BayesianProfiler` so callers can ask for the
    entropy of a stage's duration belief and for the paper's R(X) score
    without touching the profiler internals.
    """

    def __init__(self, profiler: BayesianProfiler) -> None:
        self._profiler = profiler

    # ------------------------------------------------------------------ #
    def stage_entropy(self, job: Job, stage: Stage) -> float:
        """Current uncertainty (bits) of one stage of a job."""
        if stage.stage_type is StageType.DYNAMIC:
            profile = self._profiler.profile_for(job.application)
            info = profile.dynamic_info.get(stage.profile_key)
            if info is None:
                return 0.0
            _, entropy, _ = info
            return entropy
        profile = self._profiler.profile_for(job.application)
        if stage.profile_key not in profile.specs:
            return 0.0
        evidence = self._profiler.evidence_for(job)
        if stage.profile_key in evidence:
            return 0.0
        marginal = self._profiler.posterior_marginals(job.application, evidence)[stage.profile_key]
        return entropy_of_distribution(marginal)

    def uncertainty_reduction(self, job: Job, stage: Stage) -> float:
        """R(X) — Eq. 6 — of scheduling ``stage`` now."""
        return self._profiler.uncertainty_reduction(job, stage.profile_key)

    def is_uncertainty_reducing(self, job: Job, stage: Stage) -> bool:
        return self._profiler.is_uncertainty_reducing(job.application, stage.profile_key)
