"""LLMSched — the paper's primary contribution.

* :mod:`~repro.core.profiler` — the Bayesian-network profiler: learns
  per-application stage-duration networks from offline traces, updates
  posterior duration estimates from completed-stage evidence, and exposes
  the correlated-stage queries needed to identify uncertainty-reducing
  stages.
* :mod:`~repro.core.calibration` — batching-aware duration calibration
  (paper Eq. 2).
* :mod:`~repro.core.uncertainty` — the entropy-based uncertainty
  quantification of stages and the uncertainty-reduction score R(X)
  (paper Eq. 3-6).
* :mod:`~repro.core.llmsched` — the uncertainty-aware scheduler
  (paper Algorithm 1).
"""

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.profiler import ApplicationProfile, BayesianProfiler
from repro.core.uncertainty import (
    llm_stage_entropy,
    regular_stage_entropy,
    UncertaintyQuantifier,
)
from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler

__all__ = [
    "BatchingAwareCalibrator",
    "ApplicationProfile",
    "BayesianProfiler",
    "regular_stage_entropy",
    "llm_stage_entropy",
    "UncertaintyQuantifier",
    "LLMSchedConfig",
    "LLMSchedScheduler",
]
