"""Fig. 1 — workload characterisation of compound LLM applications.

(a) job-duration distribution of sequence sorting,
(b) chain-length distribution of code generation,
(c) generated-stage-count distribution of task automation.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

import numpy as np

from repro.experiments.report import format_series
from repro.utils.rng import make_rng
from repro.utils.stats import histogram_probabilities
from repro.workloads import (
    CodeGenerationApplication,
    SequenceSortingApplication,
    TaskAutomationApplication,
)

__all__ = ["run", "main"]


def run(n_jobs: int = 500, seed: int = 0) -> Dict[str, Dict]:
    """Generate the three distributions of the paper's Fig. 1.

    Returns a dict with one entry per subplot: the raw samples plus the
    histogram series that the paper plots.
    """
    if n_jobs < 10:
        raise ValueError("n_jobs must be >= 10")
    rng = make_rng(seed)

    # (a) Sequence-sorting job durations.
    sorting = SequenceSortingApplication()
    durations: List[float] = [
        sorting.sample_job(f"fig1a-{i}", 0.0, rng).true_total_work for i in range(n_jobs)
    ]
    duration_edges = list(np.linspace(0.0, max(300.0, max(durations)), 13))
    duration_hist = histogram_probabilities(durations, duration_edges)

    # (b) Code-generation chain lengths (number of executed stages).
    codegen = CodeGenerationApplication()
    chain_lengths: List[int] = []
    for i in range(n_jobs):
        job = codegen.sample_job(f"fig1b-{i}", 0.0, rng)
        chain_lengths.append(sum(1 for s in job.stages.values() if s.will_execute))
    length_values = sorted(set(chain_lengths))
    length_hist = {
        value: chain_lengths.count(value) / len(chain_lengths) for value in length_values
    }

    # (c) Task-automation generated-stage counts.
    automation = TaskAutomationApplication()
    generated: List[int] = []
    for i in range(n_jobs):
        job = automation.sample_job(f"fig1c-{i}", 0.0, rng)
        generated.append(sum(1 for s in job.stages.values() if s.stage_id.startswith("tool_")))
    generated_values = sorted(set(generated))
    generated_hist = {
        value: generated.count(value) / len(generated) for value in generated_values
    }

    return {
        "fig1a_job_duration": {
            "samples": durations,
            "bin_edges": duration_edges,
            "probability": duration_hist,
            "min": float(min(durations)),
            "max": float(max(durations)),
        },
        "fig1b_chain_length": {
            "samples": chain_lengths,
            "probability": length_hist,
            "min": min(chain_lengths),
            "max": max(chain_lengths),
        },
        "fig1c_generated_stages": {
            "samples": generated,
            "probability": generated_hist,
            "min": min(generated),
            "max": max(generated),
        },
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-jobs", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run(n_jobs=args.n_jobs, seed=args.seed)

    fig1a = results["fig1a_job_duration"]
    series_a = {
        f"{fig1a['bin_edges'][i]:.0f}-{fig1a['bin_edges'][i + 1]:.0f}s": p
        for i, p in enumerate(fig1a["probability"])
    }
    print(format_series(series_a, "duration bin", "probability", title="Fig. 1a — sequence sorting job duration"))
    print(f"  range: {fig1a['min']:.1f}s .. {fig1a['max']:.1f}s\n")
    print(
        format_series(
            results["fig1b_chain_length"]["probability"],
            "chain length",
            "probability",
            title="Fig. 1b — code generation chain length",
        )
    )
    print()
    print(
        format_series(
            results["fig1c_generated_stages"]["probability"],
            "generated stages",
            "probability",
            title="Fig. 1c — task automation generated stages",
        )
    )


if __name__ == "__main__":
    main()
