"""Fig. 10 — ablation study: LLMSched w/o BN and w/o uncertainty.

``LLMSched w/o BN`` keeps Algorithm 1 but estimates durations from the
historical per-stage means instead of the Bayesian posterior;
``LLMSched w/o uncertainty`` keeps the Bayesian estimates but disables the
exploration list (pure SRTF).  Results are normalised to full LLMSched on
the same workload, exactly as the paper plots them.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.api import (
    ExperimentSettings,
    ScenarioSpec,
    WorkloadSection,
    build_priors,
    build_profiler,
    compare,
)
from repro.experiments.report import format_table
from repro.workloads.mixtures import WorkloadType, default_applications

__all__ = ["run", "main", "ABLATION_SCHEDULERS"]

ABLATION_SCHEDULERS = ["llmsched", "llmsched_wo_bn", "llmsched_wo_uncertainty"]


def run(
    num_jobs: int = 300,
    arrival_rate: float = 0.9,
    workload_types: Sequence[WorkloadType] = tuple(WorkloadType),
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
    include_calibration_ablation: bool = False,
) -> List[Dict[str, object]]:
    """One row per workload with the normalised JCT of the ablations.

    ``include_calibration_ablation`` additionally runs LLMSched without the
    batching-aware duration calibration (Eq. 2) — an extension ablation not
    present in the paper but listed in DESIGN.md.
    """
    settings = settings or ExperimentSettings()
    applications = default_applications()
    priors = build_priors(applications, settings)
    profiler = build_profiler(applications, settings)
    scheduler_names = list(ABLATION_SCHEDULERS)
    if include_calibration_ablation:
        scheduler_names.append("llmsched_wo_calibration")

    rows: List[Dict[str, object]] = []
    for workload_type in workload_types:
        scenario = ScenarioSpec(
            workload=WorkloadSection.closed_loop(
                workload_type.value, num_jobs=num_jobs, arrival_rate=arrival_rate, seed=seed
            ),
            settings=settings,
        )
        comparison = compare(
            scenario,
            scheduler_names,
            applications=applications,
            priors=priors,
            profiler=profiler,
        )
        normalized = comparison.normalized_to("llmsched")
        row: Dict[str, object] = {
            "workload": workload_type.value,
            "llmsched_avg_jct": comparison.metrics["llmsched"].average_jct,
            "wo_bn_norm": normalized["llmsched_wo_bn"],
            "wo_uncertainty_norm": normalized["llmsched_wo_uncertainty"],
        }
        if include_calibration_ablation:
            row["wo_calibration_norm"] = normalized["llmsched_wo_calibration"]
        rows.append(row)
    return rows


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, default=300)
    parser.add_argument("--arrival-rate", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--with-calibration-ablation", action="store_true")
    args = parser.parse_args(argv)
    rows = run(
        num_jobs=args.num_jobs,
        arrival_rate=args.arrival_rate,
        seed=args.seed,
        include_calibration_ablation=args.with_calibration_ablation,
    )
    print(
        format_table(
            rows,
            float_format="{:.3f}",
            title="Fig. 10 — ablation (normalised average JCT, 1.0 = full LLMSched)",
        )
    )


if __name__ == "__main__":
    main()
