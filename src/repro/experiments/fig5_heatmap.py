"""Fig. 5 — inter-stage duration correlation heatmaps.

(a) sequence sorting (predefined), (b) code generation (chain-like).
The paper plots Pearson coefficients between the durations of every stage
pair; strong off-diagonal entries are what the Bayesian profiler exploits.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.experiments.report import format_table
from repro.utils.rng import make_rng
from repro.utils.stats import pearson_correlation_matrix
from repro.workloads import CodeGenerationApplication, SequenceSortingApplication

__all__ = ["run", "main"]


def _stage_duration_columns(app, n_jobs: int, rng) -> Dict[str, List[float]]:
    """Per-stage duration traces over ``n_jobs`` sampled jobs (0 = skipped)."""
    columns: Dict[str, List[float]] = {key: [] for key in app.profile_variables()}
    for i in range(n_jobs):
        job = app.sample_job(f"fig5-{app.name}-{i}", 0.0, rng)
        durations = {s.profile_key: s.duration for s in job.stages.values() if not s.is_dynamic}
        for key in columns:
            columns[key].append(durations.get(key, 0.0))
    return columns


def run(n_jobs: int = 400, seed: int = 0) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Correlation matrices for the two applications of the paper's Fig. 5."""
    if n_jobs < 10:
        raise ValueError("n_jobs must be >= 10")
    rng = make_rng(seed)
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in (SequenceSortingApplication(), CodeGenerationApplication()):
        columns = _stage_duration_columns(app, n_jobs, rng)
        result[app.name] = pearson_correlation_matrix(columns)
    return result


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-jobs", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    matrices = run(n_jobs=args.n_jobs, seed=args.seed)
    for app_name, matrix in matrices.items():
        names = list(matrix)
        rows = []
        for row_name in names:
            row = {"stage": row_name}
            row.update({col: matrix[row_name][col] for col in names})
            rows.append(row)
        print(format_table(rows, columns=["stage"] + names, title=f"Fig. 5 — {app_name} duration correlations"))
        print()


if __name__ == "__main__":
    main()
