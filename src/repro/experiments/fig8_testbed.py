"""Fig. 8 — "testbed" comparison at 300 jobs, λ = 0.9, four workloads.

The paper's testbed is a single H800 GPU serving Llama-2-7B with vLLM; its
role in the evaluation is to validate that the simulator's comparison is
consistent with real execution and to measure real scheduling overheads
(Table I).  Without a GPU this reproduction runs the same experiment in
"testbed mode": an independently re-seeded workload draw on the same sized
cluster, with wall-clock timing of every scheduler invocation — which is
what Table I consumes.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.api import (
    PAPER_BASELINES,
    ExperimentSettings,
    ScenarioSpec,
    WorkloadSection,
    build_priors,
    build_profiler,
    compare,
)
from repro.experiments.report import format_table
from repro.workloads.mixtures import WorkloadType, default_applications

__all__ = ["run", "main", "TESTBED_SEED"]

#: The testbed uses a different workload draw than the simulation runs.
TESTBED_SEED = 1234


def run(
    num_jobs: int = 300,
    arrival_rate: float = 0.9,
    workload_types: Sequence[WorkloadType] = tuple(WorkloadType),
    scheduler_names: Sequence[str] = tuple(PAPER_BASELINES + ["llmsched"]),
    seed: int = TESTBED_SEED,
    settings: Optional[ExperimentSettings] = None,
) -> List[Dict[str, object]]:
    """One row per (workload, scheduler) with average JCT and overhead."""
    settings = settings or ExperimentSettings()
    applications = default_applications()
    priors = build_priors(applications, settings)
    profiler = build_profiler(applications, settings)

    rows: List[Dict[str, object]] = []
    for workload_type in workload_types:
        scenario = ScenarioSpec(
            workload=WorkloadSection.closed_loop(
                workload_type.value, num_jobs=num_jobs, arrival_rate=arrival_rate, seed=seed
            ),
            settings=settings,
        )
        comparison = compare(
            scenario,
            scheduler_names,
            applications=applications,
            priors=priors,
            profiler=profiler,
        )
        for name in scheduler_names:
            metrics = comparison.metrics[name]
            rows.append(
                {
                    "workload": workload_type.value,
                    "scheduler": name,
                    "average_jct": metrics.average_jct,
                    "avg_overhead_ms": metrics.average_scheduling_overhead_ms,
                    "scheduler_invocations": metrics.num_scheduler_invocations,
                }
            )
    return rows


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, default=300)
    parser.add_argument("--arrival-rate", type=float, default=0.9)
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=[w.value for w in WorkloadType],
        choices=[w.value for w in WorkloadType],
    )
    parser.add_argument("--schedulers", nargs="+", default=PAPER_BASELINES + ["llmsched"])
    parser.add_argument("--seed", type=int, default=TESTBED_SEED)
    args = parser.parse_args(argv)
    rows = run(
        num_jobs=args.num_jobs,
        arrival_rate=args.arrival_rate,
        workload_types=[WorkloadType(w) for w in args.workloads],
        scheduler_names=args.schedulers,
        seed=args.seed,
    )
    print(format_table(rows, title="Fig. 8 — testbed-mode average JCT (300 jobs, lambda=0.9)"))


if __name__ == "__main__":
    main()
