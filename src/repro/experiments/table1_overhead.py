"""Table I — average scheduling overhead (milliseconds per invocation).

Measured as real wall-clock time spent inside each scheduler's
``schedule()`` call during the Fig. 8 testbed-mode runs; LLMSched's number
includes Bayesian inference and entropy calculation, mirroring the paper.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.experiments import fig8_testbed
from repro.experiments.report import format_table
from repro.experiments.runner import PAPER_BASELINES, ExperimentSettings
from repro.workloads.mixtures import WorkloadType

__all__ = ["run", "main"]


def run(
    num_jobs: int = 300,
    arrival_rate: float = 0.9,
    workload_types: Sequence[WorkloadType] = tuple(WorkloadType),
    scheduler_names: Sequence[str] = tuple(PAPER_BASELINES + ["llmsched"]),
    seed: int = fig8_testbed.TESTBED_SEED,
    settings: Optional[ExperimentSettings] = None,
) -> List[Dict[str, object]]:
    """One row per scheduler with the per-workload overhead in ms (Table I)."""
    raw = fig8_testbed.run(
        num_jobs=num_jobs,
        arrival_rate=arrival_rate,
        workload_types=workload_types,
        scheduler_names=scheduler_names,
        seed=seed,
        settings=settings,
    )
    by_scheduler: Dict[str, Dict[str, object]] = {}
    for row in raw:
        entry = by_scheduler.setdefault(row["scheduler"], {"scheduler": row["scheduler"]})
        entry[str(row["workload"])] = row["avg_overhead_ms"]
    return list(by_scheduler.values())


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, default=300)
    parser.add_argument("--schedulers", nargs="+", default=PAPER_BASELINES + ["llmsched"])
    args = parser.parse_args(argv)
    rows = run(num_jobs=args.num_jobs, scheduler_names=args.schedulers)
    columns = ["scheduler"] + [w.value for w in WorkloadType]
    print(
        format_table(
            rows,
            columns=columns,
            float_format="{:.2f}",
            title="Table I — average scheduling overhead per invocation (ms)",
        )
    )


if __name__ == "__main__":
    main()
