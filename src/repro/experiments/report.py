"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "print_table"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Mapping[object, float],
    key_name: str = "x",
    value_name: str = "y",
    float_format: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render an (x -> y) mapping as a two-column table (figure data series)."""
    rows = [{key_name: k, value_name: v} for k, v in series.items()]
    return format_table(rows, columns=[key_name, value_name], float_format=float_format, title=title)


def print_table(rows: Sequence[Mapping[str, object]], **kwargs) -> None:
    print(format_table(rows, **kwargs))
