"""Fig. 7 — simulation: average JCT vs number of jobs for every scheduler.

Four workload types (Mixed / Predefined / Chain-like / Planning), arrival
rate λ = 0.9, job counts 100-400, seven schedulers (six baselines plus
LLMSched).
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.api import (
    PAPER_BASELINES,
    ExperimentSettings,
    ScenarioSpec,
    WorkloadSection,
    build_priors,
    build_profiler,
    compare,
)
from repro.experiments.report import format_table
from repro.workloads.mixtures import WorkloadType, default_applications

__all__ = ["run", "main", "DEFAULT_SCHEDULERS"]

DEFAULT_SCHEDULERS = PAPER_BASELINES + ["llmsched"]


def run(
    num_jobs_values: Sequence[int] = (100, 200, 300, 400),
    workload_types: Sequence[WorkloadType] = tuple(WorkloadType),
    scheduler_names: Sequence[str] = tuple(DEFAULT_SCHEDULERS),
    arrival_rate: float = 0.9,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
) -> List[Dict[str, object]]:
    """One row per (workload, num_jobs, scheduler) with the average JCT."""
    settings = settings or ExperimentSettings()
    applications = default_applications()
    priors = build_priors(applications, settings)
    profiler = build_profiler(applications, settings)

    rows: List[Dict[str, object]] = []
    for workload_type in workload_types:
        for num_jobs in num_jobs_values:
            scenario = ScenarioSpec(
                workload=WorkloadSection.closed_loop(
                    workload_type.value,
                    num_jobs=int(num_jobs),
                    arrival_rate=arrival_rate,
                    seed=seed,
                ),
                settings=settings,
            )
            comparison = compare(
                scenario,
                scheduler_names,
                applications=applications,
                priors=priors,
                profiler=profiler,
            )
            for name in scheduler_names:
                metrics = comparison.metrics[name]
                rows.append(
                    {
                        "workload": workload_type.value,
                        "num_jobs": int(num_jobs),
                        "scheduler": name,
                        "average_jct": metrics.average_jct,
                        "p95_jct": metrics.jct_summary()["p95"],
                        "llm_utilization": metrics.utilization.get("llm", 0.0),
                    }
                )
    return rows


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, nargs="+", default=[100, 200, 300, 400])
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=[w.value for w in WorkloadType],
        choices=[w.value for w in WorkloadType],
    )
    parser.add_argument("--schedulers", nargs="+", default=DEFAULT_SCHEDULERS)
    parser.add_argument("--arrival-rate", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rows = run(
        num_jobs_values=args.num_jobs,
        workload_types=[WorkloadType(w) for w in args.workloads],
        scheduler_names=args.schedulers,
        arrival_rate=args.arrival_rate,
        seed=args.seed,
    )
    print(format_table(rows, title="Fig. 7 — average JCT by scheduler, workload and job count"))


if __name__ == "__main__":
    main()
