"""Fig. 9 — sensitivity of LLMSched to ε, r, and the arrival rate λ.

(a) normalised average JCT vs exploration probability ε,
(b) normalised average JCT vs task sampling ratio r,
(c) normalised average JCT vs arrival rate λ for the four workload types.

Normalisation follows the paper: every series is divided by the average JCT
of LLMSched at its default configuration on the same workload.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Sequence

from repro.api import (
    ClusterSection,
    ExperimentSettings,
    ScenarioSpec,
    SchedulerSection,
    WorkloadSection,
    build_priors,
    build_profiler,
    run as run_scenario,
    size_cluster_for_workload,
)
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications
from repro.experiments.report import format_series

__all__ = ["run_epsilon_sweep", "run_sampling_sweep", "run_arrival_sweep", "run", "main"]


def _prepared(settings: ExperimentSettings):
    applications = default_applications()
    priors = build_priors(applications, settings)
    profiler = build_profiler(applications, settings)
    return applications, priors, profiler


def run_epsilon_sweep(
    epsilons: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    workload_type: WorkloadType = WorkloadType.MIXED,
    num_jobs: int = 300,
    arrival_rate: float = 0.9,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
) -> Dict[float, float]:
    """Normalised average JCT for each exploration probability (Fig. 9a)."""
    settings = settings or ExperimentSettings()
    applications, priors, profiler = _prepared(settings)
    spec = WorkloadSpec(workload_type=workload_type, num_jobs=num_jobs, arrival_rate=arrival_rate, seed=seed)
    scenario = ScenarioSpec(
        workload=WorkloadSection.from_workload_spec(spec),
        cluster=ClusterSection(config=size_cluster_for_workload(spec, applications, settings)),
        settings=settings,
    )
    jcts: Dict[float, float] = {}
    for epsilon in epsilons:
        result = run_scenario(
            scenario.with_scheduler("llmsched", epsilon=float(epsilon)),
            applications=applications, priors=priors, profiler=profiler,
        )
        jcts[float(epsilon)] = result.average_jct
    reference = jcts.get(settings.llmsched.epsilon) or min(jcts.values())
    return {eps: jct / reference for eps, jct in jcts.items()}


def run_sampling_sweep(
    ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.7, 1.0),
    workload_type: WorkloadType = WorkloadType.MIXED,
    num_jobs: int = 300,
    arrival_rate: float = 0.9,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
) -> Dict[float, float]:
    """Normalised average JCT for each task sampling ratio (Fig. 9b)."""
    settings = settings or ExperimentSettings()
    applications, priors, profiler = _prepared(settings)
    spec = WorkloadSpec(workload_type=workload_type, num_jobs=num_jobs, arrival_rate=arrival_rate, seed=seed)
    scenario = ScenarioSpec(
        workload=WorkloadSection.from_workload_spec(spec),
        cluster=ClusterSection(config=size_cluster_for_workload(spec, applications, settings)),
        settings=settings,
    )
    jcts: Dict[float, float] = {}
    for ratio in ratios:
        result = run_scenario(
            scenario.with_scheduler("llmsched", sampling_ratio=float(ratio)),
            applications=applications, priors=priors, profiler=profiler,
        )
        jcts[float(ratio)] = result.average_jct
    reference = jcts.get(settings.llmsched.sampling_ratio) or min(jcts.values())
    return {ratio: jct / reference for ratio, jct in jcts.items()}


def run_arrival_sweep(
    arrival_rates: Sequence[float] = (0.6, 0.9, 1.2),
    workload_types: Sequence[WorkloadType] = tuple(WorkloadType),
    num_jobs: int = 300,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
) -> Dict[str, Dict[float, float]]:
    """Normalised average JCT per workload as the arrival rate varies (Fig. 9c).

    The cluster is sized once for the paper's default λ = 0.9 and kept fixed,
    so lower / higher rates correspond to lightly / heavily loaded clusters.
    """
    settings = settings or ExperimentSettings()
    applications, priors, profiler = _prepared(settings)
    result: Dict[str, Dict[float, float]] = {}
    for workload_type in workload_types:
        sizing_spec = WorkloadSpec(workload_type=workload_type, num_jobs=num_jobs, arrival_rate=0.9, seed=seed)
        cluster = size_cluster_for_workload(sizing_spec, applications, settings)
        jcts: Dict[float, float] = {}
        for rate in arrival_rates:
            scenario = ScenarioSpec(
                scheduler=SchedulerSection("llmsched"),
                workload=WorkloadSection.closed_loop(
                    workload_type.value, num_jobs=num_jobs, arrival_rate=float(rate), seed=seed
                ),
                cluster=ClusterSection(config=cluster),
                settings=settings,
            )
            cell = run_scenario(
                scenario, applications=applications, priors=priors, profiler=profiler
            )
            jcts[float(rate)] = cell.average_jct
        reference = jcts.get(0.9) or min(jcts.values())
        result[workload_type.value] = {rate: jct / reference for rate, jct in jcts.items()}
    return result


def run(
    num_jobs: int = 300,
    seed: int = 0,
    settings: Optional[ExperimentSettings] = None,
) -> Dict[str, object]:
    """All three sensitivity sweeps of Fig. 9."""
    return {
        "fig9a_epsilon": run_epsilon_sweep(num_jobs=num_jobs, seed=seed, settings=settings),
        "fig9b_sampling_ratio": run_sampling_sweep(num_jobs=num_jobs, seed=seed, settings=settings),
        "fig9c_arrival_rate": run_arrival_sweep(num_jobs=num_jobs, seed=seed, settings=settings),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run(num_jobs=args.num_jobs, seed=args.seed)
    print(format_series(results["fig9a_epsilon"], "epsilon", "norm. avg JCT", title="Fig. 9a — exploration probability"))
    print()
    print(format_series(results["fig9b_sampling_ratio"], "sampling ratio", "norm. avg JCT", title="Fig. 9b — task sampling ratio"))
    print()
    for workload, series in results["fig9c_arrival_rate"].items():
        print(format_series(series, "lambda", "norm. avg JCT", title=f"Fig. 9c — arrival rate ({workload})"))
        print()


if __name__ == "__main__":
    main()
