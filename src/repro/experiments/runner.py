"""Legacy experiment entry points — deprecation shims over :mod:`repro.api`.

.. deprecated::
    Every ``run_*`` / ``sweep_*`` function below constructs a declarative
    :class:`repro.api.ScenarioSpec` and delegates to :func:`repro.api.run`
    / :func:`repro.api.run_grid`; they are kept so existing scripts and
    notebooks keep working — bit-for-bit on every simulated trace, with
    one documented exception: 1-shard "federations"
    (``run_federated``/``sweep_shard_counts`` with ``num_shards=1``) now
    run the plain single-cluster engine and return
    :class:`~repro.simulator.metrics.SimulationMetrics`.  New code should
    build specs directly (see the "Declarative API & CLI" section of the
    README for a migration table).  Offline preparation (:class:`ExperimentSettings`,
    ``build_priors`` / ``build_profiler``, cluster sizing) lives in
    :mod:`repro.api.prep` and is re-exported here unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.dispatch import compare as _api_compare
from repro.api.dispatch import run as _api_run
from repro.api.grid import run_grid as _api_run_grid
from repro.api.grid import run_specs as _api_run_specs
from repro.api.prep import (
    PAPER_BASELINES,
    ExperimentSettings,
    build_priors,
    build_profiler,
    size_cluster,
    size_cluster_for_workload,
    split_cluster_config,
)
from repro.api.results import ComparisonResult
from repro.api.spec import (
    AsyncSection,
    ClusterSection,
    PlacementSection,
    ScenarioSpec,
    SchedulerSection,
    WorkloadSection,
    with_overrides,
)
from repro.core.profiler import BayesianProfiler
from repro.dag.application import ApplicationTemplate
from repro.schedulers.priors import ApplicationPriors
from repro.simulator.async_sched import AsyncConfig
from repro.simulator.autoscaler import AutoscalerConfig
from repro.simulator.cluster import ClusterConfig
from repro.simulator.federation import FederationMetrics, JobRouter, MigrationConfig
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.placement import PlacementPolicy
from repro.simulator.pool import PoolSpec
from repro.workloads.arrivals import OpenLoopSpec
from repro.workloads.mixtures import WorkloadSpec, default_applications

__all__ = [
    "ExperimentSettings",
    "ComparisonResult",
    "SweepCell",
    "build_priors",
    "build_profiler",
    "size_cluster",
    "size_cluster_for_workload",
    "run_single",
    "run_single_open_loop",
    "run_comparison",
    "run_cells_parallel",
    "sweep_arrival_rates",
    "sweep_decision_latency",
    "sweep_placement_policies",
    "run_autoscaled_diurnal",
    "split_cluster_config",
    "run_federated",
    "FederatedSweepCell",
    "sweep_shard_counts",
    "PAPER_BASELINES",
]


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.experiments.runner.{name} is deprecated; use {replacement} "
        "(see README, 'Declarative API & CLI')",
        DeprecationWarning,
        stacklevel=3,
    )


# --------------------------------------------------------------------------- #
# Single runs
# --------------------------------------------------------------------------- #
def run_single(
    scheduler_name: str,
    spec: WorkloadSpec,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
    pools: Optional[Sequence[PoolSpec]] = None,
    placement: Optional[PlacementPolicy] = None,
    async_config: Optional[AsyncConfig] = None,
) -> SimulationMetrics:
    """Deprecated: build a :class:`~repro.api.ScenarioSpec` and call
    :func:`repro.api.run`.  Passing both ``cluster_config`` and ``pools``
    raises ``ValueError`` (the cluster section owns that conflict check)."""
    _warn_deprecated("run_single", "repro.api.run(ScenarioSpec(...))")
    scenario = ScenarioSpec(
        scheduler=SchedulerSection(name=scheduler_name),
        workload=WorkloadSection.from_workload_spec(spec),
        cluster=ClusterSection(
            config=cluster_config, pools=tuple(pools) if pools is not None else None
        ),
        async_=AsyncSection.from_async_config(async_config),
        settings=settings or ExperimentSettings(),
    )
    return _api_run(
        scenario, applications=applications, priors=priors, profiler=profiler,
        placement=placement, async_config=async_config,
    ).metrics


def run_single_open_loop(
    scheduler_name: str,
    open_spec: OpenLoopSpec,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
    nominal_rate: Optional[float] = None,
    pools: Optional[Sequence[PoolSpec]] = None,
    placement: Optional[PlacementPolicy] = None,
    autoscaler=None,
    async_config: Optional[AsyncConfig] = None,
) -> SimulationMetrics:
    """Deprecated: open-loop runs are ``ScenarioSpec`` workload sections with
    ``mode="open"``; see :func:`repro.api.run`."""
    _warn_deprecated("run_single_open_loop", "repro.api.run(ScenarioSpec(...))")
    scenario = ScenarioSpec(
        scheduler=SchedulerSection(name=scheduler_name),
        workload=WorkloadSection.from_open_loop_spec(open_spec),
        cluster=ClusterSection(
            config=cluster_config,
            pools=tuple(pools) if pools is not None else None,
            nominal_rate=nominal_rate,
        ),
        async_=AsyncSection.from_async_config(async_config),
        settings=settings or ExperimentSettings(),
    )
    return _api_run(
        scenario, applications=applications, priors=priors, profiler=profiler,
        placement=placement, autoscaler=autoscaler, async_config=async_config,
    ).metrics


def run_comparison(
    spec: WorkloadSpec,
    scheduler_names: Sequence[str],
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
) -> ComparisonResult:
    """Deprecated: see :func:`repro.api.compare`."""
    _warn_deprecated("run_comparison", "repro.api.compare")
    scenario = ScenarioSpec(
        workload=WorkloadSection.from_workload_spec(spec),
        cluster=ClusterSection(config=cluster_config),
        settings=settings or ExperimentSettings(),
    )
    return _api_compare(
        scenario, scheduler_names, applications=applications, priors=priors, profiler=profiler
    )


def run_autoscaled_diurnal(
    scheduler_name: str,
    open_spec: OpenLoopSpec,
    pools: Sequence[PoolSpec],
    autoscaler_config: Optional[AutoscalerConfig] = None,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
) -> SimulationMetrics:
    """Deprecated: autoscaled runs are specs with an ``autoscaler`` section."""
    _warn_deprecated("run_autoscaled_diurnal", "repro.api.run(ScenarioSpec(...))")
    scenario = ScenarioSpec(
        scheduler=SchedulerSection(name=scheduler_name),
        workload=WorkloadSection.from_open_loop_spec(open_spec),
        cluster=ClusterSection(pools=tuple(pools)),
        autoscaler=autoscaler_config or AutoscalerConfig(),
        settings=settings or ExperimentSettings(),
    )
    return _api_run(
        scenario, applications=applications, priors=priors, profiler=profiler
    ).metrics


def run_federated(
    scheduler_name: str,
    open_spec: OpenLoopSpec,
    num_shards: int = 2,
    router: Union[str, JobRouter] = "least_loaded",
    migration: Optional[MigrationConfig] = None,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
    nominal_rate: Optional[float] = None,
    async_config: Optional[AsyncConfig] = None,
) -> Union[SimulationMetrics, FederationMetrics]:
    """Deprecated: federated fleets are cluster sections with
    ``num_shards > 1``; router instances pass through :func:`repro.api.run`'s
    ``router`` override.

    Behavior change vs the pre-spec implementation: ``num_shards=1`` now
    runs the plain single-cluster engine (bit-identical trace, but
    :class:`SimulationMetrics` instead of federation metrics, and
    ``migration``/``router`` do not apply)."""
    _warn_deprecated("run_federated", "repro.api.run(ScenarioSpec(...))")
    by_name = isinstance(router, str)
    scenario = ScenarioSpec(
        scheduler=SchedulerSection(name=scheduler_name),
        workload=WorkloadSection.from_open_loop_spec(open_spec),
        cluster=ClusterSection(
            config=cluster_config, num_shards=num_shards,
            router=router if by_name else "least_loaded",
            migration=migration, nominal_rate=nominal_rate,
        ),
        async_=AsyncSection.from_async_config(async_config),
        settings=settings or ExperimentSettings(),
    )
    return _api_run(
        scenario, applications=applications, priors=priors, profiler=profiler,
        router=None if by_name else router, async_config=async_config,
    ).metrics


# --------------------------------------------------------------------------- #
# Parallel sweeps
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepCell:
    """One scheduler × workload cell of a sweep grid (picklable, legacy).

    New code expresses cells as override axes over a base spec; see
    :func:`repro.api.run_grid`.
    """

    scheduler_name: str
    spec: WorkloadSpec
    cluster_config: Optional[ClusterConfig] = None
    pools: Optional[Tuple[PoolSpec, ...]] = None
    placement_policy: Optional[str] = None
    async_config: Optional[AsyncConfig] = None


@dataclass(frozen=True)
class FederatedSweepCell:
    """One shard-count cell of a federation sweep (picklable, legacy)."""

    num_shards: int
    scheduler_name: str
    open_spec: OpenLoopSpec
    cluster_config: ClusterConfig
    router_name: str = "least_loaded"
    migration: Optional[MigrationConfig] = None


def _cell_spec(cell: SweepCell, settings: ExperimentSettings) -> ScenarioSpec:
    async_ = AsyncSection.from_async_config(cell.async_config)
    if cell.async_config is not None and async_ is None:
        raise ValueError(
            "SweepCell async_config carries a latency model the spec schema cannot "
            "express; call repro.api.run directly with the async_config override"
        )
    return ScenarioSpec(
        scheduler=SchedulerSection(name=cell.scheduler_name),
        workload=WorkloadSection.from_workload_spec(cell.spec),
        cluster=ClusterSection(config=cell.cluster_config, pools=cell.pools),
        placement=(
            PlacementSection(cell.placement_policy) if cell.placement_policy else None
        ),
        async_=async_,
        settings=settings,
    )


def run_cells_parallel(
    cells: Sequence[SweepCell],
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
) -> List[Tuple[SweepCell, SimulationMetrics]]:
    """Deprecated: see :func:`repro.api.run_specs` / :func:`repro.api.run_grid`."""
    _warn_deprecated("run_cells_parallel", "repro.api.run_grid / repro.api.run_specs")
    settings = settings or ExperimentSettings()
    results = _api_run_specs(
        [_cell_spec(cell, settings) for cell in cells], processes=processes
    )
    return [(cell, result.metrics) for cell, result in zip(cells, results, strict=True)]


def sweep_arrival_rates(
    arrival_rates: Sequence[float],
    scheduler_names: Sequence[str],
    base_spec: Optional[WorkloadSpec] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
    cluster_config: Optional[ClusterConfig] = None,
) -> Dict[float, ComparisonResult]:
    """Deprecated: an arrival-rate sweep is the override axis
    ``{"workload.arrival_rate": rates, "scheduler.name": names}``."""
    _warn_deprecated("sweep_arrival_rates", 'repro.api.run_grid(..., {"workload.arrival_rate": ...})')
    base_spec = base_spec or WorkloadSpec()
    base = ScenarioSpec(
        workload=WorkloadSection.from_workload_spec(base_spec),
        cluster=ClusterSection(config=cluster_config),
        settings=settings or ExperimentSettings(),
    )
    rows = _api_run_grid(
        base,
        {"workload.arrival_rate": [float(r) for r in arrival_rates],
         "scheduler.name": list(scheduler_names)},
        processes=processes,
    )
    by_rate: Dict[float, ComparisonResult] = {}
    for overrides, result in rows:
        rate = overrides["workload.arrival_rate"]
        comparison = by_rate.setdefault(
            rate, ComparisonResult(workload=replace(base_spec, arrival_rate=rate), metrics={})
        )
        comparison.metrics[overrides["scheduler.name"]] = result.metrics
    return by_rate


def sweep_decision_latency(
    latencies: Sequence[float],
    scheduler_names: Sequence[str],
    base_spec: Optional[WorkloadSpec] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
    cluster_config: Optional[ClusterConfig] = None,
    pipelined: bool = False,
) -> Dict[float, ComparisonResult]:
    """Deprecated: a decision-latency sweep is the override axis
    ``{"async.latency": latencies, "scheduler.name": names}`` over a spec
    with a pinned cluster config."""
    _warn_deprecated("sweep_decision_latency", 'repro.api.run_grid(..., {"async.latency": ...})')
    base_spec = base_spec or WorkloadSpec()
    settings = settings or ExperimentSettings()
    if cluster_config is None:
        cluster_config = size_cluster_for_workload(base_spec, default_applications(), settings)
    base = ScenarioSpec(
        workload=WorkloadSection.from_workload_spec(base_spec),
        cluster=ClusterSection(config=cluster_config),
        async_=AsyncSection(pipelined=pipelined),
        settings=settings,
    )
    rows = _api_run_grid(
        base,
        {"async.latency": [float(latency) for latency in latencies],
         "scheduler.name": list(scheduler_names)},
        processes=processes,
    )
    by_latency: Dict[float, ComparisonResult] = {}
    for overrides, result in rows:
        latency = overrides["async.latency"]
        comparison = by_latency.setdefault(
            latency, ComparisonResult(workload=base_spec, metrics={})
        )
        comparison.metrics[overrides["scheduler.name"]] = result.metrics
    return by_latency


def sweep_placement_policies(
    policy_names: Sequence[str],
    pools: Sequence[PoolSpec],
    scheduler_name: str = "fcfs",
    base_spec: Optional[WorkloadSpec] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
) -> Dict[str, SimulationMetrics]:
    """Deprecated: a placement sweep is the axis ``{"placement.name": names}``."""
    _warn_deprecated("sweep_placement_policies", 'repro.api.run_grid(..., {"placement.name": ...})')
    base = ScenarioSpec(
        scheduler=SchedulerSection(name=scheduler_name),
        workload=WorkloadSection.from_workload_spec(base_spec or WorkloadSpec()),
        cluster=ClusterSection(pools=tuple(pools)),
        placement=PlacementSection(),
        settings=settings or ExperimentSettings(),
    )
    rows = _api_run_grid(base, {"placement.name": list(policy_names)}, processes=processes)
    return {overrides["placement.name"]: result.metrics for overrides, result in rows}


def sweep_shard_counts(
    shard_counts: Sequence[int],
    open_spec: OpenLoopSpec,
    cluster_config: ClusterConfig,
    scheduler_name: str = "fcfs",
    router: str = "least_loaded",
    migration: Optional[MigrationConfig] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
) -> Dict[int, Union[SimulationMetrics, FederationMetrics]]:
    """Deprecated: a shard sweep is the axis ``{"cluster.num_shards": counts}``.

    Shard count 1 now runs the plain single-cluster engine (bit-identical
    trace, :class:`SimulationMetrics` instead of federation metrics)."""
    _warn_deprecated("sweep_shard_counts", 'repro.api.run_grid(..., {"cluster.num_shards": ...})')
    if not shard_counts:
        raise ValueError("shard_counts must not be empty")
    base = ScenarioSpec(
        scheduler=SchedulerSection(name=scheduler_name),
        workload=WorkloadSection.from_open_loop_spec(open_spec),
        cluster=ClusterSection(
            config=cluster_config, num_shards=2, router=router, migration=migration
        ),
        settings=settings or ExperimentSettings(),
    )
    overrides = [
        dict(
            {"cluster.num_shards": int(count)},
            **({"cluster.migration": None} if int(count) == 1 else {}),
        )
        for count in shard_counts
    ]
    results = _api_run_specs(
        [with_overrides(base, cell) for cell in overrides], processes=processes
    )
    return {int(c): result.metrics for c, result in zip(shard_counts, results)}
