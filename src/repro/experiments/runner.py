"""Shared experiment plumbing: cluster sizing, profiling, comparison runs.

Besides the single-run helpers, this module provides the scale-out layer of
the experiment harness: :func:`run_cells_parallel` executes scheduler ×
workload cells in separate processes (each worker builds and caches the
profiler once), and :func:`sweep_arrival_rates` fans a comparison out over
a grid of arrival rates — the load-sensitivity axis of the paper's
evaluation.  Open-loop (streamed) workloads from
:mod:`repro.workloads.arrivals` run through :func:`run_single_open_loop`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.core.profiler import BayesianProfiler
from repro.dag.application import ApplicationTemplate
from repro.schedulers.base import Scheduler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import create_scheduler
from repro.schedulers.srtf import SrtfScheduler
from repro.simulator.async_sched import AsyncConfig, AsyncSchedulerBackend
from repro.simulator.autoscaler import AutoscalerConfig, ThresholdAutoscaler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.protocol import ensure_engine_protocol
from repro.simulator.federation import (
    FederatedCluster,
    FederatedSimulationEngine,
    FederationMetrics,
    JobRouter,
    MigrationConfig,
    create_job_router,
)
from repro.simulator.latency import DecodingLatencyProfile
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.placement import PlacementPolicy, create_placement_policy
from repro.simulator.pool import PoolSpec
from repro.utils.rng import make_rng
from repro.workloads.arrivals import OpenLoopSpec
from repro.workloads.mixtures import (
    WorkloadSpec,
    default_applications,
    generate_workload,
)

__all__ = [
    "ExperimentSettings",
    "ComparisonResult",
    "SweepCell",
    "build_priors",
    "build_profiler",
    "size_cluster",
    "size_cluster_for_workload",
    "run_single",
    "run_single_open_loop",
    "run_comparison",
    "run_cells_parallel",
    "sweep_arrival_rates",
    "sweep_decision_latency",
    "sweep_placement_policies",
    "run_autoscaled_diurnal",
    "split_cluster_config",
    "run_federated",
    "FederatedSweepCell",
    "sweep_shard_counts",
    "PAPER_BASELINES",
]

#: Baseline order used in the paper's figures (LLMSched appended last).
PAPER_BASELINES = ["fcfs", "sjf", "fair", "argus", "decima", "carbyne"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Settings shared by every experiment.

    ``target_load`` plays the role of the paper's manually-configured
    cluster load: executor pools are sized so the offered work at the
    configured arrival rate matches roughly ``target_load`` of the pool
    capacity.  The default keeps the cluster close to saturation during the
    arrival period, which reproduces the paper's regime where the average
    JCT grows with the number of jobs and scheduling order matters.
    """

    target_load: float = 1.0
    max_batch_size: int = 4
    latency_slope: float = 0.06
    profile_jobs: int = 150
    prior_samples: int = 100
    profiler_seed: int = 77
    llmsched: LLMSchedConfig = field(default_factory=LLMSchedConfig)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_load <= 2.0:
            raise ValueError("target_load must be within (0, 2]")


@dataclass
class ComparisonResult:
    """Average JCT (and full metrics) of several schedulers on one workload."""

    workload: WorkloadSpec
    metrics: Dict[str, SimulationMetrics]

    def average_jcts(self) -> Dict[str, float]:
        return {name: m.average_jct for name, m in self.metrics.items()}

    def normalized_to(self, reference: str) -> Dict[str, float]:
        base = self.metrics[reference].average_jct
        if base <= 0:
            raise ValueError(f"reference scheduler {reference!r} has non-positive JCT")
        return {name: m.average_jct / base for name, m in self.metrics.items()}

    def improvement_over(self, baseline: str, target: str = "llmsched") -> float:
        """Relative JCT reduction of ``target`` vs ``baseline`` (paper's headline %)."""
        base = self.metrics[baseline].average_jct
        ours = self.metrics[target].average_jct
        if base <= 0:
            return 0.0
        return 1.0 - ours / base


# --------------------------------------------------------------------------- #
# Offline preparation
# --------------------------------------------------------------------------- #
def build_priors(
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> ApplicationPriors:
    settings = settings or ExperimentSettings()
    return ApplicationPriors.from_applications(
        applications.values(), n_samples=settings.prior_samples, seed=settings.profiler_seed
    )


def build_profiler(
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> BayesianProfiler:
    settings = settings or ExperimentSettings()
    profiler = BayesianProfiler()
    profiler.fit(
        applications.values(),
        n_profile_jobs=settings.profile_jobs,
        seed=settings.profiler_seed,
    )
    return profiler


def size_cluster_for_workload(
    spec: WorkloadSpec,
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> ClusterConfig:
    """Size executor pools for a closed-loop workload spec."""
    return size_cluster(spec.arrival_rate, spec.application_names, applications, settings)


def size_cluster(
    arrival_rate: float,
    application_names: Sequence[str],
    applications: Mapping[str, ApplicationTemplate],
    settings: Optional[ExperimentSettings] = None,
) -> ClusterConfig:
    """Size executor pools so the cluster runs at roughly ``target_load``.

    The offered load is estimated from the applications' mean LLM / regular
    work per job and the arrival rate; one LLM executor serving a batch of
    ``B`` requests completes up to ``B / latency(B)`` batch-size-1 seconds of
    work per second.
    """
    settings = settings or ExperimentSettings()
    rng = make_rng(settings.profiler_seed + 1)
    llm_work_per_job: List[float] = []
    regular_work_per_job: List[float] = []
    names = list(application_names)
    for name in names:
        app = applications[name]
        for i in range(30):
            job = app.sample_job(f"__size__{name}_{i}", 0.0, rng)
            llm = sum(s.duration for s in job.stages.values() if s.is_llm)
            regular = sum(
                s.duration for s in job.stages.values() if not s.is_llm and not s.is_dynamic
            )
            llm_work_per_job.append(llm)
            regular_work_per_job.append(regular)

    mean_llm = float(np.mean(llm_work_per_job))
    mean_regular = float(np.mean(regular_work_per_job))
    profile = DecodingLatencyProfile(slope=settings.latency_slope)
    llm_capacity = settings.max_batch_size / profile.latency(settings.max_batch_size)

    llm_rate = arrival_rate * mean_llm
    regular_rate = arrival_rate * mean_regular
    num_llm = max(1, int(round(llm_rate / (settings.target_load * llm_capacity))))
    # Regular executors (containers) are cheap compared to GPU-backed LLM
    # executors, so they get ~25% headroom: contention concentrates on the
    # LLM pool, which is the regime the paper studies.
    num_regular = max(2, int(np.ceil(regular_rate / (0.75 * settings.target_load))))
    return ClusterConfig(
        num_regular_executors=num_regular,
        num_llm_executors=num_llm,
        max_batch_size=settings.max_batch_size,
        latency_slope=settings.latency_slope,
    )


# --------------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------------- #
def _make_scheduler(
    name: str,
    priors: ApplicationPriors,
    profiler: BayesianProfiler,
    settings: ExperimentSettings,
) -> Scheduler:
    if name == "llmsched":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=settings.latency_slope))
        return LLMSchedScheduler(profiler, config=settings.llmsched, calibrator=calibrator)
    if name == "llmsched_wo_bn":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=settings.latency_slope))
        config = replace(settings.llmsched, use_bn=False)
        scheduler = LLMSchedScheduler(profiler, config=config, calibrator=calibrator)
        scheduler.name = "llmsched_wo_bn"
        return scheduler
    if name == "llmsched_wo_uncertainty":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=settings.latency_slope))
        config = replace(settings.llmsched, use_uncertainty=False)
        scheduler = LLMSchedScheduler(profiler, config=config, calibrator=calibrator)
        scheduler.name = "llmsched_wo_uncertainty"
        return scheduler
    if name == "llmsched_wo_calibration":
        # Extension ablation: disable Eq. 2 by calibrating against a flat
        # latency profile (batch size has no effect on the estimates).
        scheduler = LLMSchedScheduler(
            profiler,
            config=settings.llmsched,
            calibrator=BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.0)),
        )
        scheduler.name = "llmsched_wo_calibration"
        return scheduler
    return create_scheduler(name, priors=priors)


def run_single(
    scheduler_name: str,
    spec: WorkloadSpec,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
    pools: Optional[Sequence[PoolSpec]] = None,
    placement: Optional[PlacementPolicy] = None,
    async_config: Optional[AsyncConfig] = None,
) -> SimulationMetrics:
    """Run one scheduler on one workload draw and return its metrics.

    ``pools`` (a heterogeneous pool layout) overrides ``cluster_config``;
    ``placement`` selects the placement policy (greedy first-fit default);
    ``async_config`` runs the scheduler behind an asynchronous
    decision-latency backend (default: synchronous, exactly as before).
    """
    settings = settings or ExperimentSettings()
    applications = applications or default_applications()
    priors = priors or build_priors(applications, settings)
    profiler = profiler or build_profiler(applications, settings)
    if pools is not None:
        cluster = Cluster(pools=pools)
    else:
        cluster_config = cluster_config or size_cluster_for_workload(spec, applications, settings)
        cluster = Cluster(cluster_config)

    jobs = generate_workload(spec, applications=applications)
    scheduler = _make_scheduler(scheduler_name, priors, profiler, settings)
    engine = ensure_engine_protocol(
        SimulationEngine(
            jobs,
            scheduler,
            cluster=cluster,
            workload_name=spec.workload_type.value,
            placement=placement,
            async_backend=(
                AsyncSchedulerBackend(async_config) if async_config is not None else None
            ),
        )
    )
    return engine.run()


def run_comparison(
    spec: WorkloadSpec,
    scheduler_names: Sequence[str],
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
) -> ComparisonResult:
    """Run several schedulers on the *identical* workload draw and cluster."""
    settings = settings or ExperimentSettings()
    applications = applications or default_applications()
    priors = priors or build_priors(applications, settings)
    profiler = profiler or build_profiler(applications, settings)
    cluster_config = cluster_config or size_cluster_for_workload(spec, applications, settings)

    metrics: Dict[str, SimulationMetrics] = {}
    for name in scheduler_names:
        metrics[name] = run_single(
            name,
            spec,
            applications=applications,
            settings=settings,
            priors=priors,
            profiler=profiler,
            cluster_config=cluster_config,
        )
    return ComparisonResult(workload=spec, metrics=metrics)


def run_single_open_loop(
    scheduler_name: str,
    open_spec: OpenLoopSpec,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
    nominal_rate: Optional[float] = None,
    pools: Optional[Sequence[PoolSpec]] = None,
    placement: Optional[PlacementPolicy] = None,
    autoscaler: Optional[ThresholdAutoscaler] = None,
    async_config: Optional[AsyncConfig] = None,
) -> SimulationMetrics:
    """Run one scheduler against a streamed (open-loop) arrival process.

    Jobs are generated lazily from ``open_spec`` and admitted one at a time,
    so the workload is never materialized.  Cluster sizing needs an arrival
    rate; pass ``nominal_rate`` (or an explicit ``cluster_config`` /
    ``pools`` layout) because a general arrival process has no single rate
    attribute.  ``autoscaler`` resizes pools at scale events (diurnal runs);
    ``placement`` selects the placement policy; ``async_config`` charges
    decision latency through an asynchronous backend.
    """
    settings = settings or ExperimentSettings()
    applications = applications or default_applications()
    priors = priors or build_priors(applications, settings)
    profiler = profiler or build_profiler(applications, settings)
    if pools is not None:
        cluster = Cluster(pools=pools)
    else:
        if cluster_config is None:
            if nominal_rate is None:
                rate = getattr(open_spec.process, "rate", None)
                if rate is None:
                    raise ValueError(
                        "open-loop sizing needs nominal_rate (or cluster_config) for "
                        f"{type(open_spec.process).__name__}"
                    )
                nominal_rate = float(rate)
            names = open_spec.application_names or sorted(applications)
            cluster_config = size_cluster(nominal_rate, names, applications, settings)
        cluster = Cluster(cluster_config)

    scheduler = _make_scheduler(scheduler_name, priors, profiler, settings)
    engine = ensure_engine_protocol(
        SimulationEngine(
            open_spec.jobs(dict(applications)),
            scheduler,
            cluster=cluster,
            workload_name=open_spec.name,
            placement=placement,
            autoscaler=autoscaler,
            async_backend=(
                AsyncSchedulerBackend(async_config) if async_config is not None else None
            ),
        )
    )
    return engine.run()


# --------------------------------------------------------------------------- #
# Parallel sweeps
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepCell:
    """One scheduler × workload cell of a sweep grid (picklable).

    ``cluster_config`` pins the cluster; when ``None`` the cell sizes its
    own cluster from the spec's arrival rate (constant-load sweeps).  Pass
    a fixed config to measure congestion on constant hardware instead.
    ``pools`` (a tuple of :class:`~repro.simulator.pool.PoolSpec`) overrides
    ``cluster_config`` with a heterogeneous layout, and
    ``placement_policy`` names the placement policy for the cell (factory
    names from :mod:`repro.simulator.placement`; None = greedy first-fit).
    ``async_config`` runs the cell's scheduler behind an asynchronous
    decision-latency backend (None = synchronous; the config and its
    latency model are plain picklable objects, so cells still fan out
    over worker processes).
    """

    scheduler_name: str
    spec: WorkloadSpec
    cluster_config: Optional[ClusterConfig] = None
    pools: Optional[Tuple[PoolSpec, ...]] = None
    placement_policy: Optional[str] = None
    async_config: Optional[AsyncConfig] = None


#: Per-worker-process cache: profiler fitting is the expensive part of a
#: cell, and it only depends on the settings, so each worker builds it once.
_WORKER_STATE: Dict[Tuple, tuple] = {}


def _worker_state(settings: ExperimentSettings):
    key = (settings.profile_jobs, settings.prior_samples, settings.profiler_seed)
    if key not in _WORKER_STATE:
        applications = default_applications()
        priors = build_priors(applications, settings)
        profiler = build_profiler(applications, settings)
        _WORKER_STATE[key] = (applications, priors, profiler)
    return _WORKER_STATE[key]


def _run_cell(args: Tuple[SweepCell, ExperimentSettings]) -> Tuple[SweepCell, SimulationMetrics]:
    cell, settings = args
    applications, priors, profiler = _worker_state(settings)
    placement = (
        create_placement_policy(cell.placement_policy)
        if cell.placement_policy is not None
        else None
    )
    metrics = run_single(
        cell.scheduler_name,
        cell.spec,
        applications=applications,
        settings=settings,
        priors=priors,
        profiler=profiler,
        cluster_config=cell.cluster_config,
        pools=cell.pools,
        placement=placement,
        async_config=cell.async_config,
    )
    return cell, metrics


def _map_cells(worker, payload: Sequence, processes: Optional[int]) -> List:
    """Fan a picklable worker over payload items via worker processes.

    ``processes=None`` uses one worker per CPU (capped at the item count);
    ``processes=1`` runs serially in-process, which is also the fallback
    when the platform cannot fork/spawn workers.
    """
    if processes is None:
        processes = min(len(payload), multiprocessing.cpu_count())
    if processes <= 1:
        return [worker(item) for item in payload]
    try:
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(worker, payload)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed platforms
        return [worker(item) for item in payload]


def run_cells_parallel(
    cells: Sequence[SweepCell],
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
) -> List[Tuple[SweepCell, SimulationMetrics]]:
    """Run scheduler × workload cells, fanned out over worker processes
    (see :func:`_map_cells` for the process-count and fallback rules)."""
    settings = settings or ExperimentSettings()
    if not cells:
        return []
    return _map_cells(_run_cell, [(cell, settings) for cell in cells], processes)


def sweep_arrival_rates(
    arrival_rates: Sequence[float],
    scheduler_names: Sequence[str],
    base_spec: Optional[WorkloadSpec] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
    cluster_config: Optional[ClusterConfig] = None,
) -> Dict[float, ComparisonResult]:
    """Compare schedulers across a grid of arrival rates, in parallel.

    Every (scheduler, rate) cell is an independent simulation; within one
    rate all schedulers see the identical workload draw and cluster sizing,
    so the per-rate :class:`ComparisonResult` is a fair comparison.  By
    default each rate sizes its own cluster (constant load, the paper's
    methodology); pass ``cluster_config`` to pin the hardware and measure
    congestion as the rate grows.
    """
    if not arrival_rates:
        raise ValueError("arrival_rates must not be empty")
    if not scheduler_names:
        raise ValueError("scheduler_names must not be empty")
    base_spec = base_spec or WorkloadSpec()
    cells = [
        SweepCell(name, replace(base_spec, arrival_rate=float(rate)), cluster_config)
        for rate in arrival_rates
        for name in scheduler_names
    ]
    results = run_cells_parallel(cells, settings=settings, processes=processes)
    by_rate: Dict[float, ComparisonResult] = {}
    for cell, metrics in results:
        rate = cell.spec.arrival_rate
        if rate not in by_rate:
            by_rate[rate] = ComparisonResult(workload=cell.spec, metrics={})
        by_rate[rate].metrics[cell.scheduler_name] = metrics
    return by_rate


def sweep_decision_latency(
    latencies: Sequence[float],
    scheduler_names: Sequence[str],
    base_spec: Optional[WorkloadSpec] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
    cluster_config: Optional[ClusterConfig] = None,
    pipelined: bool = False,
) -> Dict[float, ComparisonResult]:
    """Compare schedulers across a grid of decision latencies, in parallel.

    Every (scheduler, latency) cell replays the *identical* workload draw on
    the identical cluster; only the charged decision latency differs, so the
    per-latency :class:`ComparisonResult` isolates how much of a scheduler's
    advantage survives control-plane delay.  Latency 0 in non-pipelined mode
    is the synchronous engine bit for bit, so the curve is anchored at
    today's numbers.  ``pipelined`` lets decisions overlap (next snapshot
    taken while the previous decision is in flight).
    """
    if not latencies:
        raise ValueError("latencies must not be empty")
    if not scheduler_names:
        raise ValueError("scheduler_names must not be empty")
    if any(latency < 0 for latency in latencies):
        raise ValueError("decision latencies must be >= 0")
    base_spec = base_spec or WorkloadSpec()
    if cluster_config is None:
        settings = settings or ExperimentSettings()
        cluster_config = size_cluster_for_workload(
            base_spec, default_applications(), settings
        )
    cells = [
        SweepCell(
            name,
            base_spec,
            cluster_config,
            async_config=AsyncConfig(latency=float(latency), pipelined=pipelined),
        )
        for latency in latencies
        for name in scheduler_names
    ]
    results = run_cells_parallel(cells, settings=settings, processes=processes)
    by_latency: Dict[float, ComparisonResult] = {}
    for cell, metrics in results:
        latency = float(cell.async_config.latency)
        if latency not in by_latency:
            by_latency[latency] = ComparisonResult(workload=cell.spec, metrics={})
        by_latency[latency].metrics[cell.scheduler_name] = metrics
    return by_latency


def sweep_placement_policies(
    policy_names: Sequence[str],
    pools: Sequence[PoolSpec],
    scheduler_name: str = "fcfs",
    base_spec: Optional[WorkloadSpec] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
) -> Dict[str, SimulationMetrics]:
    """Compare placement policies on one heterogeneous cluster layout.

    Every policy sees the identical workload draw, scheduler and pool
    layout, so differences isolate the placement decision.  Policies only
    diverge on clusters with more than one pool per task type — pass a
    heterogeneous ``pools`` layout.
    """
    if not policy_names:
        raise ValueError("policy_names must not be empty")
    base_spec = base_spec or WorkloadSpec()
    cells = [
        SweepCell(scheduler_name, base_spec, pools=tuple(pools), placement_policy=name)
        for name in policy_names
    ]
    results = run_cells_parallel(cells, settings=settings, processes=processes)
    return {cell.placement_policy: metrics for cell, metrics in results}


# --------------------------------------------------------------------------- #
# Federation
# --------------------------------------------------------------------------- #
def split_cluster_config(config: ClusterConfig, num_shards: int) -> List[ClusterConfig]:
    """Divide one total cluster sizing into ``num_shards`` shard sizings.

    The executor totals are preserved (early shards take the remainder),
    so a shard-count sweep compares routing and isolation on *identical
    total hardware*.  Every shard needs at least one executor of each
    type; shard counts beyond that are rejected rather than silently
    growing the fleet.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if config.num_regular_executors < num_shards or config.num_llm_executors < num_shards:
        raise ValueError(
            f"cannot split {config.num_regular_executors} regular / "
            f"{config.num_llm_executors} LLM executors across {num_shards} shards "
            "(every shard needs at least one of each)"
        )
    regular, reg_rem = divmod(config.num_regular_executors, num_shards)
    llm, llm_rem = divmod(config.num_llm_executors, num_shards)
    configs: List[ClusterConfig] = []
    for index in range(num_shards):
        configs.append(
            ClusterConfig(
                num_regular_executors=regular + (1 if index < reg_rem else 0),
                num_llm_executors=llm + (1 if index < llm_rem else 0),
                max_batch_size=config.max_batch_size,
                latency_slope=config.latency_slope,
            )
        )
    return configs


def run_federated(
    scheduler_name: str,
    open_spec: OpenLoopSpec,
    num_shards: int = 2,
    router: Union[str, JobRouter] = "least_loaded",
    migration: Optional[MigrationConfig] = None,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
    cluster_config: Optional[ClusterConfig] = None,
    nominal_rate: Optional[float] = None,
    async_config: Optional[AsyncConfig] = None,
) -> FederationMetrics:
    """Run one scheduler on a sharded fleet fed by an open-loop stream.

    ``cluster_config`` sizes the *total* fleet and is split evenly across
    the shards (see :func:`split_cluster_config`); when omitted it is
    derived from ``nominal_rate`` exactly like :func:`run_single_open_loop`.
    Each shard gets its own scheduler instance from the ordinary factory,
    ``migration`` enables cross-shard checkpoint rebalancing, and
    ``async_config`` gives every shard its own asynchronous
    decision-latency backend.
    """
    settings = settings or ExperimentSettings()
    applications = applications or default_applications()
    priors = priors or build_priors(applications, settings)
    profiler = profiler or build_profiler(applications, settings)
    if cluster_config is None:
        if nominal_rate is None:
            rate = getattr(open_spec.process, "rate", None)
            if rate is None:
                raise ValueError(
                    "federated sizing needs nominal_rate (or cluster_config) for "
                    f"{type(open_spec.process).__name__}"
                )
            nominal_rate = float(rate)
        names = open_spec.application_names or sorted(applications)
        cluster_config = size_cluster(nominal_rate, names, applications, settings)
    shard_configs = split_cluster_config(cluster_config, num_shards)
    fleet = FederatedCluster(
        [(f"shard-{i}", Cluster(cfg)) for i, cfg in enumerate(shard_configs)],
        router=create_job_router(router) if isinstance(router, str) else router,
    )
    engine = ensure_engine_protocol(
        FederatedSimulationEngine(
            open_spec.jobs(dict(applications)),
            lambda: _make_scheduler(scheduler_name, priors, profiler, settings),
            fleet,
            workload_name=open_spec.name,
            migration=migration,
            async_backend_factory=(
                (lambda: AsyncSchedulerBackend(async_config))
                if async_config is not None
                else None
            ),
        )
    )
    return engine.run()


@dataclass(frozen=True)
class FederatedSweepCell:
    """One shard-count cell of a federation sweep (picklable)."""

    num_shards: int
    scheduler_name: str
    open_spec: OpenLoopSpec
    cluster_config: ClusterConfig
    router_name: str = "least_loaded"
    migration: Optional[MigrationConfig] = None


def _run_federated_cell(
    args: Tuple[FederatedSweepCell, ExperimentSettings],
) -> Tuple[FederatedSweepCell, FederationMetrics]:
    cell, settings = args
    applications, priors, profiler = _worker_state(settings)
    metrics = run_federated(
        cell.scheduler_name,
        cell.open_spec,
        num_shards=cell.num_shards,
        router=cell.router_name,
        migration=cell.migration,
        applications=applications,
        settings=settings,
        priors=priors,
        profiler=profiler,
        cluster_config=cell.cluster_config,
    )
    return cell, metrics


def sweep_shard_counts(
    shard_counts: Sequence[int],
    open_spec: OpenLoopSpec,
    cluster_config: ClusterConfig,
    scheduler_name: str = "fcfs",
    router: str = "least_loaded",
    migration: Optional[MigrationConfig] = None,
    settings: Optional[ExperimentSettings] = None,
    processes: Optional[int] = None,
) -> Dict[int, FederationMetrics]:
    """Run the identical stream against fleets of varying shard counts.

    Every cell sees the same total hardware (``cluster_config`` split per
    :func:`split_cluster_config`), the same arrival stream and the same
    scheduler, so differences isolate the sharding itself.  Cells fan out
    over worker processes exactly like :func:`run_cells_parallel`.
    """
    if not shard_counts:
        raise ValueError("shard_counts must not be empty")
    settings = settings or ExperimentSettings()
    cells = [
        FederatedSweepCell(
            num_shards=int(count),
            scheduler_name=scheduler_name,
            open_spec=open_spec,
            cluster_config=cluster_config,
            router_name=router,
            migration=migration,
        )
        for count in shard_counts
    ]
    results = _map_cells(
        _run_federated_cell, [(cell, settings) for cell in cells], processes
    )
    return {cell.num_shards: metrics for cell, metrics in results}


def run_autoscaled_diurnal(
    scheduler_name: str,
    open_spec: OpenLoopSpec,
    pools: Sequence[PoolSpec],
    autoscaler_config: Optional[AutoscalerConfig] = None,
    applications: Optional[Mapping[str, ApplicationTemplate]] = None,
    settings: Optional[ExperimentSettings] = None,
    priors: Optional[ApplicationPriors] = None,
    profiler: Optional[BayesianProfiler] = None,
) -> SimulationMetrics:
    """Open-loop run with pool autoscaling enabled (diurnal-load cell).

    Thin wrapper over :func:`run_single_open_loop` that builds the
    :class:`~repro.simulator.autoscaler.ThresholdAutoscaler`; the returned
    metrics carry the applied ``scale_events``.
    """
    return run_single_open_loop(
        scheduler_name,
        open_spec,
        applications=applications,
        settings=settings,
        priors=priors,
        profiler=profiler,
        pools=pools,
        autoscaler=ThresholdAutoscaler(autoscaler_config or AutoscalerConfig()),
    )
