"""Experiment harness: regenerates every table and figure of the paper.

Each ``figN_*`` / ``tableN_*`` module exposes a ``run(...)`` function
returning plain dictionaries/lists and a ``main()`` entry point that prints
the same rows/series the paper reports.  The corresponding
``benchmarks/test_bench_*.py`` files call the same ``run`` functions at a
reduced scale so the whole harness stays runnable in CI; full paper-scale
parameters are available through each module's command line, e.g.::

    python -m repro.experiments.fig7_simulation --num-jobs 100 200 300 400

The figure drivers run through the declarative API (:mod:`repro.api`);
the ``run_*`` / ``sweep_*`` names re-exported from
:mod:`repro.experiments.runner` are deprecated shims kept for backwards
compatibility.
"""

from repro.experiments.runner import (
    ComparisonResult,
    ExperimentSettings,
    build_priors,
    build_profiler,
    run_comparison,
    run_single,
    size_cluster_for_workload,
)

__all__ = [
    "ComparisonResult",
    "ExperimentSettings",
    "build_priors",
    "build_profiler",
    "run_comparison",
    "run_single",
    "size_cluster_for_workload",
]
