"""REP001/REP006: the copy-on-write snapshot discipline.

PR 6 made async-decision correctness hinge on two conventions the type
system cannot see:

* every engine/federation mutation of a ``Job``/``Stage``/``Task`` reachable
  from a live snapshot must be *preceded* by a ``mark_dirty`` /
  ``_mark_job_dirty`` call (or routed through the ``advance_cluster_to``
  wrapper), so the :class:`~repro.schedulers.snapshot.CowSnapshotTracker`
  can freeze the pre-mutation state into live snapshots first;
* ``SchedulingContext.snapshot()`` may only be called from the one audited
  site, ``AsyncSchedulerBackend.request`` — any other caller would mint
  snapshots the engine does not know how to keep isolated.

REP001 enforces the first with a structured-dominance walk over each
function: a mutation site is accepted only when a dirty-marking statement
*dominates* it — an earlier statement in the same block (or an earlier
sibling of an enclosing block) that always marks before control can reach
the mutation.  Three statement shapes establish dominance:

1. a direct ``mark_dirty(...)`` / ``_mark_job_dirty(...)`` /
   ``advance_cluster_to(...)`` call;
2. an ``if`` whose test references the COW tracker (``cow`` /
   ``self._cow`` / ``.active``) and whose body marks dirty somewhere —
   the sanctioned "skip marking when no snapshot is alive" fast path;
3. an ``if X is (not) None``-shaped guard whose body marks dirty somewhere
   — the sanctioned "mark if the job is still active" shape;
4. an ``if``/``else`` where *every* branch either marks dirty or diverges
   (returns/raises/continues/breaks).

Dirty calls inside one branch of an ordinary conditional, or inside a loop
body, deliberately do **not** dominate statements after the conditional /
loop — removing any single ``mark_dirty`` from the engine must make this
rule fire (that is the acceptance test of the gate).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from repro.analysis.core import (
    Finding,
    Module,
    Rule,
    annotation_mentions,
    dotted_name,
    register_rule,
)

__all__ = ["CowMutationRule", "SnapshotSiteRule"]

#: Calls that establish dominance (mark the job dirty before mutation).
DIRTY_CALLS = {"mark_dirty", "_mark_job_dirty", "advance_cluster_to"}

#: Methods that mutate a Job/Stage/Task when invoked on a job-like receiver.
JOB_MUTATORS = {
    "mark_running",
    "mark_finished",
    "mark_preempted",
    "mark_ready",
    "mark_skipped",
    "notify_stage_finished",
    "advance",
    "invalidate_schedulable_cache",
}

#: Cluster/pool/executor methods that mutate tasks (hence jobs) transitively,
#: flagged regardless of receiver spelling.
CLUSTER_MUTATORS = {
    "advance_to",
    "preempt_task",
    "finish_regular_task",
    "finish_llm_task",
    "preempt_current",
    "assign",
}

#: Functions exempt from REP001 wholesale: the dirty-marking primitives
#: themselves.  ``advance_cluster_to`` is deliberately *not* exempt: its
#: raw ``cluster.advance_to`` call must stay dominated by the cow-guarded
#: marking loop above it, so deleting that loop trips the rule too.
EXEMPT_FUNCTIONS = {"_mark_job_dirty", "mark_dirty", "snapshot_clone"}

_JOB_LIKE_EXACT = {"job", "stage", "task", "live"}
_JOB_LIKE_SUFFIXES = ("_job", "_stage", "_task")
_JOB_LIKE_ANNOTATIONS = {"Job", "Stage", "Task"}


def _is_job_like_name(name: str) -> bool:
    return name in _JOB_LIKE_EXACT or name.endswith(_JOB_LIKE_SUFFIXES)


def _job_like_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
    """Parameter names annotated as Job/Stage/Task (string or forward ref)."""
    names: Set[str] = set()
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if annotation_mentions(arg.annotation, _JOB_LIKE_ANNOTATIONS):
            names.add(arg.arg)
    return names


def _receiver_name(node: ast.AST) -> Optional[str]:
    """The base variable of an attribute access (``job`` in ``job.x.y``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _contains_dirty_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] in DIRTY_CALLS:
                return True
    return False


def _is_cow_guard_test(test: ast.AST) -> bool:
    """A test about COW-tracker liveness (``cow is not None and cow.active``)."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name) and ("cow" in sub.id.lower()):
            return True
        if isinstance(sub, ast.Attribute) and (
            "cow" in sub.attr.lower() or sub.attr == "active"
        ):
            return True
    return False


def _is_none_guard_test(test: ast.AST) -> bool:
    """A test comparing something against ``None`` (liveness guard shape)."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Compare):
            operands = [sub.left, *sub.comparators]
            if any(isinstance(o, ast.Constant) and o.value is None for o in operands):
                if all(isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops):
                    return True
    return False


def _diverges(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _block_covers(stmts: Sequence[ast.stmt]) -> bool:
    """Every path through the block marks dirty or leaves the function."""
    for stmt in stmts:
        if _diverges(stmt):
            return True
        if isinstance(stmt, (ast.Expr, ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if _contains_dirty_call(stmt):
                return True
        if isinstance(stmt, ast.If) and _statement_guarantees(stmt):
            return True
    return False


def _statement_guarantees(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` establishes dominance for the statements after it."""
    if isinstance(stmt, (ast.Expr, ast.Assign, ast.AnnAssign, ast.AugAssign)):
        return _contains_dirty_call(stmt)
    if isinstance(stmt, ast.If):
        # Sanctioned guard shapes: the body marks dirty under a condition
        # that makes not-marking correct (no live snapshot / object gone).
        if (_is_cow_guard_test(stmt.test) or _is_none_guard_test(stmt.test)) and any(
            _contains_dirty_call(s) for s in stmt.body
        ):
            return True
        # Full branch coverage: every branch marks or diverges.
        if stmt.orelse and _block_covers(stmt.body) and _block_covers(stmt.orelse):
            return True
        return False
    if isinstance(stmt, ast.With):
        return _block_covers(stmt.body)
    # Loops never dominate past themselves: zero iterations mark nothing.
    return False


@register_rule
class CowMutationRule(Rule):
    """Attribute writes / mutating calls on jobs must follow a dirty mark."""

    code = "REP001"
    name = "cow-mutation-discipline"
    summary = (
        "Job/Stage/Task mutations in the engine/federation must be dominated by "
        "mark_dirty/_mark_job_dirty or flow through advance_cluster_to"
    )

    _SCOPE = ("simulator/engine.py", "simulator/federation.py")
    #: Oracle modules: they predate (and deliberately bypass) COW tracking.
    _ALLOWLIST = ("simulator/reference.py", "schedulers/base.py")

    def applies(self, module: Module) -> bool:
        if module.scope_endswith(*self._ALLOWLIST):
            return False
        return module.scope_endswith(*self._SCOPE)

    def check(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        for fn in _walk_functions(module.tree):
            if fn.name in EXEMPT_FUNCTIONS:
                # The wrapper must still delegate: a `_mark_job_dirty` that
                # no longer reaches the tracker turns every dominated call
                # site in this module into a silent no-op.
                if fn.name == "_mark_job_dirty" and not _contains_dirty_call(fn):
                    findings.append(
                        self.finding(
                            module,
                            fn,
                            "`_mark_job_dirty` no longer calls the COW "
                            "tracker's mark_dirty; every mutation site that "
                            "relies on it is now unprotected",
                        )
                    )
                continue
            job_like = _job_like_params(fn) | self._locally_bound_job_like(fn)
            self._walk_block(module, fn.body, False, job_like, findings)
        return findings

    # ---------------------------------------------------------------- #
    def _locally_bound_job_like(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
        """Names bound from job-producing expressions inside the function."""
        names: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self._produces_job(node.value):
                    names.add(target.id)
        return names

    @staticmethod
    def _produces_job(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = dotted_name(value.func) or ""
        tail = name.split(".")[-1]
        if tail in {"job_of", "stage"}:
            return True
        if "_active_jobs" in name:
            return True
        return any(k in tail for k in ("job", "task", "stage"))

    # ---------------------------------------------------------------- #
    def _walk_block(
        self,
        module: Module,
        stmts: Sequence[ast.stmt],
        dominated: bool,
        job_like: Set[str],
        findings: List[Finding],
    ) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                self._walk_block(module, stmt.body, dominated, job_like, findings)
                self._walk_block(module, stmt.orelse, dominated, job_like, findings)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._walk_block(module, stmt.body, dominated, job_like, findings)
                self._walk_block(module, stmt.orelse, dominated, job_like, findings)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                dominated = self._walk_block(module, stmt.body, dominated, job_like, findings)
            elif isinstance(stmt, ast.Try):
                self._walk_block(module, stmt.body, dominated, job_like, findings)
                for handler in stmt.handlers:
                    self._walk_block(module, handler.body, dominated, job_like, findings)
                self._walk_block(module, stmt.orelse, dominated, job_like, findings)
                self._walk_block(module, stmt.finalbody, dominated, job_like, findings)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                pass  # nested definitions are visited as their own functions
            else:
                if not dominated:
                    for node, what in self._mutations_in(stmt, job_like):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"{what} is not dominated by a mark_dirty/"
                                "_mark_job_dirty call (same function, earlier "
                                "statement) and does not flow through "
                                "advance_cluster_to; a live COW snapshot would "
                                "observe this mutation",
                            )
                        )
            if _statement_guarantees(stmt):
                dominated = True
        return dominated

    def _mutations_in(self, stmt: ast.stmt, job_like: Set[str]):
        """(node, description) pairs for every mutation inside ``stmt``."""
        out = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    receiver = _receiver_name(target)
                    if receiver is not None and _is_job_like_name(receiver):
                        out.append(
                            (target, f"attribute write `{ast.unparse(target)} = ...`")
                        )
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            receiver = _receiver_name(node.func)
            if attr in CLUSTER_MUTATORS:
                out.append((node, f"mutating call `{ast.unparse(node.func)}(...)`"))
            elif attr in JOB_MUTATORS and receiver is not None and (
                _is_job_like_name(receiver) or receiver in job_like
            ):
                out.append((node, f"mutating call `{ast.unparse(node.func)}(...)`"))
        return out


@register_rule
class SnapshotSiteRule(Rule):
    """``.snapshot()`` may only be called from the audited async request site."""

    code = "REP006"
    name = "single-snapshot-site"
    summary = (
        "SchedulingContext.snapshot() is only audited in "
        "AsyncSchedulerBackend.request; other call sites mint snapshots the "
        "engine cannot keep isolated"
    )

    _AUDITED_MODULE = "simulator/async_sched.py"
    _AUDITED_FUNCTION = "request"

    def applies(self, module: Module) -> bool:
        return module.in_src_repro

    def check(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        audited_module = module.scope_endswith(self._AUDITED_MODULE)
        for fn_name, node in _calls_with_function(module.tree):
            if not (isinstance(node.func, ast.Attribute) and node.func.attr == "snapshot"):
                continue
            if node.args or node.keywords:
                continue  # unrelated snapshot(...) API taking arguments
            if audited_module and fn_name == self._AUDITED_FUNCTION:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    "`.snapshot()` called outside the audited "
                    "AsyncSchedulerBackend.request site; new snapshot call "
                    "sites must be audited for COW lifetime and re-snapshot "
                    "hazards first",
                )
            )
        return findings


def _walk_functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _calls_with_function(tree: ast.Module):
    """(enclosing function name, Call) pairs; module-level calls get ''."""

    def visit(node: ast.AST, fn_name: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, child.name)
            else:
                if isinstance(child, ast.Call):
                    yield fn_name, child
                yield from visit(child, fn_name)

    yield from visit(tree, "")
