"""Project-specific static analysis: the invariant linter (REP001-REP008).

Usage::

    python -m repro.analysis src tests              # lint the tree
    python -m repro.analysis --select REP001,REP006 # only the COW rules
    python -m repro.analysis --format json          # machine-readable

The rule pack guards the conventions the simulator's correctness rests on
(see the rule modules for the full rationale):

========  ==========================  ==============================================
Code      Name                        Invariant
========  ==========================  ==============================================
REP001    cow-mutation-discipline     Job/Stage/Task mutations in the engine and
                                      federation are dominated by mark_dirty /
                                      _mark_job_dirty or flow through
                                      advance_cluster_to
REP002    no-unseeded-randomness      all randomness flows through seeded
                                      generators (utils.rng), never global state
REP003    no-wall-clock               simulation code reads only the simulated
                                      clock (metering sites are pragma'd)
REP004    no-stray-deepcopy           copy.deepcopy stays confined to the golden
                                      oracles
REP005    deterministic-iteration     no unsorted set / raw dict-view iteration on
                                      the decision path
REP006    single-snapshot-site        SchedulingContext.snapshot() only at the
                                      audited AsyncSchedulerBackend.request site
REP007    token-phase-ownership       token-phase fields (prompt/output tokens,
                                      prefill_work, ready_time, first_token_time)
                                      written only by task/stage/executor
REP008    provenance-ownership        record identity (spec_hash, record_id) is
                                      derived from canonical content and written
                                      only inside repro/store/
========  ==========================  ==============================================

Suppress a finding with ``# repro: <CODE>-exempt -- justification`` on the
flagged line; fixtures impersonate real modules with ``# repro:
lint-as=<path>`` (see :mod:`repro.analysis.core`).
"""

from repro.analysis.core import (
    AnalysisReport,
    Finding,
    Module,
    Rule,
    all_rules,
    analyze_paths,
    iter_python_files,
    load_module,
    register_rule,
    rule_codes,
    select_rules,
)

__all__ = [
    "AnalysisReport",
    "Finding",
    "Module",
    "Rule",
    "all_rules",
    "analyze_paths",
    "iter_python_files",
    "load_module",
    "register_rule",
    "rule_codes",
    "select_rules",
]
