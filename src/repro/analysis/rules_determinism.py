"""REP002/REP005: bit-identical reruns are a tested invariant — keep them.

The whole verification story of this repo (golden traces, COW-vs-deepcopy
lockstep properties, the benchmark regression gate) rests on simulations
being deterministic functions of their seeds.  Two classes of hazard break
that silently:

* **REP002** — randomness outside the seeded-RNG plumbing
  (:func:`repro.utils.rng.make_rng` / :func:`~repro.utils.rng.derive_rng`).
  ``np.random.default_rng()`` with no seed, or any call through the
  module-level ``random`` / ``np.random`` global state, differs run to run
  and is invisible in a diff review.
* **REP005** — iteration order feeding scheduling decisions.  ``set``
  iteration order depends on insertion history and (for strings) the
  per-process hash seed; a ``for``/comprehension over a set — or over raw
  ``dict.keys()/.values()`` inside a decision-producing function — that
  feeds a :class:`~repro.schedulers.base.SchedulingDecision`, a placement
  or a router choice must go through ``sorted(...)``.

REP005 is scoped to the decision plane (``schedulers/``, the engine, the
federation, placement, autoscaler, pools) and infers set-typed values
structurally: set literals/comprehensions, ``set()``/``frozenset()`` calls,
set-operator expressions, and names/attributes assigned or annotated as
sets anywhere in the module.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import (
    Finding,
    ImportMap,
    Module,
    Rule,
    annotation_mentions,
    dotted_name,
    register_rule,
)

__all__ = ["UnseededRandomnessRule", "IterationOrderRule"]


@register_rule
class UnseededRandomnessRule(Rule):
    """All randomness must flow through explicitly seeded generators."""

    code = "REP002"
    name = "no-unseeded-randomness"
    summary = (
        "np.random.default_rng() without a seed and module-level random./"
        "np.random.* calls are forbidden outside tests; use "
        "repro.utils.rng.make_rng/derive_rng"
    )

    #: Seeded-constructor names on numpy.random that are fine to call.
    _ALLOWED_NUMPY = {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }

    def applies(self, module: Module) -> bool:
        return module.in_src_repro

    def check(self, module: Module) -> List[Finding]:
        imports = ImportMap(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None or raw.split(".")[0] not in imports.aliases:
                continue  # not a call through an imported module/name
            resolved = imports.resolve(raw) or ""
            head, _, _ = resolved.partition(".")
            if head == "random":
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"call to module-level `{resolved}` uses global RNG "
                        "state; draw from a seeded np.random.Generator "
                        "(repro.utils.rng.make_rng) instead",
                    )
                )
                continue
            if resolved.startswith("numpy.random."):
                tail = resolved.split(".")[-1]
                if tail == "default_rng" and not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded and differs run to run; pass an "
                            "explicit seed (or use repro.utils.rng.make_rng)",
                        )
                    )
                elif tail not in self._ALLOWED_NUMPY:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"call to `{resolved}` uses numpy's global RNG "
                            "state; use a seeded np.random.Generator instead",
                        )
                    )
        return findings


# --------------------------------------------------------------------------- #
# REP005
# --------------------------------------------------------------------------- #
_SET_ANNOTATIONS = {"Set", "set", "FrozenSet", "frozenset", "AbstractSet", "MutableSet"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
_DECISION_FUNCTIONS = {"schedule", "select_shard", "select_pool"}


@register_rule
class IterationOrderRule(Rule):
    """No unsorted set / raw dict-view iteration in the decision plane."""

    code = "REP005"
    name = "deterministic-iteration"
    summary = (
        "iteration over sets (or raw dict.keys()/.values() in decision "
        "functions) feeding scheduling/placement/routing must be wrapped in "
        "sorted(...)"
    )

    _SCOPE_DIRS = ("schedulers",)
    _SCOPE_FILES = (
        "simulator/engine.py",
        "simulator/federation.py",
        "simulator/placement.py",
        "simulator/autoscaler.py",
        "simulator/pool.py",
    )

    def applies(self, module: Module) -> bool:
        if not module.in_src_repro:
            return False
        if module.scope_endswith(*self._SCOPE_FILES):
            return True
        parts = module.scope_parts
        return any(d in parts for d in self._SCOPE_DIRS)

    # ---------------------------------------------------------------- #
    def check(self, module: Module) -> List[Finding]:
        set_ids = self._collect_set_identifiers(module.tree)
        findings: List[Finding] = []
        for fn_name, iter_expr in self._iteration_sites(module.tree):
            for hazard, why in self._hazards(iter_expr, set_ids, fn_name):
                findings.append(
                    self.finding(
                        module,
                        hazard,
                        f"iteration over {why} has no deterministic order "
                        "guarantee on the decision path; wrap it in "
                        "sorted(...)",
                    )
                )
        return findings

    # ---------------------------------------------------------------- #
    def _collect_set_identifiers(self, tree: ast.Module) -> Set[str]:
        """Names/attributes assigned or annotated as sets in this module."""
        ids: Set[str] = set()
        for _ in range(2):  # one extra pass so `a = b | c` chains propagate
            for node in ast.walk(tree):
                if isinstance(node, ast.AnnAssign):
                    if annotation_mentions(node.annotation, _SET_ANNOTATIONS):
                        name = self._target_identifier(node.target)
                        if name:
                            ids.add(name)
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    name = self._target_identifier(node.targets[0])
                    if name and self._is_set_expr(node.value, ids):
                        ids.add(name)
                elif isinstance(node, ast.arg):
                    if annotation_mentions(node.annotation, _SET_ANNOTATIONS):
                        ids.add(node.arg)
        return ids

    @staticmethod
    def _target_identifier(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    def _is_set_expr(self, value: ast.AST, set_ids: Set[str]) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name in {"set", "frozenset"}:
                return True
            if name is not None and name.split(".")[-1] in {"union", "intersection", "difference"}:
                base = dotted_name(getattr(value.func, "value", None))
                return base is not None and base.split(".")[-1] in set_ids
            return False
        if isinstance(value, ast.BinOp) and isinstance(value.op, _SET_OPS):
            return self._is_set_expr(value.left, set_ids) or self._is_set_expr(
                value.right, set_ids
            )
        if isinstance(value, ast.Name):
            return value.id in set_ids
        if isinstance(value, ast.Attribute):
            return value.attr in set_ids
        return False

    # ---------------------------------------------------------------- #
    def _iteration_sites(self, tree: ast.Module) -> Iterable[Tuple[str, ast.AST]]:
        """(enclosing function name, iterable expression) pairs."""

        def visit(node: ast.AST, fn_name: str):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from visit(child, child.name)
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor)):
                    yield fn_name, child.iter
                elif isinstance(
                    child, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    for gen in child.generators:
                        yield fn_name, gen.iter
                yield from visit(child, fn_name)

        yield from visit(tree, "")

    def _hazards(
        self, iter_expr: ast.AST, set_ids: Set[str], fn_name: str
    ) -> Iterable[Tuple[ast.AST, str]]:
        # Unwrap list()/tuple() one level: materializing a set keeps its order.
        expr = iter_expr
        if (
            isinstance(expr, ast.Call)
            and dotted_name(expr.func) in {"list", "tuple"}
            and len(expr.args) == 1
        ):
            expr = expr.args[0]
        if self._is_set_expr(expr, set_ids):
            yield expr, f"the set-typed expression `{ast.unparse(expr)}`"
            return
        if (
            fn_name in _DECISION_FUNCTIONS
            and isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in {"keys", "values"}
            and not expr.args
        ):
            yield expr, (
                f"the raw dict view `{ast.unparse(expr)}` inside decision "
                f"function `{fn_name}`"
            )
