"""The invariant-lint framework: findings, pragmas, rule registry, drivers.

``repro.analysis`` is a project-specific static-analysis pass: a small set
of AST rules (ruff-style ``REPnnn`` codes) that turn the repo's
load-bearing *conventions* — COW mutation discipline, seeded-RNG-only
randomness, no wall-clock in simulation paths, deepcopy confined to the
golden oracles, deterministic iteration feeding scheduling decisions, one
audited snapshot site — into a CI gate.  The type system cannot see any of
these; before this pass they were enforced by code review and caught (late)
by golden-trace divergence.

This module is the framework; the rules live in :mod:`rules_cow`,
:mod:`rules_determinism`, :mod:`rules_hygiene`, :mod:`rules_token` and
:mod:`rules_provenance`, and the command-line front end in :mod:`cli`
(``python -m repro.analysis``).

Suppression pragmas
-------------------
A finding on line *L* is suppressed by a ``# repro: <CODE>-exempt`` comment
on that physical line, optionally followed by ``--`` and a justification::

    started = wallclock.perf_counter()  # repro: REP003-exempt -- metered overhead

Multiple codes may be exempted on one line (``REP003-exempt,REP004-exempt``).
Fixture files can impersonate a real module for rule-scoping purposes with a
file-level pragma (anywhere in the file, conventionally line 1)::

    # repro: lint-as=src/repro/simulator/engine.py

so the path-scoped rules (REP001 only fires in the engine/federation, REP004
allowlists the oracles, ...) can be exercised on files living under
``tests/fixtures/analysis/``.  That directory is excluded from directory
discovery by default — its files are deliberate violations — but explicitly
listed files are always analyzed, exclusion or not.
"""

from __future__ import annotations

import abc
import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "AnalysisReport",
    "all_rules",
    "register_rule",
    "rule_codes",
    "select_rules",
    "load_module",
    "iter_python_files",
    "analyze_paths",
    "ImportMap",
    "dotted_name",
]

#: Schema version stamped into the JSON output.
JSON_SCHEMA_VERSION = 1

#: Directory names never descended into during discovery.
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "build", "dist", ".mypy_cache"}

#: Path fragments excluded from *directory* discovery (explicit file
#: arguments bypass this): the analysis fixtures are deliberate violations.
_DEFAULT_EXCLUDE_FRAGMENTS = ("tests/fixtures/analysis",)

_PRAGMA_RE = re.compile(r"#\s*repro:\s*([^\n]*)")
_EXEMPT_RE = re.compile(r"([A-Za-z][A-Za-z0-9]*)-exempt\b")
_LINT_AS_RE = re.compile(r"#\s*repro:\s*lint-as\s*=\s*(\S+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# --------------------------------------------------------------------------- #
# Module model
# --------------------------------------------------------------------------- #
@dataclass
class Module:
    """One parsed source file plus everything rules need to scope and check.

    ``scope_path`` is the path rules match against — normally the file's own
    (posix-normalized) path, but a ``lint-as=`` pragma replaces it so fixture
    files can exercise path-scoped rules.  ``path`` is always the real file,
    used for reporting.
    """

    path: str
    source: str
    tree: ast.Module
    scope_path: PurePosixPath
    #: line number -> set of exempted codes (upper-cased).
    exemptions: Dict[int, Set[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def is_exempt(self, line: int, code: str) -> bool:
        return code.upper() in self.exemptions.get(line, ())

    @property
    def scope_parts(self) -> Tuple[str, ...]:
        return self.scope_path.parts

    @property
    def in_src_repro(self) -> bool:
        """Inside the ``repro`` package proper (not tests/benchmarks/examples)."""
        parts = self.scope_parts
        return "repro" in parts and not self.is_test

    @property
    def is_test(self) -> bool:
        parts = self.scope_parts
        if "tests" in parts or "conftest.py" in parts:
            return True
        return self.scope_path.name.startswith("test_")

    def scope_endswith(self, *suffixes: str) -> bool:
        """True if the scope path ends with any of the given posix suffixes."""
        text = self.scope_path.as_posix()
        return any(text == s or text.endswith("/" + s) for s in suffixes)


def _parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Optional[str]]:
    # Tokenize instead of scanning raw lines so pragma-shaped text inside
    # string literals (e.g. this framework's own docstrings) never counts.
    exemptions: Dict[int, Set[str]] = {}
    lint_as: Optional[str] = None
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT or "repro:" not in token.string:
            continue
        lineno = token.start[0]
        as_match = _LINT_AS_RE.search(token.string)
        if as_match:
            lint_as = as_match.group(1)
        pragma = _PRAGMA_RE.search(token.string)
        if pragma is None:
            continue
        codes = {m.group(1).upper() for m in _EXEMPT_RE.finditer(pragma.group(1))}
        if codes:
            exemptions.setdefault(lineno, set()).update(codes)
    return exemptions, lint_as


def load_module(path: str | Path) -> Module:
    """Parse one file into a :class:`Module` (raises ``SyntaxError`` as-is)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    exemptions, lint_as = _parse_pragmas(source)
    scope = PurePosixPath(lint_as) if lint_as else PurePosixPath(path.as_posix())
    return Module(
        path=str(path), source=source, tree=tree, scope_path=scope, exemptions=exemptions
    )


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #
class Rule(abc.ABC):
    """One invariant, one ``REPnnn`` code.

    Subclasses are registered via :func:`register_rule` (applied as a class
    decorator in the rule modules) and instantiated fresh per run — rules
    must not keep cross-file state beyond one :meth:`check` call.
    """

    #: ``REPnnn`` identifier used by --select/--ignore and pragmas.
    code: str = "REP000"
    #: Short kebab-case rule name.
    name: str = "base"
    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def applies(self, module: Module) -> bool:
        """Whether this rule runs on ``module`` at all (path scoping)."""
        return True

    @abc.abstractmethod
    def check(self, module: Module) -> List[Finding]:
        """All violations in ``module`` (pragma filtering happens outside)."""

    # Helper shared by every rule -------------------------------------- #
    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (by code)."""
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def _ensure_rules_loaded() -> None:
    # Rule modules self-register on import; imported lazily so `core` has no
    # import-time dependency on them (they import helpers from here).
    from repro.analysis import (  # noqa: F401
        rules_cow,
        rules_determinism,
        rules_hygiene,
        rules_provenance,
        rules_token,
    )


def all_rules() -> Dict[str, Type[Rule]]:
    _ensure_rules_loaded()
    return dict(sorted(_REGISTRY.items()))


def rule_codes() -> List[str]:
    return sorted(all_rules())


def select_rules(
    select: Optional[Iterable[str]] = None, ignore: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Instantiate the rule set after --select/--ignore filtering.

    Unknown codes raise ``ValueError`` (a typo silently disabling a gate is
    exactly the failure mode this tool exists to prevent).
    """
    registry = all_rules()
    chosen = {c.upper() for c in select} if select else set(registry)
    ignored = {c.upper() for c in ignore} if ignore else set()
    unknown = sorted((chosen | ignored) - set(registry))
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {unknown}; available: {sorted(registry)}"
        )
    return [registry[code]() for code in sorted(chosen - ignored)]


# --------------------------------------------------------------------------- #
# Discovery and the analysis driver
# --------------------------------------------------------------------------- #
def iter_python_files(
    paths: Sequence[str | Path], use_default_excludes: bool = True
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Directory walks skip cache/VCS dirs and (by default) the deliberate-
    violation fixture tree; paths given *explicitly* are always included.
    """
    out: List[Path] = []
    seen: Set[Path] = set()

    def _add(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(candidate)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            _add(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for file in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIR_NAMES for part in file.parts):
                continue
            posix = file.as_posix()
            if use_default_excludes and any(
                fragment in posix for fragment in _DEFAULT_EXCLUDE_FRAGMENTS
            ):
                continue
            _add(file)
    return sorted(out, key=lambda p: p.as_posix())


@dataclass
class AnalysisReport:
    """The outcome of one analysis run over a set of files."""

    findings: List[Finding]
    files_scanned: int

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "counts": self.counts,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def analyze_module(module: Module, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(module):
            continue
        for finding in rule.check(module):
            if not module.is_exempt(finding.line, finding.code):
                findings.append(finding)
    return findings


def analyze_paths(
    paths: Sequence[str | Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    use_default_excludes: bool = True,
) -> AnalysisReport:
    """Run the (filtered) rule set over every Python file under ``paths``.

    Unparseable files surface as ``REP000`` findings: a syntax error in a
    gated tree must fail the gate, not crash it.
    """
    rules = select_rules(select, ignore)
    findings: List[Finding] = []
    files = iter_python_files(paths, use_default_excludes=use_default_excludes)
    for file in files:
        try:
            module = load_module(file)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=str(file),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="REP000",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        findings.extend(analyze_module(module, rules))
    return AnalysisReport(findings=sorted(findings), files_scanned=len(files))


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Alias -> fully-qualified module/name map for one module.

    Resolves ``import time as wallclock`` / ``from datetime import datetime``
    so rules can match calls by canonical name (``time.perf_counter``,
    ``datetime.datetime.now``) regardless of local spelling.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonicalize the head of a dotted name through the alias map."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        return self.resolve(dotted_name(call.func))


def iter_functions(tree: ast.Module) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module (any nesting depth)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def annotation_mentions(annotation: Optional[ast.AST], names: Mapping[str, object] | Set[str]) -> bool:
    """Whether an annotation expression references any of the given names."""
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    return any(re.search(rf"\b{re.escape(str(n))}\b", text) for n in names)
