"""REP008: provenance fields have exactly one writer — ``repro/store/``.

The run store's trust model (ISSUE 10) is that a record's identity is
*derived*, never assigned: ``record_id`` is the SHA-256 of the record's
canonical content, and ``spec_hash`` comes from
``ScenarioSpec.content_hash()`` inside the store layer.  Code elsewhere
that writes these fields — stamping a ``spec_hash`` onto some object,
patching a ``record_id`` — forges provenance: the regression gate and the
README/BENCH regeneration would then vouch for numbers whose origin was
asserted rather than computed.  REP008 restricts raw writes to the store
subsystem (and its tests/fixtures, which are outside ``src/repro``);
everyone else treats provenance as read-only.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, Module, Rule, register_rule

__all__ = ["ProvenanceMutationRule"]

#: The record-identity fields whose writes are ownership-restricted.
PROVENANCE_ATTRS = {
    "spec_hash",
    "record_id",
}


@register_rule
class ProvenanceMutationRule(Rule):
    """Provenance attribute writes only inside ``repro/store/``."""

    code = "REP008"
    name = "provenance-ownership"
    summary = (
        "spec_hash/record_id are written only inside repro/store/ (identity "
        "is derived from canonical content, never assigned); other code "
        "reads records or goes through RunStore"
    )

    def applies(self, module: Module) -> bool:
        in_store = "repro/store/" in module.scope_path.as_posix()
        return module.in_src_repro and not in_store

    def check(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                continue
            for target in targets:
                # Walk the whole target so tuple-unpacking writes
                # (``a, rec.spec_hash = ...``) are caught too.
                for sub in ast.walk(target):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    if sub.attr not in PROVENANCE_ATTRS:
                        continue
                    findings.append(
                        self.finding(
                            module,
                            sub,
                            f"write to provenance field `{ast.unparse(sub)}` "
                            "outside repro/store/; record identity is derived "
                            "from canonical content — construct a RunRecord "
                            "instead of assigning its hash",
                        )
                    )
        return findings
