"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit codes follow the usual linter contract:

* ``0`` — no findings;
* ``1`` — at least one finding (including ``REP000`` parse failures);
* ``2`` — usage error (unknown rule code, missing path).

``--format json`` emits a machine-readable report (schema in
:data:`repro.analysis.core.JSON_SCHEMA_VERSION`) for CI artifacts and
tooling; the default human format is ``path:line:col: CODE message``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import all_rules, analyze_paths

__all__ = ["main", "build_parser"]

#: Scanned when no paths are given (mirrors the CI invariant-lint job).
DEFAULT_PATHS = ("src", "tests")


def _split_codes(value: str) -> List[str]:
    return [part.strip().upper() for part in value.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant linter for the repro codebase: COW mutation "
            "discipline, determinism, and hot-path hygiene (codes REP001-REP007)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        type=_split_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_split_codes,
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help="also descend into the deliberate-violation fixture tree",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, cls in all_rules().items():
            print(f"{code} {cls.name}: {cls.summary}")
        return 0

    paths = args.paths or [p for p in DEFAULT_PATHS]
    try:
        report = analyze_paths(
            paths,
            select=args.select,
            ignore=args.ignore,
            use_default_excludes=not args.no_default_excludes,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        sys.stdout.write(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        noun = "finding" if len(report.findings) == 1 else "findings"
        print(
            f"{len(report.findings)} {noun} in {report.files_scanned} files scanned"
        )
    return 1 if report.findings else 0
