"""REP007: token-phase state has exactly three writers.

PR 9's opt-in guarantee — attach a token model and every legacy trace stays
bit-identical — rests on the token-phase fields being *derived observation*,
never independent state:

* ``prompt_tokens`` / ``output_tokens`` / ``prefill_work`` are set once by
  ``Task.set_token_model`` (a pure decomposition of the existing ``work``);
* ``ready_time`` is stamped by the stage when the task becomes schedulable;
* ``first_token_time`` is stamped by the executor at the instant progress
  crosses the prefill boundary (plus the task's own reset in
  ``set_token_model``).

Any other assignment to these fields — in the engine, a scheduler, the
metrics layer — either forges a serving sample (TTFT/TPOT computed from a
time nobody simulated) or breaks the decomposition (``prefill + decode``
drifting from ``work``, which is precisely the bit-identity hazard).  The
golden-trace suite only catches the second failure, and only after the
fact; REP007 catches both at lint time by restricting raw writes to the
three owning modules.  Everyone else goes through the ``Task`` API
(``set_token_model``) or just reads.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, Module, Rule, register_rule

__all__ = ["TokenPhaseMutationRule"]

#: The token-phase fields whose writes are ownership-restricted.
TOKEN_PHASE_ATTRS = {
    "prompt_tokens",
    "output_tokens",
    "prefill_work",
    "ready_time",
    "first_token_time",
}


@register_rule
class TokenPhaseMutationRule(Rule):
    """Token-phase attribute writes only in task/stage/executor."""

    code = "REP007"
    name = "token-phase-ownership"
    summary = (
        "prompt_tokens/output_tokens/prefill_work/ready_time/first_token_time "
        "are written only by dag/task.py, dag/stage.py and "
        "simulator/executor.py; other code uses Task.set_token_model or reads"
    )

    #: The three sanctioned writers.  The engine and the reference oracle are
    #: deliberately *not* here: both observe token events via the executor.
    _OWNERS = ("dag/task.py", "dag/stage.py", "simulator/executor.py")

    def applies(self, module: Module) -> bool:
        return module.in_src_repro and not module.scope_endswith(*self._OWNERS)

    def check(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            else:
                continue
            for target in targets:
                # Walk the whole target so tuple-unpacking writes
                # (``a, t.ready_time = ...``) are caught too.
                for sub in ast.walk(target):
                    if not isinstance(sub, ast.Attribute):
                        continue
                    if sub.attr not in TOKEN_PHASE_ATTRS:
                        continue
                    findings.append(
                        self.finding(
                            module,
                            sub,
                            f"write to token-phase field "
                            f"`{ast.unparse(sub)}` outside its owners "
                            "(dag/task.py, dag/stage.py, "
                            "simulator/executor.py); route it through "
                            "Task.set_token_model or move it to the owner",
                        )
                    )
        return findings
