"""REP003/REP004: hot-path hygiene — no wall-clock, no stray deepcopy.

* **REP003** — simulated time is the only clock the library may consult.
  A ``time.time()``/``datetime.now()`` leaking into a simulation path makes
  results machine- and load-dependent, which the golden traces cannot catch
  (they pin *simulated* outputs).  The two sanctioned uses — metering the
  scheduler-invocation overhead for Table I and the ``Result`` wall-clock
  field — carry per-line pragmas with justifications.
* **REP004** — PR 6 exists because a wholesale ``copy.deepcopy`` on the
  scheduling hot path cost more than the simulation itself.  The only
  remaining legitimate deepcopy sites are the golden oracles (the reference
  engine and the ``snapshot_policy="deepcopy"`` branch in
  ``schedulers/base.py``); any new one is either a perf regression or a
  mutation-isolation hack that should use ``snapshot_clone``/COW instead.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ImportMap, Module, Rule, dotted_name, register_rule

__all__ = ["WallClockRule", "DeepcopyRule"]


@register_rule
class WallClockRule(Rule):
    """No wall-clock reads in ``src/repro`` outside pragma'd metering sites."""

    code = "REP003"
    name = "no-wall-clock"
    summary = (
        "time.time/monotonic/perf_counter and datetime.now have no place in "
        "simulation code; only the pragma'd Result/Table-I metering sites may "
        "read the wall clock"
    )

    _FORBIDDEN = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def applies(self, module: Module) -> bool:
        return module.in_src_repro

    def check(self, module: Module) -> List[Finding]:
        imports = ImportMap(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None or raw.split(".")[0] not in imports.aliases:
                continue
            resolved = imports.resolve(raw)
            if resolved in self._FORBIDDEN:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"wall-clock read `{resolved}()` in simulation code; "
                        "use the simulated clock, or pragma the site if it "
                        "meters real scheduler overhead",
                    )
                )
        return findings


@register_rule
class DeepcopyRule(Rule):
    """``copy.deepcopy`` is confined to the golden-oracle modules."""

    code = "REP004"
    name = "no-stray-deepcopy"
    summary = (
        "copy.deepcopy outside the golden oracles (simulator/reference.py, "
        "the deepcopy snapshot branch in schedulers/base.py) re-introduces "
        "the O(jobs x stages x tasks) copy PR 6 removed"
    )

    _ORACLES = ("simulator/reference.py", "schedulers/base.py")

    def applies(self, module: Module) -> bool:
        return module.in_src_repro and not module.scope_endswith(*self._ORACLES)

    def check(self, module: Module) -> List[Finding]:
        imports = ImportMap(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            raw = dotted_name(node.func)
            if raw is None or raw.split(".")[0] not in imports.aliases:
                continue
            if imports.resolve(raw) == "copy.deepcopy":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "copy.deepcopy outside the oracle allowlist; use "
                        "Job/Stage/Task.snapshot_clone (structural copy) or "
                        "the COW snapshot machinery instead",
                    )
                )
        return findings
