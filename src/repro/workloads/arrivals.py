"""Open-loop arrival processes: streaming workload generation.

:mod:`repro.workloads.mixtures` materializes a fixed, pre-sorted job list
(closed loop).  This module instead models the *arrival process* as a lazy,
composable stream of arrival times, and turns it into a generator of jobs
that the simulation engine admits one at a time.  Experiments can therefore
drive sustained traffic — e.g. a Poisson stream at high rate, a bursty
MMPP stream, or a diurnal pattern — without ever holding the full workload
in memory.

Composition
-----------
Every process yields absolute, non-decreasing arrival times and can be
re-iterated (each :meth:`ArrivalProcess.times` call restarts the stream
from its seed, so the same process object always replays the same trace):

>>> process = PoissonProcess(rate=2.0, seed=7).until(3600.0).take(1000)
>>> jobs = open_loop_jobs(process, seed=7)          # doctest: +SKIP

``take`` caps the number of arrivals, ``until`` caps the time horizon, and
:func:`superpose` merges independent streams (e.g. a steady background plus
a bursty foreground).
"""

from __future__ import annotations

import abc
import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from repro.dag.application import ApplicationTemplate
from repro.dag.job import Job
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "TraceReplayProcess",
    "superpose",
    "OpenLoopSpec",
    "open_loop_jobs",
]


class ArrivalProcess(abc.ABC):
    """A lazy stream of absolute arrival times (seconds, non-decreasing)."""

    @abc.abstractmethod
    def times(self) -> Iterator[float]:
        """Fresh iterator over the arrival times of this process."""

    # ------------------------------------------------------------------ #
    # Combinators
    # ------------------------------------------------------------------ #
    def take(self, count: int) -> "ArrivalProcess":
        """At most the first ``count`` arrivals."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return _Take(self, count)

    def until(self, horizon: float) -> "ArrivalProcess":
        """Only arrivals at or before ``horizon`` seconds."""
        require_positive(horizon, "horizon")
        return _Until(self, horizon)


@dataclass(frozen=True)
class _Take(ArrivalProcess):
    inner: ArrivalProcess
    count: int

    def times(self) -> Iterator[float]:
        stream = self.inner.times()
        for _ in range(self.count):
            value = next(stream, None)
            if value is None:
                return
            yield value


@dataclass(frozen=True)
class _Until(ArrivalProcess):
    inner: ArrivalProcess
    horizon: float

    def times(self) -> Iterator[float]:
        for value in self.inner.times():
            if value > self.horizon:
                return
            yield value


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson process with ``rate`` arrivals per second."""

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.rate, "rate")

    def times(self) -> Iterator[float]:
        rng = make_rng(self.seed)
        now = 0.0
        while True:
            now += float(rng.exponential(1.0 / self.rate))
            yield now


@dataclass(frozen=True)
class BurstyProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (MMPP-2).

    The process alternates between a *normal* phase with rate ``base_rate``
    and a *burst* phase with rate ``burst_rate``; phase durations are
    exponential with the given means.  Because exponential inter-arrival
    gaps are memoryless, redrawing the pending gap at every phase switch
    samples the exact process.
    """

    base_rate: float
    burst_rate: float
    mean_normal_duration: float = 60.0
    mean_burst_duration: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.base_rate, "base_rate")
        require_positive(self.burst_rate, "burst_rate")
        require_positive(self.mean_normal_duration, "mean_normal_duration")
        require_positive(self.mean_burst_duration, "mean_burst_duration")

    def times(self) -> Iterator[float]:
        rng = make_rng(self.seed)
        now = 0.0
        bursting = False
        phase_end = float(rng.exponential(self.mean_normal_duration))
        while True:
            rate = self.burst_rate if bursting else self.base_rate
            candidate = now + float(rng.exponential(1.0 / rate))
            if candidate <= phase_end:
                now = candidate
                yield now
            else:
                now = phase_end
                bursting = not bursting
                mean = self.mean_burst_duration if bursting else self.mean_normal_duration
                phase_end = now + float(rng.exponential(mean))


@dataclass(frozen=True)
class DiurnalProcess(ArrivalProcess):
    """Nonhomogeneous Poisson process with a sinusoidal daily rate.

    ``rate(t) = mean_rate * (1 + amplitude * sin(2 * pi * t / period))``,
    sampled by Lewis–Shedler thinning against the peak rate.
    """

    mean_rate: float
    amplitude: float = 0.5
    period: float = 86_400.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.mean_rate, "mean_rate")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be within [0, 1]")
        require_positive(self.period, "period")

    def rate_at(self, time: float) -> float:
        return self.mean_rate * (1.0 + self.amplitude * math.sin(2.0 * math.pi * time / self.period))

    def times(self) -> Iterator[float]:
        rng = make_rng(self.seed)
        peak = self.mean_rate * (1.0 + self.amplitude)
        now = 0.0
        while True:
            now += float(rng.exponential(1.0 / peak))
            if float(rng.random()) * peak <= self.rate_at(now):
                yield now


@dataclass(frozen=True)
class TraceReplayProcess(ArrivalProcess):
    """Replays a recorded sequence of absolute arrival times."""

    trace: Sequence[float] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        previous = 0.0
        for value in self.trace:
            if value < 0:
                raise ValueError("trace arrival times must be >= 0")
            if value < previous:
                raise ValueError("trace arrival times must be non-decreasing")
            previous = value

    def times(self) -> Iterator[float]:
        return iter([float(value) for value in self.trace])


@dataclass(frozen=True)
class _Superposition(ArrivalProcess):
    processes: Sequence[ArrivalProcess]

    def times(self) -> Iterator[float]:
        return heapq.merge(*(p.times() for p in self.processes))


def superpose(*processes: ArrivalProcess) -> ArrivalProcess:
    """Merge independent arrival streams into one (order-preserving)."""
    if not processes:
        raise ValueError("superpose needs at least one process")
    return _Superposition(tuple(processes))


# --------------------------------------------------------------------------- #
# Turning arrival times into jobs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OpenLoopSpec:
    """A picklable description of an open-loop workload cell.

    Mirrors :class:`repro.workloads.mixtures.WorkloadSpec` for streaming
    runs: the parallel experiment runner ships these to worker processes,
    which rebuild the generator locally via :func:`open_loop_jobs`.
    """

    process: ArrivalProcess
    application_names: Optional[Sequence[str]] = None
    seed: int = 0
    max_jobs: Optional[int] = None
    horizon: Optional[float] = None
    name: str = "open_loop"

    def __post_init__(self) -> None:
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ValueError("max_jobs must be > 0 when given")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be > 0 when given")

    def jobs(
        self, applications: Optional[Dict[str, ApplicationTemplate]] = None
    ) -> Iterator[Job]:
        return open_loop_jobs(
            self.process,
            applications=applications,
            application_names=self.application_names,
            seed=self.seed,
            max_jobs=self.max_jobs,
            horizon=self.horizon,
        )


def open_loop_jobs(
    process: ArrivalProcess,
    applications: Optional[Dict[str, ApplicationTemplate]] = None,
    application_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    max_jobs: Optional[int] = None,
    horizon: Optional[float] = None,
) -> Iterator[Job]:
    """Generate jobs lazily from an arrival process.

    Each arrival is assigned an application uniformly at random (seeded, so
    the same spec always replays the same job stream) and sampled from the
    application template, exactly like the closed-loop generator — but one
    job at a time, so the engine can run arrival streams of arbitrary
    length in bounded memory.

    ``max_jobs`` and ``horizon`` cap the stream; an uncapped process with no
    cap runs forever, so supply at least one for finite experiments.
    """
    if applications is None:
        from repro.workloads.mixtures import default_applications

        applications = default_applications()
    names = list(application_names) if application_names else sorted(applications)
    missing = [name for name in names if name not in applications]
    if missing:
        raise ValueError(f"missing applications for open-loop workload: {missing}")

    stream: ArrivalProcess = process
    if horizon is not None:
        stream = stream.until(horizon)
    if max_jobs is not None:
        stream = stream.take(max_jobs)

    rng = make_rng(seed)
    for index, arrival in enumerate(stream.times()):
        app = applications[names[int(rng.integers(0, len(names)))]]
        yield app.sample_job(f"job-{index:06d}", float(arrival), rng)
