"""Synthetic stand-ins for the datasets used in the paper's evaluation.

The paper drives its six applications with real datasets: a synthetic
sequence dataset (sequence sorting), GoT's document set (document merging),
MBPP (code generation), HotpotQA (web search and LLMCompiler), and TaskBench
(task automation).  None of those are available offline, so each dataset here
is a deterministic synthetic generator that exposes the *properties the
applications actually consume*: per-query size/difficulty latents whose
ranges match the figures the paper reports (sequence lengths 16–64, chain
lengths 3–15, 1–8 generated stages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.rng import make_rng

__all__ = [
    "Query",
    "SyntheticSequenceDataset",
    "MbppLikeDataset",
    "HotpotQaLikeDataset",
    "TaskBenchLikeDataset",
]


@dataclass(frozen=True)
class Query:
    """One dataset entry.

    Attributes
    ----------
    query_id:
        Stable identifier within the dataset.
    size:
        Input-size latent (e.g. sequence length, document length, plan size).
    difficulty:
        Difficulty latent in [0, 1] driving retries/iterations.
    """

    query_id: int
    size: float
    difficulty: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError("difficulty must be within [0, 1]")


class _SyntheticDataset:
    """Base class: a fixed-size list of queries generated from a seed."""

    def __init__(self, size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ValueError("dataset size must be > 0")
        self._queries = self._generate(size, make_rng(seed))

    def _generate(self, size: int, rng: np.random.Generator) -> List[Query]:
        raise NotImplementedError

    @property
    def queries(self) -> List[Query]:
        return list(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    def sample(self, rng: np.random.Generator) -> Query:
        """Draw one query uniformly at random (with replacement)."""
        return self._queries[int(rng.integers(0, len(self._queries)))]


class SyntheticSequenceDataset(_SyntheticDataset):
    """500 random sequences of length 16–64 (paper Section III-A)."""

    def __init__(self, size: int = 500, seed: int = 0) -> None:
        super().__init__(size, seed)

    def _generate(self, size: int, rng: np.random.Generator) -> List[Query]:
        lengths = rng.integers(16, 65, size)
        difficulties = rng.uniform(0.0, 1.0, size)
        return [
            Query(query_id=i, size=float(lengths[i]), difficulty=float(difficulties[i]))
            for i in range(size)
        ]


class MbppLikeDataset(_SyntheticDataset):
    """974 programming tasks mimicking MBPP difficulty spread.

    ``difficulty`` controls how many Reflexion iterations a job needs and how
    long each code-generation call runs; ``size`` is a proxy for the length of
    the generated program.
    """

    def __init__(self, size: int = 974, seed: int = 1) -> None:
        super().__init__(size, seed)

    def _generate(self, size: int, rng: np.random.Generator) -> List[Query]:
        # Most MBPP problems are easy; a minority require several repair
        # rounds.  A Beta(1.6, 3.2) captures that skew.
        difficulties = rng.beta(1.6, 3.2, size)
        sizes = rng.uniform(20.0, 120.0, size)
        return [
            Query(query_id=i, size=float(sizes[i]), difficulty=float(difficulties[i]))
            for i in range(size)
        ]


class HotpotQaLikeDataset(_SyntheticDataset):
    """Multi-hop question-answering queries (web search, LLMCompiler).

    ``size`` is the number of supporting facts (hops, 2–6); ``difficulty``
    drives how many reasoning rounds the agent takes.
    """

    def __init__(self, size: int = 1200, seed: int = 2) -> None:
        super().__init__(size, seed)

    def _generate(self, size: int, rng: np.random.Generator) -> List[Query]:
        hops = rng.integers(2, 7, size)
        difficulties = rng.beta(2.0, 2.5, size)
        return [
            Query(query_id=i, size=float(hops[i]), difficulty=float(difficulties[i]))
            for i in range(size)
        ]


class TaskBenchLikeDataset(_SyntheticDataset):
    """Task-automation queries (TaskBench): complexity drives the plan size.

    ``size`` is the nominal number of tools the query needs (1–8, matching
    Fig. 1c); ``difficulty`` shifts tool durations.
    """

    def __init__(self, size: int = 2000, seed: int = 3) -> None:
        super().__init__(size, seed)

    def _generate(self, size: int, rng: np.random.Generator) -> List[Query]:
        # Plan sizes follow the skewed distribution of Fig. 1c: most plans are
        # small (1-3 tools), a tail needs many tools.
        plan_sizes = 1 + rng.binomial(7, 0.22, size)
        difficulties = rng.uniform(0.0, 1.0, size)
        return [
            Query(query_id=i, size=float(plan_sizes[i]), difficulty=float(difficulties[i]))
            for i in range(size)
        ]
