"""The six compound LLM applications used in the paper's evaluation.

Predefined:  sequence sorting, document merging        (Graph-of-Thoughts)
Chain-like:  code generation (Reflexion), web search   (ReAct)
Planning:    task automation (TaskBench), LLMCompiler

Each application is a generative :class:`~repro.dag.application.ApplicationTemplate`
fitted to the runtime characteristics the paper reports (job-duration ranges,
chain-length and generated-stage distributions, inter-stage correlations).
:mod:`repro.workloads.mixtures` assembles them into the four workload types of
the evaluation (Mixed / Predefined / Chain-like / Planning) with Poisson
arrivals.
"""

from repro.workloads.base import LatentScaledDuration, sample_lognormal
from repro.workloads.datasets import (
    MbppLikeDataset,
    HotpotQaLikeDataset,
    SyntheticSequenceDataset,
    TaskBenchLikeDataset,
)
from repro.workloads.sequence_sorting import SequenceSortingApplication
from repro.workloads.document_merging import DocumentMergingApplication
from repro.workloads.code_generation import CodeGenerationApplication
from repro.workloads.web_search import WebSearchApplication
from repro.workloads.task_automation import TaskAutomationApplication
from repro.workloads.llm_compiler import LlmCompilerApplication
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
    poisson_arrival_times,
)
from repro.workloads.serving import (
    DEFAULT_SLO_TARGETS,
    TOKEN_MIXES,
    TokenProfile,
    attach_token_model,
    available_token_mixes,
)
from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    OpenLoopSpec,
    PoissonProcess,
    TraceReplayProcess,
    open_loop_jobs,
    superpose,
)

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "TraceReplayProcess",
    "superpose",
    "OpenLoopSpec",
    "open_loop_jobs",
    "LatentScaledDuration",
    "sample_lognormal",
    "SyntheticSequenceDataset",
    "MbppLikeDataset",
    "HotpotQaLikeDataset",
    "TaskBenchLikeDataset",
    "SequenceSortingApplication",
    "DocumentMergingApplication",
    "CodeGenerationApplication",
    "WebSearchApplication",
    "TaskAutomationApplication",
    "LlmCompilerApplication",
    "WorkloadSpec",
    "WorkloadType",
    "default_applications",
    "generate_workload",
    "poisson_arrival_times",
    "TokenProfile",
    "TOKEN_MIXES",
    "DEFAULT_SLO_TARGETS",
    "available_token_mixes",
    "attach_token_model",
]
