"""Web search (ReAct) — a *chain-like* application.

The agent alternates between reasoning with the LLM and invoking a search
tool until it can answer the multi-hop question.  The number of
reason-search rounds depends on the question, so, as with code generation,
the chain is padded to the maximum number of rounds and unexecuted rounds
take duration 0.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dag.application import ApplicationTemplate, StageDraw
from repro.dag.job import Job
from repro.dag.stage import StageSpec, StageType
from repro.workloads.base import LatentScaledDuration, sample_truncated_geometric
from repro.workloads.datasets import HotpotQaLikeDataset

__all__ = ["WebSearchApplication"]


class WebSearchApplication(ApplicationTemplate):
    """Generator for ReAct-style web-search jobs (chain-like)."""

    name = "web_search"
    category = "chain"

    #: Maximum number of search-and-reason rounds after the initial thought.
    MAX_ROUNDS = 5

    # Duration models; latent = number of hops in the question (2-6).
    _THINK = LatentScaledDuration(base=0.8, scale_per_unit=0.5, noise_sigma=0.4)
    _SEARCH = LatentScaledDuration(base=0.4, scale_per_unit=0.05, noise_sigma=0.25)

    def __init__(self, dataset: Optional[HotpotQaLikeDataset] = None) -> None:
        self.dataset = dataset or HotpotQaLikeDataset()

    # ------------------------------------------------------------------ #
    def profile_variables(self) -> List[str]:
        variables = ["ws_think_0"]
        for i in range(1, self.MAX_ROUNDS + 1):
            variables.extend([f"ws_search_{i}", f"ws_think_{i}"])
        return variables

    def profile_edges(self) -> List[Tuple[str, str]]:
        variables = self.profile_variables()
        return list(zip(variables[:-1], variables[1:], strict=True))

    def llm_profile_keys(self) -> List[str]:
        return [v for v in self.profile_variables() if v.startswith("ws_think")]

    # ------------------------------------------------------------------ #
    def sample_rounds(self, query, rng: np.random.Generator) -> int:
        """Executed search rounds (1 .. MAX_ROUNDS), driven by hops and difficulty."""
        minimum = int(np.clip(round(query.size) - 1, 1, self.MAX_ROUNDS))
        continue_probability = 0.2 + 0.4 * query.difficulty
        return sample_truncated_geometric(rng, continue_probability, minimum, self.MAX_ROUNDS)

    def sample_job(
        self, job_id: str, arrival_time: float, rng: np.random.Generator
    ) -> Job:
        query = self.dataset.sample(rng)
        rounds = self.sample_rounds(query, rng)
        hops = query.size
        think_scale = rng.uniform(0.8, 1.2)

        def executed(key: str) -> bool:
            if key == "ws_think_0":
                return True
            round_index = int(key.rsplit("_", 1)[1])
            return round_index <= rounds

        draws: List[StageDraw] = []
        for key in self.profile_variables():
            is_think = key.startswith("ws_think")
            stage_type = StageType.LLM if is_think else StageType.REGULAR
            if is_think:
                duration = self._THINK.sample(rng, hops) * think_scale
            else:
                duration = self._SEARCH.sample(rng, hops)
            draws.append(
                StageDraw(
                    spec=StageSpec(
                        stage_id=key,
                        stage_type=stage_type,
                        name=key,
                        num_tasks=1,
                        profile_key=key,
                    ),
                    task_durations=[duration],
                    will_execute=executed(key),
                )
            )
        return self.build_job(job_id, arrival_time, draws, self.profile_edges())
