"""Task automation (TaskBench / HuggingGPT) — a *planning* application.

A single LLM planning stage analyses the user's request and selects a set of
tools (deep-learning models) plus the dependencies between them.  The
selected tools only become known when the planner finishes — the paper
models this with a *dynamic stage* whose candidate set lists every tool the
planner may invoke.  The number of generated stages per job matches the
1–8 range of the paper's Fig. 1c.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dag.application import ApplicationTemplate, StageDraw
from repro.dag.dynamic import StageCandidate
from repro.dag.job import Job
from repro.dag.stage import StageSpec, StageType
from repro.workloads.base import LatentScaledDuration, sample_lognormal
from repro.workloads.datasets import TaskBenchLikeDataset

__all__ = ["TaskAutomationApplication"]


class TaskAutomationApplication(ApplicationTemplate):
    """Generator for task-automation jobs (planning category)."""

    name = "task_automation"
    category = "planning"

    PLAN_KEY = "ta_plan"
    DYNAMIC_KEY = "ta_dynamic"

    #: The tool zoo: name -> (mean duration in seconds, selection probability).
    #: Durations follow typical model-inference latencies — lightweight NLP
    #: models are fast, generative vision models are slow — which produces the
    #: long right tail of job durations (up to ~2 minutes) the paper observes.
    TOOLS: Dict[str, Tuple[float, float]] = {
        "text_translation": (1.0, 0.60),
        "text_summarization": (1.4, 0.55),
        "image_caption": (2.0, 0.45),
        "object_detection": (2.6, 0.40),
        "image_segmentation": (3.5, 0.30),
        "speech_recognition": (5.0, 0.25),
        "video_caption": (14.0, 0.15),
        "image_generation": (30.0, 0.10),
    }

    #: Probability that two consecutively selected tools are dependent.
    EDGE_PROBABILITY = 0.5

    # Planner duration grows mildly with the plan size; it stays cheap (a few
    # seconds) even for large plans, which is what makes it such an effective
    # uncertainty-reducing probe (the paper's Fig. 2 example uses a 2 s planner
    # for a 15 s-mean application).
    _PLAN = LatentScaledDuration(base=0.8, scale_per_unit=0.3, noise_sigma=0.35)

    def __init__(self, dataset: Optional[TaskBenchLikeDataset] = None) -> None:
        self.dataset = dataset or TaskBenchLikeDataset()

    # ------------------------------------------------------------------ #
    def profile_variables(self) -> List[str]:
        return [self.PLAN_KEY] + [self.tool_profile_key(t) for t in self.TOOLS]

    def profile_edges(self) -> List[Tuple[str, str]]:
        return [(self.PLAN_KEY, self.tool_profile_key(t)) for t in self.TOOLS]

    def llm_profile_keys(self) -> List[str]:
        return [self.PLAN_KEY]

    @classmethod
    def tool_profile_key(cls, tool: str) -> str:
        return f"ta_tool_{tool}"

    def dynamic_candidates(self) -> Dict[str, List[StageCandidate]]:
        candidates = [
            StageCandidate(
                name=tool,
                is_llm=False,
                mean_duration=mean,
                selection_probability=prob,
            )
            for tool, (mean, prob) in self.TOOLS.items()
        ]
        return {self.DYNAMIC_KEY: candidates}

    # ------------------------------------------------------------------ #
    def sample_plan(self, query, rng: np.random.Generator) -> List[str]:
        """Select the tools for one job, respecting the query's plan size.

        Tool selection follows the per-tool historical frequencies, so most
        plans are a handful of fast NLP/vision tools and only the occasional
        plan includes the slow generative models — this produces the strongly
        right-skewed job-duration distribution (roughly 1 s to 2 minutes, mean
        well above the median) reported in the paper's workload analysis.
        """
        plan_size = int(np.clip(round(query.size), 1, len(self.TOOLS)))
        names = list(self.TOOLS)
        weights = np.array([self.TOOLS[n][1] for n in names])
        weights = weights / weights.sum()
        chosen = rng.choice(len(names), size=plan_size, replace=False, p=weights)
        return [names[i] for i in sorted(chosen)]

    def sample_job(
        self, job_id: str, arrival_time: float, rng: np.random.Generator
    ) -> Job:
        query = self.dataset.sample(rng)
        selected = self.sample_plan(query, rng)
        plan_duration = self._PLAN.sample(rng, float(len(selected)))

        draws: List[StageDraw] = [
            StageDraw(
                spec=StageSpec(
                    stage_id=self.PLAN_KEY,
                    stage_type=StageType.LLM,
                    name="task_plan",
                    num_tasks=1,
                    profile_key=self.PLAN_KEY,
                ),
                task_durations=[plan_duration],
            ),
            StageDraw(
                spec=StageSpec(
                    stage_id=self.DYNAMIC_KEY,
                    stage_type=StageType.DYNAMIC,
                    name="generated_plan",
                    num_tasks=0,
                    profile_key=self.DYNAMIC_KEY,
                ),
                task_durations=[],
            ),
        ]
        edges: List[Tuple[str, str]] = [(self.PLAN_KEY, self.DYNAMIC_KEY)]
        reveals: List[Tuple[str, str]] = []

        difficulty_scale = 0.7 + 0.6 * query.difficulty
        for tool in selected:
            mean, _ = self.TOOLS[tool]
            duration = sample_lognormal(rng, mean * difficulty_scale, sigma=0.3)
            stage_id = f"tool_{tool}"
            draws.append(
                StageDraw(
                    spec=StageSpec(
                        stage_id=stage_id,
                        stage_type=StageType.REGULAR,
                        name=tool,
                        num_tasks=1,
                        profile_key=self.tool_profile_key(tool),
                    ),
                    task_durations=[duration],
                    visible=False,
                )
            )
            edges.append((self.PLAN_KEY, stage_id))
            edges.append((stage_id, self.DYNAMIC_KEY))
            reveals.append((self.PLAN_KEY, stage_id))

        # Dependencies between consecutive selected tools (sequential plans).
        for left, right in zip(selected[:-1], selected[1:], strict=True):
            if rng.random() < self.EDGE_PROBABILITY:
                edges.append((f"tool_{left}", f"tool_{right}"))

        return self.build_job(job_id, arrival_time, draws, edges, reveals)
