"""Code generation (Reflexion) — a *chain-like* application.

Given a programming task, the LLM first generates test cases, then iterates:
generate code (LLM), execute it against the tests (regular), and reflect on
the failures (LLM) — until the tests pass or the maximum number of repair
iterations is reached.  The chain length is therefore revealed only at
runtime: this is the structural uncertainty of the paper's Fig. 1b
(3–15 stages).  Following the paper, the DAG is padded to the maximum length
and unexecuted stages take duration 0.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dag.application import ApplicationTemplate, StageDraw
from repro.dag.job import Job
from repro.dag.stage import StageSpec, StageType
from repro.workloads.base import (
    LatentScaledDuration,
    sample_lognormal,
    sample_truncated_geometric,
)
from repro.workloads.datasets import MbppLikeDataset

__all__ = ["CodeGenerationApplication"]


class CodeGenerationApplication(ApplicationTemplate):
    """Generator for Reflexion-style code-generation jobs (chain-like)."""

    name = "code_generation"
    category = "chain"

    #: Maximum number of repair iterations after the initial attempt; the
    #: padded chain length is 3 + 3 * MAX_ITERATIONS = 15 stages, matching
    #: the 3-15 range of the paper's Fig. 1b.
    MAX_ITERATIONS = 4

    #: Spread of the per-job code-verbosity factor shared by all generation
    #: and reflection stages (drives the ~0.9 correlations of Fig. 5b).
    VERBOSITY_SIGMA = 0.4

    # Duration models; latent = program size proxy (20-120).
    _TEST_GEN = LatentScaledDuration(base=1.0, scale_per_unit=0.020, noise_sigma=0.15)
    _CODE_GEN = LatentScaledDuration(base=1.2, scale_per_unit=0.035, noise_sigma=0.15)
    _CODE_EXEC = LatentScaledDuration(base=0.15, scale_per_unit=0.002, noise_sigma=0.2)
    _REFLEX = LatentScaledDuration(base=0.8, scale_per_unit=0.020, noise_sigma=0.15)

    def __init__(self, dataset: Optional[MbppLikeDataset] = None) -> None:
        self.dataset = dataset or MbppLikeDataset()

    # ------------------------------------------------------------------ #
    # Static structure (padded chain)
    # ------------------------------------------------------------------ #
    def profile_variables(self) -> List[str]:
        variables = ["cg_testgen", "cg_codegen_0", "cg_exec_0"]
        for i in range(1, self.MAX_ITERATIONS + 1):
            variables.extend([f"cg_reflex_{i}", f"cg_codegen_{i}", f"cg_exec_{i}"])
        return variables

    def profile_edges(self) -> List[Tuple[str, str]]:
        variables = self.profile_variables()
        return list(zip(variables[:-1], variables[1:], strict=True))

    def llm_profile_keys(self) -> List[str]:
        return [v for v in self.profile_variables() if "exec" not in v]

    @staticmethod
    def _stage_type(key: str) -> StageType:
        return StageType.REGULAR if "exec" in key else StageType.LLM

    # ------------------------------------------------------------------ #
    def sample_iterations(self, difficulty: float, rng: np.random.Generator) -> int:
        """Number of executed repair iterations (0 .. MAX_ITERATIONS).

        Most problems pass on the first attempt; hard ones keep iterating up
        to the cap, giving the right-skewed chain-length distribution of the
        paper's Fig. 1b.
        """
        continue_probability = 0.15 + 0.65 * float(np.clip(difficulty, 0.0, 1.0)) ** 2
        return sample_truncated_geometric(rng, continue_probability, 0, self.MAX_ITERATIONS)

    def chain_length(self, iterations: int) -> int:
        """Executed chain length in stages (3 for zero repair iterations)."""
        return 3 + 3 * iterations

    def sample_job(
        self, job_id: str, arrival_time: float, rng: np.random.Generator
    ) -> Job:
        query = self.dataset.sample(rng)
        iterations = self.sample_iterations(query.difficulty, rng)
        size = query.size

        # The generated code of consecutive iterations is similar, so the
        # per-iteration LLM durations share a job-level draw (this yields the
        # ~0.9 Pearson correlation between repair stages in Fig. 5b).
        code_scale = sample_lognormal(rng, 1.0, self.VERBOSITY_SIGMA)

        def executed(key: str) -> bool:
            if key in ("cg_testgen", "cg_codegen_0", "cg_exec_0"):
                return True
            iteration = int(key.rsplit("_", 1)[1])
            return iteration <= iterations

        draws: List[StageDraw] = []
        for key in self.profile_variables():
            stage_type = self._stage_type(key)
            if key == "cg_testgen":
                duration = self._TEST_GEN.sample(rng, size)
            elif key.startswith("cg_codegen"):
                duration = self._CODE_GEN.sample(rng, size) * code_scale
            elif key.startswith("cg_reflex"):
                duration = self._REFLEX.sample(rng, size) * code_scale
            else:
                duration = self._CODE_EXEC.sample(rng, size)
            draws.append(
                StageDraw(
                    spec=StageSpec(
                        stage_id=key,
                        stage_type=stage_type,
                        name=key,
                        num_tasks=1,
                        profile_key=key,
                    ),
                    task_durations=[duration],
                    will_execute=executed(key),
                )
            )
        return self.build_job(job_id, arrival_time, draws, self.profile_edges())
