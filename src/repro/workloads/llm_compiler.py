"""LLMCompiler — a *planning* application with highly parallel function calls.

The planner LLM decomposes the question into independent function calls
(search, lookup, calculator, ...), which can all run in parallel, and a
joiner LLM stage fuses their results.  This is the workload in the paper
with high *stage* parallelism but low *task* parallelism (each generated
stage holds a single task), which is exactly the pattern that degrades
Decima-style one-stage-at-a-time schedulers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dag.application import ApplicationTemplate, StageDraw
from repro.dag.dynamic import StageCandidate
from repro.dag.job import Job
from repro.dag.stage import StageSpec, StageType
from repro.workloads.base import LatentScaledDuration, sample_lognormal
from repro.workloads.datasets import HotpotQaLikeDataset

__all__ = ["LlmCompilerApplication"]


class LlmCompilerApplication(ApplicationTemplate):
    """Generator for LLMCompiler jobs (planning category)."""

    name = "llm_compiler"
    category = "planning"

    PLAN_KEY = "lc_plan"
    DYNAMIC_KEY = "lc_dynamic"
    JOIN_KEY = "lc_join"

    #: Function-call tools: name -> (mean duration, selection probability).
    TOOLS: Dict[str, Tuple[float, float]] = {
        "web_search": (1.6, 0.65),
        "wiki_lookup": (1.2, 0.55),
        "calculator": (0.3, 0.35),
        "math_solver": (0.8, 0.30),
        "code_exec": (0.6, 0.30),
        "database_query": (1.0, 0.35),
    }

    # Planner/joiner durations scale with the number of hops in the question.
    _PLAN = LatentScaledDuration(base=1.2, scale_per_unit=0.35, noise_sigma=0.4)
    _JOIN = LatentScaledDuration(base=1.0, scale_per_unit=0.30, noise_sigma=0.4)

    def __init__(self, dataset: Optional[HotpotQaLikeDataset] = None) -> None:
        self.dataset = dataset or HotpotQaLikeDataset(seed=5)

    # ------------------------------------------------------------------ #
    def profile_variables(self) -> List[str]:
        return (
            [self.PLAN_KEY]
            + [self.tool_profile_key(t) for t in self.TOOLS]
            + [self.JOIN_KEY]
        )

    def profile_edges(self) -> List[Tuple[str, str]]:
        edges = [(self.PLAN_KEY, self.tool_profile_key(t)) for t in self.TOOLS]
        edges += [(self.tool_profile_key(t), self.JOIN_KEY) for t in self.TOOLS]
        return edges

    def llm_profile_keys(self) -> List[str]:
        return [self.PLAN_KEY, self.JOIN_KEY]

    @classmethod
    def tool_profile_key(cls, tool: str) -> str:
        return f"lc_tool_{tool}"

    def dynamic_candidates(self) -> Dict[str, List[StageCandidate]]:
        candidates = [
            StageCandidate(
                name=tool,
                is_llm=False,
                mean_duration=mean,
                selection_probability=prob,
            )
            for tool, (mean, prob) in self.TOOLS.items()
        ]
        return {self.DYNAMIC_KEY: candidates}

    # ------------------------------------------------------------------ #
    def sample_calls(self, query, rng: np.random.Generator) -> List[str]:
        """Function calls for one job: 2-6 parallel tools, hop-dependent."""
        count = int(np.clip(round(query.size), 2, len(self.TOOLS)))
        names = list(self.TOOLS)
        weights = np.array([self.TOOLS[n][1] for n in names])
        weights = weights / weights.sum()
        chosen = rng.choice(len(names), size=count, replace=False, p=weights)
        return [names[i] for i in sorted(chosen)]

    def sample_job(
        self, job_id: str, arrival_time: float, rng: np.random.Generator
    ) -> Job:
        query = self.dataset.sample(rng)
        selected = self.sample_calls(query, rng)
        hops = query.size

        draws: List[StageDraw] = [
            StageDraw(
                spec=StageSpec(
                    stage_id=self.PLAN_KEY,
                    stage_type=StageType.LLM,
                    name="plan",
                    num_tasks=1,
                    profile_key=self.PLAN_KEY,
                ),
                task_durations=[self._PLAN.sample(rng, hops)],
            ),
            StageDraw(
                spec=StageSpec(
                    stage_id=self.DYNAMIC_KEY,
                    stage_type=StageType.DYNAMIC,
                    name="function_calls",
                    num_tasks=0,
                    profile_key=self.DYNAMIC_KEY,
                ),
                task_durations=[],
            ),
            StageDraw(
                spec=StageSpec(
                    stage_id=self.JOIN_KEY,
                    stage_type=StageType.LLM,
                    name="join",
                    num_tasks=1,
                    profile_key=self.JOIN_KEY,
                ),
                task_durations=[self._JOIN.sample(rng, hops)],
            ),
        ]
        edges: List[Tuple[str, str]] = [
            (self.PLAN_KEY, self.DYNAMIC_KEY),
            (self.DYNAMIC_KEY, self.JOIN_KEY),
        ]
        reveals: List[Tuple[str, str]] = []

        for tool in selected:
            mean, _ = self.TOOLS[tool]
            duration = sample_lognormal(rng, mean, sigma=0.3)
            stage_id = f"call_{tool}"
            draws.append(
                StageDraw(
                    spec=StageSpec(
                        stage_id=stage_id,
                        stage_type=StageType.REGULAR,
                        name=tool,
                        num_tasks=1,
                        profile_key=self.tool_profile_key(tool),
                    ),
                    task_durations=[duration],
                    visible=False,
                )
            )
            edges.append((self.PLAN_KEY, stage_id))
            edges.append((stage_id, self.DYNAMIC_KEY))
            reveals.append((self.PLAN_KEY, stage_id))

        return self.build_job(job_id, arrival_time, draws, edges, reveals)
