"""Workload assembly: the four workload types of the paper's evaluation.

* Mixed       — jobs uniformly distributed across all six applications.
* Predefined  — 50% sequence sorting, 50% document merging.
* Chain-like  — 50% code generation, 50% web search.
* Planning    — 50% task automation, 50% LLMCompiler.

Job arrivals follow a Poisson process with rate ``lambda`` as in the paper
(default 0.9 jobs/s, 300 jobs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dag.application import ApplicationTemplate
from repro.dag.job import Job
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive
from repro.workloads.code_generation import CodeGenerationApplication
from repro.workloads.document_merging import DocumentMergingApplication
from repro.workloads.llm_compiler import LlmCompilerApplication
from repro.workloads.sequence_sorting import SequenceSortingApplication
from repro.workloads.task_automation import TaskAutomationApplication
from repro.workloads.web_search import WebSearchApplication

__all__ = [
    "WorkloadType",
    "WorkloadSpec",
    "default_applications",
    "poisson_arrival_times",
    "generate_workload",
]


class WorkloadType(enum.Enum):
    """The four workload mixes of the paper's evaluation (Fig. 7/8)."""

    MIXED = "mixed"
    PREDEFINED = "predefined"
    CHAIN = "chain"
    PLANNING = "planning"


def default_applications() -> Dict[str, ApplicationTemplate]:
    """Instantiate the six applications with their default datasets."""
    applications = [
        SequenceSortingApplication(),
        DocumentMergingApplication(),
        CodeGenerationApplication(),
        WebSearchApplication(),
        TaskAutomationApplication(),
        LlmCompilerApplication(),
    ]
    return {app.name: app for app in applications}


_WORKLOAD_APPS: Dict[WorkloadType, List[str]] = {
    WorkloadType.MIXED: [
        "sequence_sorting",
        "document_merging",
        "code_generation",
        "web_search",
        "task_automation",
        "llm_compiler",
    ],
    WorkloadType.PREDEFINED: ["sequence_sorting", "document_merging"],
    WorkloadType.CHAIN: ["code_generation", "web_search"],
    WorkloadType.PLANNING: ["task_automation", "llm_compiler"],
}


def poisson_arrival_times(
    count: int, arrival_rate: float, rng: np.random.Generator
) -> List[float]:
    """Arrival times of a Poisson process with ``arrival_rate`` jobs per second."""
    if count < 0:
        raise ValueError("count must be >= 0")
    require_positive(arrival_rate, "arrival_rate")
    gaps = rng.exponential(1.0 / arrival_rate, count)
    return list(np.cumsum(gaps))


@dataclass
class WorkloadSpec:
    """A fully-specified workload draw.

    Attributes
    ----------
    workload_type:
        Which of the four mixes to generate.
    num_jobs:
        Total number of jobs (paper default 300).
    arrival_rate:
        Poisson arrival rate λ in jobs/s (paper default 0.9).
    seed:
        Seed for the workload RNG; the same spec + seed always produces the
        identical list of jobs, so schedulers can be compared on identical
        inputs.
    """

    workload_type: WorkloadType = WorkloadType.MIXED
    num_jobs: int = 300
    arrival_rate: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be > 0")
        require_positive(self.arrival_rate, "arrival_rate")

    @property
    def application_names(self) -> List[str]:
        return list(_WORKLOAD_APPS[self.workload_type])


def generate_workload(
    spec: WorkloadSpec,
    applications: Optional[Dict[str, ApplicationTemplate]] = None,
) -> List[Job]:
    """Generate the job list for a workload spec, sorted by arrival time.

    Jobs are assigned to applications round-robin (which realises the
    paper's "uniformly distributed across applications" mix exactly) and the
    assignment is shuffled so that arrival order is not biased towards any
    application.
    """
    applications = applications or default_applications()
    app_names = _WORKLOAD_APPS[spec.workload_type]
    missing = [name for name in app_names if name not in applications]
    if missing:
        raise ValueError(f"missing applications for workload: {missing}")

    rng = make_rng(spec.seed)
    arrivals = poisson_arrival_times(spec.num_jobs, spec.arrival_rate, rng)
    assignment = [app_names[i % len(app_names)] for i in range(spec.num_jobs)]
    rng.shuffle(assignment)

    jobs: List[Job] = []
    for index, (arrival, app_name) in enumerate(zip(arrivals, assignment, strict=True)):
        app = applications[app_name]
        job = app.sample_job(f"job-{index:04d}", float(arrival), rng)
        jobs.append(job)
    return jobs
