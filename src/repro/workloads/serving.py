"""Token profiles for serving workloads: chat / batch / agentic traffic.

The paper's evaluation treats an LLM stage as one opaque duration.  Real
serving fleets see *requests*: a prompt processed in one prefill pass
followed by an autoregressive decode stream, with per-tier latency SLOs
(TTFT for responsiveness, TPOT for stream smoothness).  This module layers
that view on top of the existing generators without changing any duration:
:func:`attach_token_model` samples per-request ``prompt_tokens`` /
``output_tokens`` from seeded mix distributions and *decomposes* each LLM
task's ground-truth ``work`` into a prefill and a decode phase, so the
clock arithmetic — and therefore every legacy trace — is untouched.

A mix is a weighted set of :class:`TokenProfile` draws modelled on the
three canonical serving traffic classes:

* ``chat``    — short prompts, mid-length replies, interactive tier.
* ``batch``   — long documents in, long summaries out, throughput tier.
* ``agentic`` — many short tool-calling turns, interactive tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.dag.job import Job
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive
from repro.workloads.base import sample_lognormal

__all__ = [
    "TokenProfile",
    "TOKEN_MIXES",
    "DEFAULT_SLO_TARGETS",
    "available_token_mixes",
    "attach_token_model",
]

#: Fraction of decode-token cost one *prompt* token costs during prefill.
#: Prefill processes the whole prompt in parallel passes, so per-token it
#: is far cheaper than autoregressive decode; 0.15 sits in the range real
#: serving engines report (prefill throughput ~5-10x decode throughput).
PREFILL_TOKEN_COST = 0.15


@dataclass(frozen=True)
class TokenProfile:
    """Lognormal prompt/output token distribution for one request class."""

    name: str
    tier: str
    prompt_mean: float
    output_mean: float
    prompt_sigma: float = 0.6
    output_sigma: float = 0.6
    min_tokens: int = 4

    def __post_init__(self) -> None:
        require_positive(self.prompt_mean, "prompt_mean")
        require_positive(self.output_mean, "output_mean")
        if self.min_tokens < 1:
            raise ValueError("min_tokens must be >= 1")

    def sample(self, rng: np.random.Generator) -> Tuple[int, int]:
        prompt = sample_lognormal(rng, self.prompt_mean, self.prompt_sigma, self.min_tokens)
        output = sample_lognormal(rng, self.output_mean, self.output_sigma, self.min_tokens)
        return max(self.min_tokens, round(prompt)), max(self.min_tokens, round(output))


#: The three canonical serving traffic classes as weighted profile draws.
TOKEN_MIXES: Dict[str, Sequence[Tuple[TokenProfile, float]]] = {
    "chat": (
        (TokenProfile("chat_turn", "interactive", prompt_mean=180.0, output_mean=240.0), 0.8),
        (TokenProfile("chat_long", "interactive", prompt_mean=900.0, output_mean=500.0), 0.2),
    ),
    "batch": (
        (TokenProfile("doc_summarize", "batch", prompt_mean=3000.0, output_mean=600.0), 0.6),
        (TokenProfile("doc_extract", "batch", prompt_mean=2000.0, output_mean=150.0), 0.4),
    ),
    "agentic": (
        (TokenProfile("tool_call", "interactive", prompt_mean=400.0, output_mean=60.0), 0.6),
        (TokenProfile("agent_plan", "interactive", prompt_mean=600.0, output_mean=300.0), 0.3),
        (TokenProfile("agent_batch", "batch", prompt_mean=1500.0, output_mean=400.0), 0.1),
    ),
}

#: Per-tier serving SLOs (seconds) matched to the simulator's duration
#: scale; specs can override them through their SLOSection.
DEFAULT_SLO_TARGETS: Dict[str, Dict[str, float]] = {
    "interactive": {"ttft": 8.0, "tpot": 0.08},
    "batch": {"ttft": 60.0, "tpot": 0.5},
}


def available_token_mixes() -> List[str]:
    """Names accepted by :func:`attach_token_model` (and spec ``token_mix``)."""
    return sorted(TOKEN_MIXES)


def _prefill_split(work: float, prompt_tokens: int, output_tokens: int) -> float:
    """Prefill share of ``work`` under the relative per-token cost model.

    ``work`` is split proportionally to ``prompt_tokens * PREFILL_TOKEN_COST``
    (prefill) vs ``output_tokens - 1`` (decode iterations after the first
    token); a single-token request is pure prefill.  The two shares always
    sum to exactly ``work``, so the decomposition never perturbs the clock.
    """
    prefill_cost = prompt_tokens * PREFILL_TOKEN_COST
    decode_cost = max(0, output_tokens - 1)
    if decode_cost == 0:
        return work
    return work * prefill_cost / (prefill_cost + decode_cost)


def attach_token_model(
    jobs: Iterable[Job],
    mix: str,
    seed: int = 0,
) -> int:
    """Attach sampled token counts to every LLM task of every job.

    Jobs are processed in the given order with a dedicated, seeded RNG, so
    the same (jobs, mix, seed) triple always produces identical token
    streams regardless of how the jobs themselves were generated.  Each job
    draws one profile (all its requests belong to one conversation class)
    and inherits the profile's SLO tier as ``job.priority``.  Returns the
    number of tasks annotated.
    """
    if mix not in TOKEN_MIXES:
        raise ValueError(f"unknown token mix {mix!r}; available: {available_token_mixes()}")
    profiles = [p for p, _ in TOKEN_MIXES[mix]]
    weights = np.asarray([w for _, w in TOKEN_MIXES[mix]], dtype=float)
    weights = weights / weights.sum()
    rng = make_rng(seed)
    annotated = 0
    for job in jobs:
        profile = profiles[int(rng.choice(len(profiles), p=weights))]
        job.priority = profile.tier
        for stage in job.stages.values():
            if not stage.is_llm:
                continue
            for task in stage.tasks:
                prompt_tokens, output_tokens = profile.sample(rng)
                task.set_token_model(
                    prompt_tokens,
                    output_tokens,
                    _prefill_split(task.work, prompt_tokens, output_tokens),
                )
                annotated += 1
    return annotated
