"""Sequence sorting (Graph-of-Thoughts) — a *predefined* application.

The LLM splits the input sequence into two halves, sorts each half with
several candidate generations that are scored and selected by user-defined
functions, merges the sorted halves, and refines the merged result.  The DAG
is fixed; the uncertainty is purely in stage durations, which all scale with
the input sequence length (hence the strong inter-stage correlations of the
paper's Fig. 5a).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dag.application import ApplicationTemplate, StageDraw
from repro.dag.job import Job
from repro.dag.stage import StageSpec, StageType
from repro.workloads.base import LatentScaledDuration, sample_lognormal
from repro.workloads.datasets import SyntheticSequenceDataset

__all__ = ["SequenceSortingApplication"]


class SequenceSortingApplication(ApplicationTemplate):
    """Generator for sequence-sorting jobs (predefined category)."""

    name = "sequence_sorting"
    category = "predefined"

    #: Number of candidate generations per sort stage (Graph-of-Thoughts uses
    #: several parallel samples per transformation).
    CANDIDATES_PER_SORT = 3

    #: Spread of the per-job "verbosity" factor: jobs whose LLM happens to
    #: produce long outputs are uniformly slow across all their LLM stages,
    #: which is the source of the strong inter-stage correlations in Fig. 5a.
    VERBOSITY_SIGMA = 0.45

    # Duration models: latent = sequence length (16-64 elements).
    _DURATIONS: Dict[str, LatentScaledDuration] = {
        "ss_split": LatentScaledDuration(base=1.0, scale_per_unit=0.18, noise_sigma=0.18),
        "ss_select_1": LatentScaledDuration(base=0.3, scale_per_unit=0.0, noise_sigma=0.1),
        "ss_select_2": LatentScaledDuration(base=0.3, scale_per_unit=0.0, noise_sigma=0.1),
        # per-candidate duration of each half-sort (latent halves the length)
        "ss_sort_1": LatentScaledDuration(base=0.8, scale_per_unit=0.12, noise_sigma=0.2),
        "ss_sort_2": LatentScaledDuration(base=0.8, scale_per_unit=0.12, noise_sigma=0.2),
        "ss_score_1": LatentScaledDuration(base=0.4, scale_per_unit=0.0, noise_sigma=0.1),
        "ss_score_2": LatentScaledDuration(base=0.4, scale_per_unit=0.0, noise_sigma=0.1),
        "ss_merge": LatentScaledDuration(base=1.5, scale_per_unit=0.28, noise_sigma=0.2),
        "ss_score_merge": LatentScaledDuration(base=0.4, scale_per_unit=0.0, noise_sigma=0.1),
        "ss_refine": LatentScaledDuration(base=1.2, scale_per_unit=0.22, noise_sigma=0.2),
        "ss_score_final": LatentScaledDuration(base=0.4, scale_per_unit=0.0, noise_sigma=0.1),
    }

    _STAGE_TYPES: Dict[str, StageType] = {
        "ss_split": StageType.LLM,
        "ss_select_1": StageType.REGULAR,
        "ss_select_2": StageType.REGULAR,
        "ss_sort_1": StageType.LLM,
        "ss_sort_2": StageType.LLM,
        "ss_score_1": StageType.REGULAR,
        "ss_score_2": StageType.REGULAR,
        "ss_merge": StageType.LLM,
        "ss_score_merge": StageType.REGULAR,
        "ss_refine": StageType.LLM,
        "ss_score_final": StageType.REGULAR,
    }

    _EDGES: List[Tuple[str, str]] = [
        ("ss_split", "ss_select_1"),
        ("ss_split", "ss_select_2"),
        ("ss_select_1", "ss_sort_1"),
        ("ss_select_2", "ss_sort_2"),
        ("ss_sort_1", "ss_score_1"),
        ("ss_sort_2", "ss_score_2"),
        ("ss_score_1", "ss_merge"),
        ("ss_score_2", "ss_merge"),
        ("ss_merge", "ss_score_merge"),
        ("ss_score_merge", "ss_refine"),
        ("ss_refine", "ss_score_final"),
    ]

    def __init__(self, dataset: Optional[SyntheticSequenceDataset] = None) -> None:
        self.dataset = dataset or SyntheticSequenceDataset()

    # ------------------------------------------------------------------ #
    def profile_variables(self) -> List[str]:
        return list(self._DURATIONS)

    def profile_edges(self) -> List[Tuple[str, str]]:
        return list(self._EDGES)

    def llm_profile_keys(self) -> List[str]:
        return [k for k, t in self._STAGE_TYPES.items() if t is StageType.LLM]

    # ------------------------------------------------------------------ #
    def sample_job(
        self, job_id: str, arrival_time: float, rng: np.random.Generator
    ) -> Job:
        query = self.dataset.sample(rng)
        sequence_length = query.size
        # Job-level verbosity: shared by every LLM stage of this job.
        verbosity = sample_lognormal(rng, 1.0, self.VERBOSITY_SIGMA)
        draws: List[StageDraw] = []
        for key, stage_type in self._STAGE_TYPES.items():
            model = self._DURATIONS[key]
            if key in ("ss_sort_1", "ss_sort_2"):
                # Candidate generations over one half of the sequence.
                durations = [
                    model.sample(rng, sequence_length / 2.0) * verbosity
                    for _ in range(self.CANDIDATES_PER_SORT)
                ]
            elif stage_type is StageType.LLM:
                durations = [model.sample(rng, sequence_length) * verbosity]
            else:
                durations = [model.sample(rng, 0.0)]
            draws.append(
                StageDraw(
                    spec=StageSpec(
                        stage_id=key,
                        stage_type=stage_type,
                        name=key,
                        num_tasks=len(durations),
                        profile_key=key,
                    ),
                    task_durations=durations,
                )
            )
        return self.build_job(job_id, arrival_time, draws, self._EDGES)
