"""Shared building blocks for the application generators.

The paper's workload characterisation (Section III) shows that compound LLM
applications have (a) heavy-tailed, widely varying job durations driven by
autoregressive generation and (b) strong inter-stage duration correlations
caused by shared job-level factors (input length, task difficulty).  The
helpers here encode that pattern: each job draws a latent factor from its
dataset query, and every LLM stage's duration scales with that factor times
independent lognormal noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["sample_lognormal", "LatentScaledDuration", "sample_truncated_geometric"]


def sample_lognormal(
    rng: np.random.Generator,
    mean: float,
    sigma: float = 0.35,
    minimum: float = 0.05,
) -> float:
    """Sample a heavy-tailed positive duration with the given mean.

    The underlying normal is parameterised so that the lognormal's mean is
    ``mean`` (not its median), which keeps historical-average estimates used
    by SJF-style baselines consistent with the generator.
    """
    require_positive(mean, "mean")
    require_non_negative(sigma, "sigma")
    if sigma == 0.0:
        return max(minimum, mean)
    mu = np.log(mean) - 0.5 * sigma**2
    return float(max(minimum, rng.lognormal(mu, sigma)))


def sample_truncated_geometric(
    rng: np.random.Generator,
    continue_probability: float,
    minimum: int,
    maximum: int,
) -> int:
    """Sample the number of iterations of a chain-like application.

    Starting at ``minimum``, each additional iteration happens with
    ``continue_probability`` until ``maximum`` is reached.  This matches the
    paper's observation that chain lengths concentrate near the minimum with
    a tail up to the configured cap (Fig. 1b).
    """
    if not 0.0 <= continue_probability <= 1.0:
        raise ValueError("continue_probability must be within [0, 1]")
    if minimum > maximum:
        raise ValueError("minimum must be <= maximum")
    count = minimum
    while count < maximum and rng.random() < continue_probability:
        count += 1
    return count


@dataclass(frozen=True)
class LatentScaledDuration:
    """Duration model: ``base + scale_per_unit * latent``, with lognormal noise.

    Stages of the same job share the latent factor, which is what produces
    the strong Pearson correlations of the paper's Fig. 5 heatmaps.
    """

    base: float
    scale_per_unit: float = 0.0
    noise_sigma: float = 0.25

    def __post_init__(self) -> None:
        require_non_negative(self.base, "base")
        require_non_negative(self.scale_per_unit, "scale_per_unit")
        require_non_negative(self.noise_sigma, "noise_sigma")

    def sample(self, rng: np.random.Generator, latent: float = 0.0) -> float:
        """Sample one duration for a job with the given latent factor."""
        require_non_negative(latent, "latent")
        mean = self.base + self.scale_per_unit * latent
        if mean <= 0:
            return 0.0
        return sample_lognormal(rng, mean, self.noise_sigma)

    def mean(self, latent: float = 0.0) -> float:
        """Expected duration for the given latent factor (noise averages out)."""
        return self.base + self.scale_per_unit * latent
