"""Parameter and structure learning for the profiler's Bayesian networks.

Structure: the profiler knows each application's stage DAG, and the paper's
heatmaps (Fig. 5) show that duration correlations largely follow the data-flow
edges.  We therefore learn structure by scoring candidate edges with the
absolute Pearson correlation of the training durations, restricted to pairs
ordered by the stage topological order (which keeps the graph acyclic), and
keeping edges above a threshold with a per-node parent cap for tractability.

Parameters: maximum-likelihood estimation of each CPD with Laplace smoothing,
so that unseen parent configurations fall back towards uniform instead of
producing zero-probability states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bayes.cpd import TabularCPD
from repro.bayes.network import DiscreteBayesianNetwork
from repro.utils.stats import pearson_correlation

__all__ = ["StructureLearningConfig", "learn_structure_from_correlations", "fit_cpds"]


@dataclass(frozen=True)
class StructureLearningConfig:
    """Knobs controlling correlation-guided structure selection."""

    correlation_threshold: float = 0.3
    max_parents: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation_threshold <= 1.0:
            raise ValueError("correlation_threshold must be within [0, 1]")
        if self.max_parents < 0:
            raise ValueError("max_parents must be >= 0")


def learn_structure_from_correlations(
    samples: Mapping[str, Sequence[float]],
    variable_order: Sequence[str],
    config: Optional[StructureLearningConfig] = None,
) -> List[Tuple[str, str]]:
    """Select edges (parent, child) from raw (continuous) duration samples.

    ``variable_order`` fixes edge direction: an edge may only point from an
    earlier variable to a later one, so the result is guaranteed acyclic.
    For every child, the strongest-correlated earlier variables above the
    threshold are chosen, capped at ``max_parents``.
    """
    config = config or StructureLearningConfig()
    order = list(variable_order)
    unknown = [v for v in order if v not in samples]
    if unknown:
        raise ValueError(f"variables without samples: {unknown}")

    edges: List[Tuple[str, str]] = []
    for child_index, child in enumerate(order):
        candidates: List[Tuple[float, str]] = []
        for parent in order[:child_index]:
            corr = abs(pearson_correlation(samples[parent], samples[child]))
            if corr >= config.correlation_threshold:
                candidates.append((corr, parent))
        candidates.sort(reverse=True)
        for _, parent in candidates[: config.max_parents]:
            edges.append((parent, child))
    return edges


def fit_cpds(
    network: DiscreteBayesianNetwork,
    discrete_samples: Mapping[str, Sequence[int]],
    laplace_alpha: float = 1.0,
    smoothing_prior: str = "uniform",
) -> None:
    """Fit every CPD of ``network`` by MLE with smoothing, in place.

    ``discrete_samples`` maps variable name to its per-sample discrete state;
    every variable of the network must be present and all sequences must have
    equal length.

    ``smoothing_prior`` selects the Dirichlet prior added to every column:
    ``"uniform"`` is classic Laplace smoothing, ``"marginal"`` backs off to
    the child's empirical marginal distribution — parent configurations that
    never occur in the training data then predict the marginal instead of a
    uniform spread over all duration intervals, which keeps posterior
    duration expectations unbiased (important for the profiler).
    """
    if laplace_alpha < 0:
        raise ValueError("laplace_alpha must be >= 0")
    if smoothing_prior not in ("uniform", "marginal"):
        raise ValueError(f"unknown smoothing_prior {smoothing_prior!r}")
    nodes = network.nodes
    missing = [n for n in nodes if n not in discrete_samples]
    if missing:
        raise ValueError(f"missing samples for variables: {missing}")
    lengths = {len(discrete_samples[n]) for n in nodes}
    if len(lengths) != 1:
        raise ValueError(f"sample sequences have inconsistent lengths: {sorted(lengths)}")
    n_samples = lengths.pop()
    if n_samples == 0:
        raise ValueError("cannot fit CPDs with zero samples")

    columns = {n: np.asarray(discrete_samples[n], dtype=int) for n in nodes}
    for node in nodes:
        card = network.cardinality(node)
        states = columns[node]
        if states.min() < 0 or states.max() >= card:
            raise ValueError(
                f"samples for {node!r} contain states outside [0, {card - 1}]"
            )

    for node in nodes:
        parents = network.parents(node)
        card = network.cardinality(node)
        parent_cards = {p: network.cardinality(p) for p in parents}
        n_cols = int(np.prod([parent_cards[p] for p in parents])) if parents else 1
        if smoothing_prior == "marginal":
            marginal_counts = np.bincount(columns[node], minlength=card).astype(float)
            prior = marginal_counts / max(1.0, marginal_counts.sum())
            prior = np.clip(prior, 1e-6, None)
            prior = prior / prior.sum()
        else:
            prior = np.full(card, 1.0 / card)
        counts = np.tile((laplace_alpha * card * prior).reshape(-1, 1), (1, n_cols))

        if parents:
            # Column index in row-major order of `parents` (last parent fastest).
            col_index = np.zeros(n_samples, dtype=int)
            for parent in parents:
                col_index = col_index * parent_cards[parent] + columns[parent]
            np.add.at(counts, (columns[node], col_index), 1.0)
        else:
            np.add.at(counts, (columns[node], np.zeros(n_samples, dtype=int)), 1.0)

        column_sums = counts.sum(axis=0, keepdims=True)
        # A column can only be all-zero when laplace_alpha == 0 and the parent
        # configuration never appeared; fall back to the prior there.
        zero_columns = column_sums[0] <= 0
        if np.any(zero_columns):
            counts[:, zero_columns] = np.clip(prior, 1e-6, None).reshape(-1, 1)
            column_sums = counts.sum(axis=0, keepdims=True)
        table = counts / column_sums
        cpd = TabularCPD(node, card, table, parents, parent_cards)
        network.set_cpd(cpd)


def build_network_from_samples(
    continuous_samples: Mapping[str, Sequence[float]],
    discrete_samples: Mapping[str, Sequence[int]],
    cardinalities: Mapping[str, int],
    state_labels: Mapping[str, Sequence[object]],
    variable_order: Sequence[str],
    config: Optional[StructureLearningConfig] = None,
    laplace_alpha: float = 1.0,
    smoothing_prior: str = "uniform",
) -> DiscreteBayesianNetwork:
    """Convenience wrapper: learn structure, then fit parameters.

    This is the one-call entry point used by the profiler: it takes the raw
    duration traces (for correlation-based edge selection), their discretised
    counterparts (for CPD fitting), and per-variable metadata.
    """
    network = DiscreteBayesianNetwork()
    for variable in variable_order:
        network.add_node(variable, cardinalities[variable], state_labels[variable])
    for parent, child in learn_structure_from_correlations(
        continuous_samples, variable_order, config
    ):
        network.add_edge(parent, child)
    fit_cpds(network, discrete_samples, laplace_alpha=laplace_alpha, smoothing_prior=smoothing_prior)
    return network
