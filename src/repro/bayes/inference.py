"""Exact inference by variable elimination.

LLMSched's Bayesian networks are small (the paper notes compound LLM
applications rarely exceed ~10 LLM stages), so exact elimination with a
min-degree ordering is both simple and fast enough to run inside the
scheduler's critical path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.bayes.factor import DiscreteFactor
from repro.bayes.network import DiscreteBayesianNetwork

__all__ = ["VariableElimination"]


class VariableElimination:
    """Exact query engine over a :class:`DiscreteBayesianNetwork`."""

    def __init__(self, network: DiscreteBayesianNetwork) -> None:
        network.check_model()
        self._network = network

    # ------------------------------------------------------------------ #
    # Public queries
    # ------------------------------------------------------------------ #
    def query(
        self,
        variables: Sequence[str],
        evidence: Optional[Mapping[str, int]] = None,
    ) -> DiscreteFactor:
        """Joint posterior P(variables | evidence), normalised.

        ``variables`` may contain one or many names; the returned factor has
        exactly those variables (minus any that also appear in the evidence,
        which would be deterministic).
        """
        evidence = dict(evidence or {})
        query_vars = [v for v in variables if v not in evidence]
        if not query_vars:
            raise ValueError("all query variables are fixed by evidence")
        unknown = [v for v in query_vars if v not in self._network]
        if unknown:
            raise ValueError(f"unknown query variables: {unknown}")
        unknown_evidence = [v for v in evidence if v not in self._network]
        if unknown_evidence:
            raise ValueError(f"unknown evidence variables: {unknown_evidence}")

        factors = [f.reduce(evidence) for f in self._network.factors()]
        factors = [f for f in factors if f.variables or f.total != 1.0]

        to_eliminate = [
            node
            for node in self._network.nodes
            if node not in query_vars and node not in evidence
        ]
        order = self._elimination_order(to_eliminate, factors)

        for var in order:
            factors = self._eliminate(var, factors)

        result = DiscreteFactor.identity()
        for factor in factors:
            result = result.product(factor)
        # Restrict to exactly the query variables (scalar leftovers are fine).
        extra = [v for v in result.variables if v not in query_vars]
        if extra:
            result = result.marginalize(extra)
        if not result.variables:
            raise RuntimeError("query eliminated all variables; this is a bug")
        # Re-order axes to the requested order for predictable downstream use.
        result = self._reorder(result, query_vars)
        return result.normalize()

    def posterior_marginals(
        self,
        variables: Sequence[str],
        evidence: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, np.ndarray]:
        """Per-variable posterior marginals (computed one query per variable)."""
        marginals: Dict[str, np.ndarray] = {}
        evidence = dict(evidence or {})
        for variable in variables:
            if variable in evidence:
                card = self._network.cardinality(variable)
                point_mass = np.zeros(card)
                point_mass[int(evidence[variable])] = 1.0
                marginals[variable] = point_mass
                continue
            factor = self.query([variable], evidence)
            marginals[variable] = factor.values.copy()
        return marginals

    def map_assignment(
        self,
        variables: Sequence[str],
        evidence: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Most probable joint assignment of ``variables`` given evidence."""
        factor = self.query(variables, evidence)
        flat_index = int(np.argmax(factor.values))
        unravelled = np.unravel_index(flat_index, factor.values.shape)
        return {var: int(state) for var, state in zip(factor.variables, unravelled, strict=True)}

    def expected_value(
        self,
        variable: str,
        evidence: Optional[Mapping[str, int]] = None,
        state_values: Optional[Sequence[float]] = None,
    ) -> float:
        """Posterior expectation of a variable under numeric state labels.

        When ``state_values`` is omitted, the network's state labels are used;
        they must be numeric (the profiler stores interval representative
        durations there).
        """
        evidence = dict(evidence or {})
        if state_values is None:
            state_values = [float(v) for v in self._network.state_labels(variable)]
        values = np.asarray(state_values, dtype=float)
        if variable in evidence:
            return float(values[int(evidence[variable])])
        marginal = self.query([variable], evidence).values
        if marginal.size != values.size:
            raise ValueError(
                f"{variable!r}: got {values.size} state values for "
                f"cardinality {marginal.size}"
            )
        return float(np.dot(marginal, values))

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _eliminate(variable: str, factors: List[DiscreteFactor]) -> List[DiscreteFactor]:
        involved = [f for f in factors if variable in f.variables]
        untouched = [f for f in factors if variable not in f.variables]
        if not involved:
            return untouched
        product = involved[0]
        for factor in involved[1:]:
            product = product.product(factor)
        return untouched + [product.marginalize([variable])]

    @staticmethod
    def _elimination_order(
        variables: Iterable[str], factors: Sequence[DiscreteFactor]
    ) -> List[str]:
        """Greedy min-degree ordering on the factor interaction graph."""
        remaining = list(variables)
        # Adjacency: variables co-occurring in a factor interact.
        neighbors: Dict[str, set] = {v: set() for v in remaining}
        cliques = [set(f.variables) for f in factors]
        order: List[str] = []
        while remaining:
            for var in remaining:
                neighbors[var] = set()
                for clique in cliques:
                    if var in clique:
                        neighbors[var] |= clique - {var}
            best = min(remaining, key=lambda v: (len(neighbors[v]), v))
            order.append(best)
            remaining.remove(best)
            merged = neighbors[best]
            cliques = [c for c in cliques if best not in c]
            cliques.append(set(merged))
        return order

    @staticmethod
    def _reorder(factor: DiscreteFactor, variable_order: Sequence[str]) -> DiscreteFactor:
        desired = [v for v in variable_order if v in factor.variables]
        if desired == factor.variables:
            return factor
        perm = [factor.variables.index(v) for v in desired]
        values = factor.values.transpose(perm)
        cards = {v: factor.cardinalities[v] for v in desired}
        return DiscreteFactor(desired, cards, values)
