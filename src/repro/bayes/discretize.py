"""Duration discretisation.

The paper discretises every stage's duration distribution into up to six
intervals based on frequency (equal-mass quantile bins), with one extra state
reserved for "not executed" (duration 0) when the stage may be skipped — this
is how chain-like applications with variable length are handled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["DiscretizationSpec", "Discretizer"]

_ZERO_TOLERANCE = 1e-9


@dataclass(frozen=True)
class DiscretizationSpec:
    """The result of fitting a discretiser to one stage's duration samples.

    Attributes
    ----------
    edges:
        Interval boundaries for the positive-duration states (length
        ``n_intervals + 1``).  ``edges[i] <= value < edges[i + 1]`` maps to
        positive state ``i``.
    representatives:
        Numeric representative (mean of training samples) for every state,
        including the leading zero state when present.
    has_zero_state:
        Whether state 0 is reserved for "not executed" (duration 0).
    """

    edges: tuple
    representatives: tuple
    has_zero_state: bool

    @property
    def cardinality(self) -> int:
        return len(self.representatives)

    @property
    def value_range(self) -> float:
        """Spread between the largest and smallest representative duration.

        This is the ``Range(Y)`` term of the paper's uncertainty-reduction
        formula (Eq. 6).
        """
        if not self.representatives:
            return 0.0
        return float(max(self.representatives) - min(self.representatives))


class Discretizer:
    """Frequency-based discretiser for stage durations.

    Parameters
    ----------
    max_intervals:
        Maximum number of positive-duration intervals (paper default 6).
    zero_state:
        When True, duration 0 ("stage not executed") gets a dedicated state 0
        and only strictly positive samples are used to build the intervals.
    """

    def __init__(self, max_intervals: int = 6, zero_state: bool = False) -> None:
        if max_intervals < 1:
            raise ValueError("max_intervals must be >= 1")
        self.max_intervals = int(max_intervals)
        self.zero_state = bool(zero_state)

    def fit(self, samples: Sequence[float]) -> DiscretizationSpec:
        """Build a :class:`DiscretizationSpec` from duration samples."""
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise ValueError("cannot fit a discretizer to zero samples")
        if np.any(data < -_ZERO_TOLERANCE):
            raise ValueError("durations must be non-negative")
        data = np.clip(data, 0.0, None)

        positive = data[data > _ZERO_TOLERANCE]
        use_zero_state = self.zero_state and (positive.size < data.size or positive.size == 0)

        if positive.size == 0:
            # Degenerate: the stage never executes (or always takes 0 s).
            return DiscretizationSpec(edges=(0.0, 0.0), representatives=(0.0,), has_zero_state=True)

        unique_values = np.unique(positive)
        n_intervals = int(min(self.max_intervals, unique_values.size))
        if n_intervals == 1:
            edges = np.array([float(unique_values[0]), float(unique_values[-1]) + _ZERO_TOLERANCE])
        else:
            quantiles = np.linspace(0.0, 1.0, n_intervals + 1)
            edges = np.quantile(positive, quantiles)
            edges = np.unique(edges)
            if edges.size < 2:
                edges = np.array([float(positive.min()), float(positive.max()) + _ZERO_TOLERANCE])
            # Make the final edge exclusive-safe so the max sample falls in the
            # last interval.
            edges = edges.astype(float)
            edges[-1] = edges[-1] + max(_ZERO_TOLERANCE, abs(edges[-1]) * 1e-9)
        n_intervals = edges.size - 1

        # Representative duration of each interval: mean of the samples inside
        # it (falling back to the midpoint for empty intervals).
        reps: List[float] = []
        for i in range(n_intervals):
            low, high = edges[i], edges[i + 1]
            if i == n_intervals - 1:
                members = positive[(positive >= low) & (positive <= high)]
            else:
                members = positive[(positive >= low) & (positive < high)]
            if members.size:
                reps.append(float(members.mean()))
            else:
                reps.append(float((low + high) / 2.0))

        if use_zero_state:
            representatives = (0.0, *reps)
        else:
            representatives = tuple(reps)
        return DiscretizationSpec(
            edges=tuple(float(e) for e in edges),
            representatives=representatives,
            has_zero_state=use_zero_state,
        )

    @staticmethod
    def transform(value: float, spec: DiscretizationSpec) -> int:
        """Map a duration to its discrete state index under ``spec``."""
        value = float(value)
        if value < -_ZERO_TOLERANCE:
            raise ValueError("durations must be non-negative")
        if spec.has_zero_state and value <= _ZERO_TOLERANCE:
            return 0
        offset = 1 if spec.has_zero_state else 0
        edges = spec.edges
        n_intervals = len(edges) - 1
        if n_intervals <= 0:
            return 0
        if value <= edges[0]:
            return offset
        if value >= edges[-1]:
            return offset + n_intervals - 1
        index = int(np.searchsorted(np.asarray(edges), value, side="right") - 1)
        index = min(max(index, 0), n_intervals - 1)
        return offset + index

    @staticmethod
    def representative(state: int, spec: DiscretizationSpec) -> float:
        """Representative duration of a state index."""
        return float(spec.representatives[int(state)])

    def fit_transform(self, samples: Sequence[float]) -> tuple:
        """Fit a spec and return ``(spec, states)`` for the training samples."""
        spec = self.fit(samples)
        states = [self.transform(v, spec) for v in samples]
        return spec, states
