"""Discrete Bayesian-network substrate.

The paper profiles compound LLM applications with Bayesian networks built in
pyAgrum.  This subpackage provides the subset of functionality LLMSched needs,
implemented from scratch on top of numpy:

* :class:`~repro.bayes.factor.DiscreteFactor` — multi-dimensional probability
  tables with product / marginalise / reduce / normalise operations.
* :class:`~repro.bayes.cpd.TabularCPD` — conditional probability distributions.
* :class:`~repro.bayes.network.DiscreteBayesianNetwork` — a DAG of CPDs.
* :class:`~repro.bayes.inference.VariableElimination` — exact posterior and
  joint queries with evidence.
* :mod:`~repro.bayes.learning` — maximum-likelihood parameter learning with
  Laplace smoothing and correlation-guided structure selection.
* :mod:`~repro.bayes.discretize` — frequency-based duration discretisation.
* :mod:`~repro.bayes.information` — entropy and (conditional) mutual
  information on factors.
"""

from repro.bayes.cpd import TabularCPD
from repro.bayes.discretize import Discretizer, DiscretizationSpec
from repro.bayes.factor import DiscreteFactor
from repro.bayes.inference import VariableElimination
from repro.bayes.information import (
    conditional_mutual_information,
    entropy_of_distribution,
    factor_entropy,
    mutual_information,
)
from repro.bayes.learning import (
    fit_cpds,
    learn_structure_from_correlations,
    StructureLearningConfig,
)
from repro.bayes.network import DiscreteBayesianNetwork

__all__ = [
    "DiscreteFactor",
    "TabularCPD",
    "DiscreteBayesianNetwork",
    "VariableElimination",
    "Discretizer",
    "DiscretizationSpec",
    "entropy_of_distribution",
    "factor_entropy",
    "mutual_information",
    "conditional_mutual_information",
    "fit_cpds",
    "learn_structure_from_correlations",
    "StructureLearningConfig",
]
