"""Tabular conditional probability distributions."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.bayes.factor import DiscreteFactor

__all__ = ["TabularCPD"]


class TabularCPD:
    """P(variable | parents) as a table.

    Parameters
    ----------
    variable:
        Name of the child variable.
    cardinality:
        Number of states of the child variable.
    table:
        Array of shape ``(cardinality, prod(parent_cardinalities))`` (or
        ``(cardinality, 1)`` / ``(cardinality,)`` for a root node).  Columns
        index parent assignments in row-major order of ``parents`` — i.e. the
        last parent varies fastest, matching :func:`numpy.ndindex`.
    parents:
        Ordered parent variable names (may be empty).
    parent_cardinalities:
        Mapping from parent name to cardinality.
    """

    def __init__(
        self,
        variable: str,
        cardinality: int,
        table: np.ndarray,
        parents: Optional[Sequence[str]] = None,
        parent_cardinalities: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.variable = variable
        self.cardinality = int(cardinality)
        self.parents: List[str] = list(parents or [])
        self.parent_cardinalities: Dict[str, int] = {
            p: int((parent_cardinalities or {})[p]) for p in self.parents
        }
        if self.cardinality <= 0:
            raise ValueError(f"cardinality of {variable!r} must be positive")

        expected_cols = int(np.prod([self.parent_cardinalities[p] for p in self.parents])) if self.parents else 1
        array = np.asarray(table, dtype=float)
        if array.ndim == 1:
            array = array.reshape(self.cardinality, 1)
        if array.shape != (self.cardinality, expected_cols):
            raise ValueError(
                f"CPD table for {variable!r} has shape {array.shape}, "
                f"expected {(self.cardinality, expected_cols)}"
            )
        if np.any(array < -1e-12):
            raise ValueError(f"CPD table for {variable!r} contains negative entries")
        column_sums = array.sum(axis=0)
        if np.any(np.abs(column_sums - 1.0) > 1e-6):
            raise ValueError(
                f"CPD columns for {variable!r} must each sum to 1 "
                f"(got sums {column_sums})"
            )
        self.table = np.clip(array, 0.0, None)

    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(
        cls,
        variable: str,
        cardinality: int,
        parents: Optional[Sequence[str]] = None,
        parent_cardinalities: Optional[Mapping[str, int]] = None,
    ) -> "TabularCPD":
        """Uniform CPD — used as a fallback when no training data exists."""
        parents = list(parents or [])
        cards = {p: int((parent_cardinalities or {})[p]) for p in parents}
        cols = int(np.prod([cards[p] for p in parents])) if parents else 1
        table = np.full((cardinality, cols), 1.0 / cardinality)
        return cls(variable, cardinality, table, parents, cards)

    @classmethod
    def from_marginal(cls, variable: str, probabilities: Sequence[float]) -> "TabularCPD":
        """Root-node CPD from a marginal distribution."""
        probs = np.asarray(probabilities, dtype=float)
        return cls(variable, probs.size, probs.reshape(-1, 1))

    # ------------------------------------------------------------------ #
    def to_factor(self) -> DiscreteFactor:
        """Convert the CPD to a factor over (variable, *parents)."""
        variables = [self.variable] + self.parents
        cards = {self.variable: self.cardinality, **self.parent_cardinalities}
        shape = tuple(cards[v] for v in variables)
        parent_shape = tuple(self.parent_cardinalities[p] for p in self.parents)
        values = self.table.reshape((self.cardinality, *parent_shape)) if self.parents else self.table.reshape(
            (self.cardinality,)
        )
        return DiscreteFactor(variables, cards, values.reshape(shape))

    def column_for(self, parent_assignment: Mapping[str, int]) -> np.ndarray:
        """Distribution of the child given a full parent assignment."""
        if not self.parents:
            return self.table[:, 0].copy()
        index = 0
        for parent in self.parents:
            card = self.parent_cardinalities[parent]
            state = int(parent_assignment[parent])
            if not 0 <= state < card:
                raise ValueError(f"state {state} out of range for parent {parent!r}")
            index = index * card + state
        return self.table[:, index].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabularCPD({self.variable!r} | {self.parents})"
