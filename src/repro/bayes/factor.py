"""Discrete factors: the workhorse of exact Bayesian-network inference.

A factor is a non-negative table indexed by a tuple of named discrete
variables.  Conditional probability distributions, intermediate products
during variable elimination, and posterior marginals are all factors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["DiscreteFactor"]


class DiscreteFactor:
    """A table over a set of named discrete variables.

    Parameters
    ----------
    variables:
        Ordered variable names; the order matches the axes of ``values``.
    cardinalities:
        Mapping from variable name to the number of states it can take.
    values:
        Array (or nested sequence) with one axis per variable, in the order of
        ``variables``.  Values must be non-negative.
    """

    def __init__(
        self,
        variables: Sequence[str],
        cardinalities: Mapping[str, int],
        values: np.ndarray,
    ) -> None:
        self.variables: List[str] = list(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(f"duplicate variables in factor: {self.variables}")
        self.cardinalities: Dict[str, int] = {v: int(cardinalities[v]) for v in self.variables}
        for name, card in self.cardinalities.items():
            if card <= 0:
                raise ValueError(f"cardinality of {name!r} must be positive, got {card}")
        expected_shape = tuple(self.cardinalities[v] for v in self.variables)
        array = np.asarray(values, dtype=float)
        if array.shape != expected_shape:
            raise ValueError(
                f"values shape {array.shape} does not match cardinalities {expected_shape}"
            )
        if np.any(array < -1e-12):
            raise ValueError("factor values must be non-negative")
        self.values = np.clip(array, 0.0, None)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def uniform(cls, variables: Sequence[str], cardinalities: Mapping[str, int]) -> "DiscreteFactor":
        """Uniform (all-equal, normalised) factor over the given variables."""
        shape = tuple(int(cardinalities[v]) for v in variables)
        total = float(np.prod(shape))
        return cls(variables, cardinalities, np.full(shape, 1.0 / total))

    @classmethod
    def identity(cls) -> "DiscreteFactor":
        """The scalar factor 1 — neutral element of factor product."""
        return cls([], {}, np.asarray(1.0))

    def copy(self) -> "DiscreteFactor":
        return DiscreteFactor(self.variables, self.cardinalities, self.values.copy())

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def product(self, other: "DiscreteFactor") -> "DiscreteFactor":
        """Pointwise product of two factors over the union of their variables."""
        all_vars = list(self.variables)
        for var in other.variables:
            if var not in all_vars:
                all_vars.append(var)
        cards: Dict[str, int] = {}
        for var in all_vars:
            card_self = self.cardinalities.get(var)
            card_other = other.cardinalities.get(var)
            if card_self is not None and card_other is not None and card_self != card_other:
                raise ValueError(
                    f"cardinality mismatch for {var!r}: {card_self} vs {card_other}"
                )
            cards[var] = card_self if card_self is not None else int(card_other)

        left = self._broadcast_to(all_vars, cards)
        right = other._broadcast_to(all_vars, cards)
        return DiscreteFactor(all_vars, cards, left * right)

    def _broadcast_to(self, all_vars: List[str], cards: Mapping[str, int]) -> np.ndarray:
        """Return values reshaped/expanded so the axes follow ``all_vars``."""
        target_shape = tuple(int(cards[v]) for v in all_vars)
        if not self.variables:
            return np.broadcast_to(self.values, target_shape).copy()
        # Reorder own axes to match the relative order of all_vars, then
        # insert singleton axes for variables this factor does not contain.
        present = [v for v in all_vars if v in self.variables]
        perm = [self.variables.index(v) for v in present]
        reordered = self.values.transpose(perm)
        shape_with_singletons = tuple(
            self.cardinalities[v] if v in self.cardinalities else 1 for v in all_vars
        )
        reshaped = reordered.reshape(shape_with_singletons)
        return np.broadcast_to(reshaped, target_shape).copy()

    def marginalize(self, variables: Iterable[str]) -> "DiscreteFactor":
        """Sum out the given variables."""
        to_remove = [v for v in variables]
        for var in to_remove:
            if var not in self.variables:
                raise ValueError(f"variable {var!r} not in factor {self.variables}")
        axes = tuple(self.variables.index(v) for v in to_remove)
        remaining = [v for v in self.variables if v not in to_remove]
        values = self.values.sum(axis=axes) if axes else self.values.copy()
        cards = {v: self.cardinalities[v] for v in remaining}
        return DiscreteFactor(remaining, cards, values)

    def reduce(self, evidence: Mapping[str, int]) -> "DiscreteFactor":
        """Condition on observed states (drops the observed variables)."""
        relevant = {v: s for v, s in evidence.items() if v in self.variables}
        indexer: List[object] = []
        remaining: List[str] = []
        for var in self.variables:
            if var in relevant:
                state = int(relevant[var])
                if not 0 <= state < self.cardinalities[var]:
                    raise ValueError(
                        f"state {state} out of range for {var!r} "
                        f"(cardinality {self.cardinalities[var]})"
                    )
                indexer.append(state)
            else:
                indexer.append(slice(None))
                remaining.append(var)
        values = self.values[tuple(indexer)]
        cards = {v: self.cardinalities[v] for v in remaining}
        return DiscreteFactor(remaining, cards, values)

    def normalize(self) -> "DiscreteFactor":
        """Return a copy scaled so that all entries sum to 1.

        A factor that sums to zero (impossible evidence) is returned uniform,
        which is the safest behaviour for downstream expectation estimates.
        """
        total = float(self.values.sum())
        if total <= 0.0:
            return DiscreteFactor.uniform(self.variables, self.cardinalities)
        return DiscreteFactor(self.variables, self.cardinalities, self.values / total)

    def marginal(self, variable: str) -> np.ndarray:
        """1-D normalised marginal distribution of a single variable."""
        others = [v for v in self.variables if v != variable]
        factor = self.marginalize(others).normalize()
        return factor.values.copy()

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def get(self, assignment: Mapping[str, int]) -> float:
        """Value of the factor at a full assignment of its variables."""
        index = tuple(int(assignment[v]) for v in self.variables)
        return float(self.values[index])

    def assignments(self) -> Iterable[Tuple[Dict[str, int], float]]:
        """Iterate over (assignment, value) pairs."""
        if not self.variables:
            yield {}, float(self.values)
            return
        for index in np.ndindex(*self.values.shape):
            yield dict(zip(self.variables, (int(i) for i in index), strict=True)), float(self.values[index])

    @property
    def total(self) -> float:
        return float(self.values.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteFactor(variables={self.variables}, shape={self.values.shape})"
