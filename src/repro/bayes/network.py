"""Discrete Bayesian network: a DAG of tabular CPDs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.bayes.cpd import TabularCPD
from repro.bayes.factor import DiscreteFactor

__all__ = ["DiscreteBayesianNetwork"]


class DiscreteBayesianNetwork:
    """A Bayesian network over named discrete variables.

    The network stores the DAG structure, per-variable cardinalities and state
    labels (e.g. the duration-interval midpoints used by the profiler), and a
    :class:`TabularCPD` for every node.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._cpds: Dict[str, TabularCPD] = {}
        self._cardinalities: Dict[str, int] = {}
        self._state_labels: Dict[str, List[object]] = {}

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        name: str,
        cardinality: int,
        state_labels: Optional[Sequence[object]] = None,
    ) -> None:
        """Add a variable with the given number of states.

        ``state_labels`` optionally attaches a human-meaningful label to each
        state index (for durations these are interval representative values).
        """
        if name in self._cardinalities:
            raise ValueError(f"node {name!r} already exists")
        if cardinality <= 0:
            raise ValueError(f"cardinality of {name!r} must be positive")
        labels = list(state_labels) if state_labels is not None else list(range(cardinality))
        if len(labels) != cardinality:
            raise ValueError(
                f"{name!r}: got {len(labels)} state labels for cardinality {cardinality}"
            )
        self._graph.add_node(name)
        self._cardinalities[name] = int(cardinality)
        self._state_labels[name] = labels

    def add_edge(self, parent: str, child: str) -> None:
        """Add a dependency edge; rejects self-loops and cycles."""
        for node in (parent, child):
            if node not in self._cardinalities:
                raise ValueError(f"unknown node {node!r}")
        if parent == child:
            raise ValueError("self-loops are not allowed")
        self._graph.add_edge(parent, child)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(parent, child)
            raise ValueError(f"edge {parent!r} -> {child!r} would create a cycle")

    @property
    def nodes(self) -> List[str]:
        return list(self._graph.nodes)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        return list(self._graph.edges)

    def parents(self, node: str) -> List[str]:
        return sorted(self._graph.predecessors(node))

    def children(self, node: str) -> List[str]:
        return sorted(self._graph.successors(node))

    def cardinality(self, node: str) -> int:
        return self._cardinalities[node]

    def state_labels(self, node: str) -> List[object]:
        return list(self._state_labels[node])

    def topological_order(self) -> List[str]:
        return list(nx.topological_sort(self._graph))

    def descendants(self, node: str) -> Set[str]:
        return set(nx.descendants(self._graph, node))

    def ancestors(self, node: str) -> Set[str]:
        return set(nx.ancestors(self._graph, node))

    def has_directed_path(self, source: str, target: str) -> bool:
        """True when a directed path source → … → target exists.

        This implements the paper's ``correlated(u, v)`` predicate (Eq. 1):
        a stage u is considered correlated with v when a direct(ed) path
        connects them in the learned network.
        """
        if source == target:
            return False
        return nx.has_path(self._graph, source, target)

    def correlated_nodes(self, node: str) -> Set[str]:
        """All nodes reachable from ``node`` by a directed path (either way).

        The profiler treats a stage as uncertainty-reducing when it is
        correlated with at least one other stage; scheduling it informs every
        node it can reach and every node that can reach it.
        """
        return self.descendants(node) | self.ancestors(node)

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #
    def set_cpd(self, cpd: TabularCPD) -> None:
        """Attach a CPD; its parents must match the graph structure exactly."""
        if cpd.variable not in self._cardinalities:
            raise ValueError(f"unknown node {cpd.variable!r}")
        if cpd.cardinality != self._cardinalities[cpd.variable]:
            raise ValueError(
                f"CPD cardinality {cpd.cardinality} does not match node "
                f"{cpd.variable!r} cardinality {self._cardinalities[cpd.variable]}"
            )
        expected_parents = set(self._graph.predecessors(cpd.variable))
        if set(cpd.parents) != expected_parents:
            raise ValueError(
                f"CPD parents {sorted(cpd.parents)} do not match graph parents "
                f"{sorted(expected_parents)} for {cpd.variable!r}"
            )
        for parent in cpd.parents:
            if cpd.parent_cardinalities[parent] != self._cardinalities[parent]:
                raise ValueError(
                    f"CPD parent cardinality mismatch for {parent!r} in {cpd.variable!r}"
                )
        self._cpds[cpd.variable] = cpd

    def get_cpd(self, node: str) -> TabularCPD:
        return self._cpds[node]

    def has_cpd(self, node: str) -> bool:
        return node in self._cpds

    def check_model(self) -> bool:
        """Validate that every node has a CPD consistent with the structure."""
        missing = [n for n in self.nodes if n not in self._cpds]
        if missing:
            raise ValueError(f"nodes without CPDs: {missing}")
        return True

    # ------------------------------------------------------------------ #
    # Distributions
    # ------------------------------------------------------------------ #
    def factors(self) -> List[DiscreteFactor]:
        """All CPDs converted to factors (used by inference engines)."""
        self.check_model()
        return [self._cpds[node].to_factor() for node in self.nodes]

    def joint_distribution(self) -> DiscreteFactor:
        """Full joint distribution (only sensible for small networks)."""
        joint = DiscreteFactor.identity()
        for factor in self.factors():
            joint = joint.product(factor)
        return joint.normalize()

    def sample(self, rng, n_samples: int = 1) -> List[Dict[str, int]]:
        """Ancestral sampling of complete assignments."""
        self.check_model()
        order = self.topological_order()
        samples: List[Dict[str, int]] = []
        for _ in range(n_samples):
            assignment: Dict[str, int] = {}
            for node in order:
                cpd = self._cpds[node]
                probs = cpd.column_for(assignment) if cpd.parents else cpd.table[:, 0]
                assignment[node] = int(rng.choice(len(probs), p=probs / probs.sum()))
            samples.append(assignment)
        return samples

    def copy(self) -> "DiscreteBayesianNetwork":
        clone = DiscreteBayesianNetwork()
        for node in self.nodes:
            clone.add_node(node, self._cardinalities[node], self._state_labels[node])
        for parent, child in self.edges:
            clone.add_edge(parent, child)
        for cpd in self._cpds.values():
            clone.set_cpd(cpd)
        return clone

    def __contains__(self, node: str) -> bool:
        return node in self._cardinalities

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiscreteBayesianNetwork(nodes={len(self.nodes)}, edges={len(self.edges)})"
        )
