"""Entropy and mutual information on discrete distributions and factors.

These implement the quantities of the paper's Section IV-C:

* Shannon entropy ``H(X)`` (Eq. 3),
* mutual information ``I(Y; X)`` (Eq. 5), generalised to joint variable sets,
* conditional mutual information ``I(Y1..YM ; X | E)`` where the evidence E is
  handled by conditioning the network *before* building the joint factor.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.bayes.factor import DiscreteFactor
from repro.bayes.inference import VariableElimination
from repro.bayes.network import DiscreteBayesianNetwork

__all__ = [
    "entropy_of_distribution",
    "factor_entropy",
    "mutual_information",
    "conditional_mutual_information",
    "binary_entropy",
]

_EPS = 1e-12


def entropy_of_distribution(probabilities: Sequence[float]) -> float:
    """Shannon entropy (bits) of a probability vector.

    The vector is normalised defensively; zero entries contribute nothing.
    """
    probs = np.asarray(list(probabilities), dtype=float)
    if probs.size == 0:
        return 0.0
    if np.any(probs < -_EPS):
        raise ValueError("probabilities must be non-negative")
    total = probs.sum()
    if total <= 0:
        return 0.0
    probs = probs / total
    nonzero = probs[probs > _EPS]
    return float(-(nonzero * np.log2(nonzero)).sum())


def binary_entropy(p: float) -> float:
    """Entropy of a Bernoulli(p) variable, in bits."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be within [0, 1], got {p}")
    return entropy_of_distribution([p, 1.0 - p])


def factor_entropy(factor: DiscreteFactor) -> float:
    """Joint entropy of the (normalised) distribution described by a factor."""
    return entropy_of_distribution(factor.values.ravel())


def mutual_information(
    joint: DiscreteFactor,
    left: Sequence[str],
    right: Sequence[str],
) -> float:
    """Mutual information I(left ; right) of a joint factor.

    ``joint`` must contain every variable of both groups.  The result is
    computed as ``H(left) + H(right) - H(left, right)`` which is numerically
    stable and never meaningfully negative.
    """
    left = list(left)
    right = list(right)
    overlap = set(left) & set(right)
    if overlap:
        raise ValueError(f"variable groups overlap: {sorted(overlap)}")
    missing = [v for v in left + right if v not in joint.variables]
    if missing:
        raise ValueError(f"joint factor is missing variables: {missing}")

    normalized = joint.normalize()
    extra = [v for v in normalized.variables if v not in left + right]
    if extra:
        normalized = normalized.marginalize(extra).normalize()

    h_joint = factor_entropy(normalized)
    h_left = factor_entropy(normalized.marginalize(right).normalize())
    h_right = factor_entropy(normalized.marginalize(left).normalize())
    value = h_left + h_right - h_joint
    return max(0.0, float(value))


def conditional_mutual_information(
    network: DiscreteBayesianNetwork,
    targets: Sequence[str],
    source: str,
    evidence: Optional[Mapping[str, int]] = None,
) -> float:
    """I(targets ; source | evidence) evaluated on a Bayesian network.

    This is the quantity the paper uses to score how much scheduling ``source``
    would reduce uncertainty about the still-unscheduled ``targets`` given the
    durations already observed (``evidence``).
    """
    evidence = dict(evidence or {})
    targets = [t for t in targets if t != source and t not in evidence]
    if not targets:
        return 0.0
    if source in evidence:
        return 0.0
    engine = VariableElimination(network)
    joint = engine.query(list(targets) + [source], evidence)
    return mutual_information(joint, targets, [source])
