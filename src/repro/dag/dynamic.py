"""Dynamic-stage support: candidate sets and realised plans.

A dynamic stage is a placeholder for stages an LLM planner generates at
runtime.  The *candidate set* lists everything the planner may invoke (the
paper's example: text translation, image segmentation, object detection for
task automation).  A :class:`DynamicPlan` is the ground-truth realisation for
one job: which candidates were selected and the dependencies among them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.bayes.information import binary_entropy

__all__ = ["StageCandidate", "DynamicPlan", "dynamic_stage_entropy"]


@dataclass(frozen=True)
class StageCandidate:
    """One entry of a dynamic stage's candidate set.

    ``selection_probability`` is the historical frequency with which the
    planner selects this candidate; it drives both workload generation and
    the entropy-based uncertainty of the dynamic stage (Eq. 4).
    """

    name: str
    is_llm: bool = False
    mean_duration: float = 1.0
    selection_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_duration < 0:
            raise ValueError("mean_duration must be >= 0")
        if not 0.0 <= self.selection_probability <= 1.0:
            raise ValueError("selection_probability must be within [0, 1]")


@dataclass
class DynamicPlan:
    """Ground-truth realisation of a dynamic stage for one job.

    Attributes
    ----------
    selected:
        Names of the selected candidates, in execution order.
    dependencies:
        Edges between selected candidates (pairs of names).
    durations:
        Task duration for each selected candidate.
    """

    selected: List[str] = field(default_factory=list)
    dependencies: List[Tuple[str, str]] = field(default_factory=list)
    durations: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        selected = set(self.selected)
        for parent, child in self.dependencies:
            if parent not in selected or child not in selected:
                raise ValueError(
                    f"dependency ({parent!r}, {child!r}) references unselected candidates"
                )
        missing = [name for name in self.selected if name not in self.durations]
        if missing:
            raise ValueError(f"selected candidates without durations: {missing}")

    @property
    def num_stages(self) -> int:
        return len(self.selected)

    @property
    def total_duration(self) -> float:
        return float(sum(self.durations[name] for name in self.selected))


def dynamic_stage_entropy(
    candidates: Sequence[StageCandidate],
    edge_probability: float = 0.5,
) -> float:
    """Uncertainty of a dynamic stage: node entropy plus edge entropy (Eq. 4).

    Every candidate contributes the entropy of its selection indicator; every
    potential edge between ordered candidate pairs contributes the entropy of
    its existence indicator (``edge_probability`` is the historical frequency
    of an edge between two selected candidates).
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be within [0, 1]")
    node_entropy = sum(binary_entropy(c.selection_probability) for c in candidates)
    n = len(candidates)
    possible_edges = n * (n - 1) // 2
    edge_entropy = possible_edges * binary_entropy(edge_probability)
    return float(node_entropy + edge_entropy)
