"""Runtime tasks — the unit of work placed on executors."""

from __future__ import annotations

import copy
import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import require_non_negative

__all__ = ["TaskType", "TaskState", "Task"]

_task_counter = itertools.count()


class TaskType(enum.Enum):
    """Whether a task needs a regular executor or an LLM executor."""

    REGULAR = "regular"
    LLM = "llm"


class TaskState(enum.Enum):
    """Lifecycle of a task inside the simulator."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Task:
    """A single schedulable unit of work.

    ``work`` is the ground-truth execution time of the task when it runs
    alone: seconds on a regular executor, or seconds at batch size 1 on an
    LLM executor.  For LLM tasks the *actual* wall-clock duration depends on
    how many requests share the batch while it runs (handled by the
    executor's latency model); ``progress`` tracks how much of ``work`` has
    been completed so far in batch-size-1-equivalent seconds.
    """

    job_id: str
    stage_id: str
    task_type: TaskType
    work: float
    index: int = 0
    uid: int = field(default_factory=lambda: next(_task_counter))
    state: TaskState = TaskState.PENDING
    progress: float = 0.0
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    executor_id: Optional[str] = None
    num_preemptions: int = 0

    def __post_init__(self) -> None:
        require_non_negative(self.work, "work")

    # ------------------------------------------------------------------ #
    @property
    def is_llm(self) -> bool:
        return self.task_type is TaskType.LLM

    @property
    def remaining_work(self) -> float:
        """Batch-size-1-equivalent seconds of work still to do."""
        return max(0.0, self.work - self.progress)

    @property
    def is_finished(self) -> bool:
        return self.state is TaskState.FINISHED

    # ------------------------------------------------------------------ #
    def mark_running(self, time: float, executor_id: str) -> None:
        if self.state is not TaskState.PENDING:
            raise RuntimeError(f"task {self.uid} cannot start from state {self.state}")
        self.state = TaskState.RUNNING
        self.start_time = float(time)
        self.executor_id = executor_id

    def advance(self, amount: float) -> None:
        """Record ``amount`` of batch-size-1-equivalent work as completed."""
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.uid} is not running")
        if amount < -1e-9:
            raise ValueError("cannot advance by a negative amount")
        self.progress = min(self.work, self.progress + max(0.0, amount))

    def mark_preempted(self, checkpoint: bool = True) -> float:
        """Checkpoint the task back to PENDING so it can be placed again.

        With ``checkpoint=True`` the accrued ``progress`` is conserved (the
        task resumes with only its remaining work); otherwise progress is
        discarded and the task restarts from scratch.  Returns the amount
        of work wasted (0 for a checkpointed preemption).
        """
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.uid} cannot be preempted from state {self.state}")
        wasted = 0.0
        if not checkpoint:
            wasted = self.progress
            self.progress = 0.0
        self.state = TaskState.PENDING
        self.start_time = None
        self.executor_id = None
        self.num_preemptions += 1
        return wasted

    def mark_finished(self, time: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.uid} cannot finish from state {self.state}")
        self.state = TaskState.FINISHED
        self.progress = self.work
        self.finish_time = float(time)

    def snapshot_clone(self) -> "Task":
        """A structural copy for copy-on-write snapshot views.

        Every field is an immutable scalar, so a shallow copy is a full
        copy; ``uid`` is preserved (unlike constructing a new Task), which
        keeps tie-breaks that sort on uid identical between a snapshot and
        the live world.
        """
        return copy.copy(self)

    def key(self) -> str:
        """Stable human-readable identifier used in logs and metrics."""
        return f"{self.job_id}/{self.stage_id}/{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.key()}, {self.task_type.value}, work={self.work:.2f}, {self.state.value})"
