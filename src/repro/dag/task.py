"""Runtime tasks — the unit of work placed on executors."""

from __future__ import annotations

import copy
import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import require_non_negative

__all__ = ["TaskType", "TaskState", "Task"]

_task_counter = itertools.count()


class TaskType(enum.Enum):
    """Whether a task needs a regular executor or an LLM executor."""

    REGULAR = "regular"
    LLM = "llm"


class TaskState(enum.Enum):
    """Lifecycle of a task inside the simulator."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Task:
    """A single schedulable unit of work.

    ``work`` is the ground-truth execution time of the task when it runs
    alone: seconds on a regular executor, or seconds at batch size 1 on an
    LLM executor.  For LLM tasks the *actual* wall-clock duration depends on
    how many requests share the batch while it runs (handled by the
    executor's latency model); ``progress`` tracks how much of ``work`` has
    been completed so far in batch-size-1-equivalent seconds.

    Token model (opt-in, serving experiments only)
    ----------------------------------------------
    ``prompt_tokens`` / ``output_tokens`` split an LLM task into a prefill
    phase (the first ``prefill_work`` batch-size-1 seconds of ``work``,
    after which the first token is emitted) and a per-iteration decode
    phase covering the remaining ``output_tokens - 1`` tokens.  The split
    is a *decomposition* of the unchanged ``work`` value — progress
    arithmetic, completion times and therefore every legacy trace are
    bit-identical whether or not the token model is attached.  All token
    fields stay ``None``/0 for legacy tasks; :meth:`set_token_model` is the
    only sanctioned way to attach them (enforced by the REP007 invariant
    lint).
    """

    job_id: str
    stage_id: str
    task_type: TaskType
    work: float
    index: int = 0
    uid: int = field(default_factory=lambda: next(_task_counter))
    state: TaskState = TaskState.PENDING
    progress: float = 0.0
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    executor_id: Optional[str] = None
    num_preemptions: int = 0
    #: Token model (None/0 = legacy JCT-only task; see class docstring).
    prompt_tokens: Optional[int] = None
    output_tokens: Optional[int] = None
    prefill_work: float = 0.0
    #: Absolute time the first output token was emitted (stamped by the
    #: LLM executor when progress crosses ``prefill_work``).
    first_token_time: Optional[float] = None
    #: Absolute time the task became schedulable (its stage turned READY);
    #: the TTFT anchor, so TTFT >= queueing delay by construction.
    ready_time: Optional[float] = None

    def __post_init__(self) -> None:
        require_non_negative(self.work, "work")

    # ------------------------------------------------------------------ #
    @property
    def is_llm(self) -> bool:
        return self.task_type is TaskType.LLM

    @property
    def remaining_work(self) -> float:
        """Batch-size-1-equivalent seconds of work still to do."""
        return max(0.0, self.work - self.progress)

    @property
    def is_finished(self) -> bool:
        return self.state is TaskState.FINISHED

    # ------------------------------------------------------------------ #
    # Token model
    # ------------------------------------------------------------------ #
    @property
    def has_token_model(self) -> bool:
        return self.prompt_tokens is not None and self.output_tokens is not None

    @property
    def decode_work(self) -> float:
        """Batch-size-1 seconds of the decode phase (``work - prefill_work``)."""
        return max(0.0, self.work - self.prefill_work)

    @property
    def prefill_done(self) -> bool:
        """Whether accrued progress already covers the prefill phase."""
        return self.has_token_model and self.progress >= self.prefill_work

    def per_token_decode_work(self) -> Optional[float]:
        """Batch-size-1 seconds per decode token (None without a token model
        or when the task emits a single token and has no decode phase)."""
        if not self.has_token_model or self.output_tokens <= 1:
            return None
        return self.decode_work / (self.output_tokens - 1)

    def set_token_model(
        self, prompt_tokens: int, output_tokens: int, prefill_work: float
    ) -> None:
        """Attach per-request token counts and the prefill/decode split.

        The split must decompose the existing ``work`` (``0 <= prefill_work
        <= work``); it never changes the total, so legacy completion
        arithmetic is untouched.  Only callable before the task starts.
        """
        if self.state is not TaskState.PENDING or self.progress > 0:
            raise RuntimeError(f"task {self.uid} already started; cannot attach tokens")
        if prompt_tokens < 1 or output_tokens < 1:
            raise ValueError("prompt_tokens and output_tokens must be >= 1")
        if prefill_work < 0 or prefill_work > self.work + 1e-12:
            raise ValueError(
                f"prefill_work {prefill_work} must lie within [0, work={self.work}]"
            )
        self.prompt_tokens = int(prompt_tokens)
        self.output_tokens = int(output_tokens)
        self.prefill_work = min(float(prefill_work), self.work)

    # ------------------------------------------------------------------ #
    def mark_running(self, time: float, executor_id: str) -> None:
        if self.state is not TaskState.PENDING:
            raise RuntimeError(f"task {self.uid} cannot start from state {self.state}")
        self.state = TaskState.RUNNING
        self.start_time = float(time)
        self.executor_id = executor_id

    def advance(self, amount: float) -> None:
        """Record ``amount`` of batch-size-1-equivalent work as completed."""
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.uid} is not running")
        if amount < -1e-9:
            raise ValueError("cannot advance by a negative amount")
        self.progress = min(self.work, self.progress + max(0.0, amount))

    def mark_preempted(self, checkpoint: bool = True) -> float:
        """Checkpoint the task back to PENDING so it can be placed again.

        With ``checkpoint=True`` the accrued ``progress`` is conserved (the
        task resumes with only its remaining work); otherwise progress is
        discarded and the task restarts from scratch.  Returns the amount
        of work wasted (0 for a checkpointed preemption).
        """
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.uid} cannot be preempted from state {self.state}")
        wasted = 0.0
        if not checkpoint:
            wasted = self.progress
            self.progress = 0.0
            # Restarting from scratch re-runs prefill, so the first token
            # has not actually been delivered yet from the user's viewpoint.
            self.first_token_time = None
        self.state = TaskState.PENDING
        self.start_time = None
        self.executor_id = None
        self.num_preemptions += 1
        return wasted

    def mark_finished(self, time: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise RuntimeError(f"task {self.uid} cannot finish from state {self.state}")
        self.state = TaskState.FINISHED
        self.progress = self.work
        self.finish_time = float(time)

    def snapshot_clone(self) -> "Task":
        """A structural copy for copy-on-write snapshot views.

        Every field is an immutable scalar, so a shallow copy is a full
        copy; ``uid`` is preserved (unlike constructing a new Task), which
        keeps tie-breaks that sort on uid identical between a snapshot and
        the live world.
        """
        return copy.copy(self)

    def key(self) -> str:
        """Stable human-readable identifier used in logs and metrics."""
        return f"{self.job_id}/{self.stage_id}/{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.key()}, {self.task_type.value}, work={self.work:.2f}, {self.state.value})"
