"""Runtime jobs: DAG instances of compound LLM applications."""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.dag.stage import Stage, StageState, StageType
from repro.dag.task import Task

__all__ = ["Job"]


class Job:
    """A runtime instance of a compound LLM application.

    The job owns the ground-truth structure (every stage that *could* run,
    including padded chain iterations and unselected dynamic candidates) and
    exposes a partially-revealed view to schedulers: only ``visible`` stages,
    and only observed durations.

    Lifecycle driven by the simulator:

    1. ``finalize()`` freezes the structure and unlocks root stages.
    2. ``advance(time)`` is called after every state change; it promotes
       stages whose dependencies completed, auto-skips stages that will not
       execute, auto-finishes empty placeholder stages, and reveals stages
       unlocked by a completed planner.
    3. ``notify_stage_finished(stage_id, time)`` is called by the simulator
       when the last task of a stage completes.
    """

    def __init__(self, job_id: str, application: str, arrival_time: float) -> None:
        if arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        self.job_id = job_id
        self.application = application
        self.arrival_time = float(arrival_time)
        self.finish_time: Optional[float] = None
        #: SLO tier of every request in this job ("default" unless a serving
        #: workload assigns one); looked up against SLOSection targets.
        self.priority: str = "default"

        self._stages: Dict[str, Stage] = {}
        self._graph = nx.DiGraph()
        # trigger stage id -> stage ids that become visible when it completes
        self._reveals: Dict[str, List[str]] = {}
        self._finalized = False
        # Structure caches: the DAG is frozen at finalize(), so the
        # topological order and depth table are computed at most once.
        self._caching = True
        self._topo_cache: Optional[List[str]] = None
        self._depth_cache: Optional[Dict[str, int]] = None
        # Schedulable-stage cache: invalidated by advance() and by the
        # simulator whenever it places tasks (see invalidate_schedulable_cache).
        self._sched_cache: Optional[List[Stage]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_stage(self, stage: Stage) -> None:
        self._require_not_finalized()
        if stage.stage_id in self._stages:
            raise ValueError(f"duplicate stage id {stage.stage_id!r} in job {self.job_id}")
        if stage.job_id != self.job_id:
            raise ValueError(
                f"stage {stage.stage_id!r} belongs to job {stage.job_id!r}, not {self.job_id!r}"
            )
        self._stages[stage.stage_id] = stage
        self._graph.add_node(stage.stage_id)
        self._topo_cache = None
        self._depth_cache = None

    def add_dependency(self, parent_id: str, child_id: str) -> None:
        self._require_not_finalized()
        for stage_id in (parent_id, child_id):
            if stage_id not in self._stages:
                raise ValueError(f"unknown stage {stage_id!r} in job {self.job_id}")
        if parent_id == child_id:
            raise ValueError("a stage cannot depend on itself")
        self._graph.add_edge(parent_id, child_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(parent_id, child_id)
            raise ValueError(f"dependency {parent_id!r} -> {child_id!r} would create a cycle")
        self._topo_cache = None
        self._depth_cache = None

    def add_reveal(self, trigger_stage_id: str, revealed_stage_id: str) -> None:
        """Declare that completing ``trigger`` makes ``revealed`` visible."""
        self._require_not_finalized()
        for stage_id in (trigger_stage_id, revealed_stage_id):
            if stage_id not in self._stages:
                raise ValueError(f"unknown stage {stage_id!r} in job {self.job_id}")
        self._reveals.setdefault(trigger_stage_id, []).append(revealed_stage_id)

    def finalize(self) -> None:
        """Freeze the structure and set the initial stage states."""
        self._require_not_finalized()
        if not self._stages:
            raise ValueError(f"job {self.job_id} has no stages")
        self._finalized = True
        self.advance(self.arrival_time)

    def _require_not_finalized(self) -> None:
        if self._finalized:
            raise RuntimeError(f"job {self.job_id} is already finalized")

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError(f"job {self.job_id} is not finalized yet")

    # ------------------------------------------------------------------ #
    # Structure accessors
    # ------------------------------------------------------------------ #
    @property
    def stages(self) -> Dict[str, Stage]:
        return dict(self._stages)

    def stage(self, stage_id: str) -> Stage:
        return self._stages[stage_id]

    def parents(self, stage_id: str) -> List[str]:
        return sorted(self._graph.predecessors(stage_id))

    def children(self, stage_id: str) -> List[str]:
        return sorted(self._graph.successors(stage_id))

    def edges(self) -> List[Tuple[str, str]]:
        return list(self._graph.edges)

    def topological_order(self) -> List[str]:
        if self._topo_cache is None:
            order = list(nx.topological_sort(self._graph))
            if not self._caching:
                return order
            self._topo_cache = order
        return list(self._topo_cache)

    def stage_depth(self, stage_id: str) -> int:
        """Length of the longest path from any root to the stage (roots = 0)."""
        if self._depth_cache is None:
            order = self.topological_order()
            depth = {sid: 0 for sid in order}
            for sid in order:
                for child in self._graph.successors(sid):
                    depth[child] = max(depth[child], depth[sid] + 1)
            if not self._caching:
                return depth[stage_id]
            self._depth_cache = depth
        return self._depth_cache[stage_id]

    def set_structure_caching(self, enabled: bool) -> None:
        """Toggle the topology / schedulable-stage caches.

        The caches are on by default and are semantically transparent; the
        only reason to disable them is to reproduce the seed cost model when
        benchmarking the fast engine against the reference engine.
        """
        self._caching = bool(enabled)
        self._topo_cache = None
        self._depth_cache = None
        self._sched_cache = None

    # ------------------------------------------------------------------ #
    # Scheduler-facing views
    # ------------------------------------------------------------------ #
    def visible_stages(self) -> List[Stage]:
        return [s for s in self._stages.values() if s.visible]

    def schedulable_stages(self) -> List[Stage]:
        """Visible stages that are ready/running and still have pending tasks.

        The result is cached between DAG state changes; every path that can
        change the schedulable set (``advance`` and task placement by the
        simulator) invalidates the cache, so the returned list is always
        current.  Treat it as read-only: it may be the cache itself.
        """
        cache = self._sched_cache
        if cache is not None:
            return cache
        self._require_finalized()
        stages = [
            s
            for s in self._stages.values()
            if s.visible
            and s.state in (StageState.READY, StageState.RUNNING)
            and s.pending_tasks()
        ]
        if self._caching:
            self._sched_cache = stages
        return stages

    def invalidate_schedulable_cache(self) -> None:
        """Drop the cached schedulable-stage set (after task placement)."""
        self._sched_cache = None

    def schedulable_tasks(self) -> List[Task]:
        return [t for s in self.schedulable_stages() for t in s.pending_tasks()]

    def unfinished_stages(self) -> List[Stage]:
        return [s for s in self._stages.values() if not s.is_complete]

    def observed_durations(self) -> Dict[str, float]:
        """profile_key -> observed duration for every completed visible stage.

        This is the evidence set fed to the Bayesian profiler (completed
        stages only; skipped stages report 0).
        """
        observations: Dict[str, float] = {}
        for stage in self._stages.values():
            duration = stage.executed_duration
            if duration is not None and stage.visible:
                observations[stage.profile_key] = duration
        return observations

    # ------------------------------------------------------------------ #
    # Ground-truth accessors (simulator / oracle use only)
    # ------------------------------------------------------------------ #
    @property
    def true_total_work(self) -> float:
        return sum(s.duration for s in self._stages.values())

    def true_remaining_work(self) -> float:
        total = 0.0
        for stage in self._stages.values():
            if not stage.will_execute or stage.is_complete:
                continue
            total += sum(t.remaining_work for t in stage.tasks)
        return total

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    @property
    def is_finished(self) -> bool:
        return self.finish_time is not None

    @property
    def jct(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def notify_stage_finished(self, stage_id: str, time: float) -> List[str]:
        """Record that all tasks of ``stage_id`` completed at ``time``.

        Returns the ids of stages whose state changed as a consequence
        (newly ready, skipped, revealed or auto-finished placeholders).
        """
        self._require_finalized()
        stage = self._stages[stage_id]
        stage.mark_finished(time)
        return self.advance(time)

    def advance(self, time: float) -> List[str]:
        """Propagate completions through the DAG until a fixpoint.

        Promotes blocked stages whose parents completed, reveals stages whose
        trigger completed, skips stages that will not execute, finishes empty
        placeholder stages, and records the job finish time when everything
        is complete.
        """
        if not self._finalized:
            raise RuntimeError(f"job {self.job_id} is not finalized yet")
        self._sched_cache = None
        changed: List[str] = []
        progressed = True
        while progressed:
            progressed = False
            for stage in self._stages.values():
                if stage.is_complete and stage.stage_id in self._reveals:
                    for revealed_id in self._reveals.pop(stage.stage_id):
                        revealed = self._stages[revealed_id]
                        if not revealed.visible:
                            revealed.visible = True
                            changed.append(revealed_id)
                            progressed = True
                if stage.state is StageState.BLOCKED:
                    if all(self._stages[p].is_complete for p in self._graph.predecessors(stage.stage_id)):
                        stage.mark_ready(time)
                        changed.append(stage.stage_id)
                        progressed = True
                if stage.state is StageState.READY:
                    if not stage.will_execute:
                        stage.mark_skipped(time)
                        changed.append(stage.stage_id)
                        progressed = True
                    elif not stage.tasks:
                        # Placeholder (e.g. dynamic stage wrapper) with no work.
                        stage.mark_finished(time)
                        changed.append(stage.stage_id)
                        progressed = True
        if self.finish_time is None and all(s.is_complete for s in self._stages.values()):
            self.finish_time = float(time)
        return changed

    def snapshot_clone(self) -> "Job":
        """A structural copy for copy-on-write snapshot views.

        Requires a finalized job: the dependency graph and the topology /
        depth caches are frozen at :meth:`finalize` and therefore *shared*
        with the clone (this is what makes the clone cheap — deep-copying
        the networkx graph dominates ``copy.deepcopy(job)``).  Mutable
        runtime state is copied: stages (with their tasks), the pending
        reveal map, and the job finish time.  The schedulable-stage cache
        is dropped because it holds references to this job's live stages.
        """
        self._require_finalized()
        clone = copy.copy(self)
        clone._stages = {
            stage_id: stage.snapshot_clone() for stage_id, stage in self._stages.items()
        }
        clone._reveals = {trigger: list(ids) for trigger, ids in self._reveals.items()}
        clone._sched_cache = None
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id}, app={self.application}, stages={len(self._stages)}, "
            f"arrived={self.arrival_time:.2f}, finished={self.finish_time})"
        )
