"""Application templates: generative descriptions of compound LLM applications.

An :class:`ApplicationTemplate` knows how to sample a ground-truth
:class:`~repro.dag.job.Job` (structure plus durations) and exposes the static
profiling view the LLMSched profiler consumes: the list of profile variables
(one per padded stage) and the static DAG over them.

The six concrete applications of the paper live in :mod:`repro.workloads`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dag.dynamic import StageCandidate
from repro.dag.job import Job
from repro.dag.stage import Stage, StageSpec, StageType

__all__ = ["ApplicationTemplate", "JobBuildError", "StageDraw"]


class JobBuildError(RuntimeError):
    """Raised when a template produces an inconsistent job description."""


@dataclass
class StageDraw:
    """One sampled stage used by :meth:`ApplicationTemplate.build_job`.

    Attributes
    ----------
    spec:
        Static stage description (id, type, profile key, nominal task count).
    task_durations:
        Ground-truth work of each task.
    will_execute:
        False for padded iterations / unselected candidates.
    visible:
        False for stages revealed only after a planner completes.
    """

    spec: StageSpec
    task_durations: Sequence[float] = field(default_factory=list)
    will_execute: bool = True
    visible: bool = True


class ApplicationTemplate(abc.ABC):
    """Base class for compound LLM application generators."""

    #: Short identifier, e.g. ``"sequence_sorting"``.
    name: str = "application"
    #: Application category: "predefined", "chain" or "planning".
    category: str = "predefined"

    # ------------------------------------------------------------------ #
    # Sampling interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def sample_job(
        self, job_id: str, arrival_time: float, rng: np.random.Generator
    ) -> Job:
        """Sample a ground-truth job instance of this application."""

    def sample_jobs(
        self,
        count: int,
        rng: np.random.Generator,
        arrival_times: Optional[Sequence[float]] = None,
        id_prefix: Optional[str] = None,
    ) -> List[Job]:
        """Sample ``count`` jobs with the given (or zero) arrival times."""
        if count < 0:
            raise ValueError("count must be >= 0")
        prefix = id_prefix or self.name
        if arrival_times is None:
            arrival_times = [0.0] * count
        if len(arrival_times) != count:
            raise ValueError("arrival_times length must match count")
        return [
            self.sample_job(f"{prefix}-{i}", float(arrival_times[i]), rng)
            for i in range(count)
        ]

    # ------------------------------------------------------------------ #
    # Profiling interface (consumed by the Bayesian profiler)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def profile_variables(self) -> List[str]:
        """Profile keys of every (padded) stage, in topological order."""

    @abc.abstractmethod
    def profile_edges(self) -> List[Tuple[str, str]]:
        """Static data-flow edges between profile keys."""

    def dynamic_candidates(self) -> Dict[str, List[StageCandidate]]:
        """Candidate sets of dynamic stages, keyed by the dynamic stage's profile key."""
        return {}

    def llm_profile_keys(self) -> List[str]:
        """Profile keys of LLM stages (used by batching-aware calibration).

        The default implementation samples one job and inspects its stages;
        templates with data-dependent structure may override.
        """
        job = self.sample_job("__probe__", 0.0, np.random.default_rng(0))
        keys = []
        for stage in job.stages.values():
            if stage.is_llm and stage.profile_key not in keys:
                keys.append(stage.profile_key)
        return keys

    # ------------------------------------------------------------------ #
    # Construction helper shared by all templates
    # ------------------------------------------------------------------ #
    def build_job(
        self,
        job_id: str,
        arrival_time: float,
        draws: Sequence[StageDraw],
        edges: Iterable[Tuple[str, str]],
        reveals: Iterable[Tuple[str, str]] = (),
    ) -> Job:
        """Assemble and finalize a :class:`Job` from sampled stages."""
        job = Job(job_id, self.name, arrival_time)
        seen = set()
        for draw in draws:
            if draw.spec.stage_id in seen:
                raise JobBuildError(
                    f"{self.name}: duplicate stage id {draw.spec.stage_id!r}"
                )
            seen.add(draw.spec.stage_id)
            if draw.spec.stage_type is StageType.LLM and not draw.task_durations and draw.will_execute:
                raise JobBuildError(
                    f"{self.name}: LLM stage {draw.spec.stage_id!r} has no tasks"
                )
            stage = Stage(
                spec=draw.spec,
                job_id=job_id,
                task_durations=list(draw.task_durations),
                will_execute=draw.will_execute,
                visible=draw.visible,
            )
            job.add_stage(stage)
        try:
            for parent, child in edges:
                job.add_dependency(parent, child)
            for trigger, revealed in reveals:
                job.add_reveal(trigger, revealed)
            job.finalize()
        except ValueError as exc:
            raise JobBuildError(f"{self.name}: {exc}") from exc
        return job

    # ------------------------------------------------------------------ #
    # Historical summaries used by baseline schedulers
    # ------------------------------------------------------------------ #
    def estimate_mean_duration(
        self, rng: np.random.Generator, n_samples: int = 50
    ) -> float:
        """Monte-Carlo estimate of the mean total work of one job.

        Baselines such as SJF use this as the per-application "historical
        average duration" prior; LLMSched's profiler replaces it with the
        Bayesian posterior.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be > 0")
        totals = []
        for i in range(n_samples):
            job = self.sample_job(f"__est__{i}", 0.0, rng)
            totals.append(job.true_total_work)
        return float(np.mean(totals))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, category={self.category!r})"
