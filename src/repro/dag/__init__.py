"""LLM DAG model (paper Section IV-A).

A compound LLM application is described by three kinds of stages:

* **regular stages** — non-LLM tasks running on regular executors,
* **LLM stages** — autoregressive inference tasks running on batched LLM
  executors,
* **dynamic stages** — placeholders whose inner stages and dependencies are
  produced at runtime by a preceding LLM (planner) stage.

:class:`~repro.dag.job.Job` is a *runtime instance* of an application: it
carries the ground-truth structure and durations (known only to the
simulator) and exposes the partially-revealed view that schedulers see.
"""

from repro.dag.stage import Stage, StageSpec, StageState, StageType
from repro.dag.task import Task, TaskState, TaskType
from repro.dag.job import Job
from repro.dag.dynamic import DynamicPlan, StageCandidate
from repro.dag.application import ApplicationTemplate, JobBuildError

__all__ = [
    "Stage",
    "StageSpec",
    "StageState",
    "StageType",
    "Task",
    "TaskState",
    "TaskType",
    "Job",
    "DynamicPlan",
    "StageCandidate",
    "ApplicationTemplate",
    "JobBuildError",
]
