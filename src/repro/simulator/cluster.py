"""The cluster: pools of regular and LLM executors.

Capacity accounting is incremental: the cluster maintains a free-slot
counter per pool and a min-heap of idle regular-executor indices, so the
simulation engine's hot path (`free capacity?`, `place a task`, `finish a
task`) never scans the executor pools.  The counters stay exact as long as
assignments *and* completions go through the cluster (``assign_*_task`` /
``finish_*_task``); poking executors directly bypasses the bookkeeping.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dag.task import Task, TaskType
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.latency import DecodingLatencyProfile

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing of the serving cluster.

    The paper configures the executor counts per workload type so the cluster
    runs at a moderate (~85%) average load; :mod:`repro.experiments.runner`
    contains the sizing helper that does the same for this reproduction.
    """

    num_regular_executors: int = 8
    num_llm_executors: int = 4
    max_batch_size: int = 8
    latency_slope: float = 0.06

    def __post_init__(self) -> None:
        if self.num_regular_executors < 1:
            raise ValueError("num_regular_executors must be >= 1")
        if self.num_llm_executors < 1:
            raise ValueError("num_llm_executors must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.latency_slope < 0:
            raise ValueError("latency_slope must be >= 0")

    def latency_profile(self) -> DecodingLatencyProfile:
        return DecodingLatencyProfile(slope=self.latency_slope)


class Cluster:
    """Executor pools plus placement helpers used by the simulation engine."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        profile = config.latency_profile()
        self.regular_executors: List[RegularExecutor] = [
            RegularExecutor(f"reg-{i}") for i in range(config.num_regular_executors)
        ]
        self.llm_executors: List[LLMExecutor] = [
            LLMExecutor(f"llm-{i}", config.max_batch_size, profile)
            for i in range(config.num_llm_executors)
        ]
        self._by_id: Dict[str, object] = {
            e.executor_id: e for e in (*self.regular_executors, *self.llm_executors)
        }
        self._regular_index: Dict[str, int] = {
            e.executor_id: i for i, e in enumerate(self.regular_executors)
        }
        self._llm_index: Dict[str, int] = {
            e.executor_id: i for i, e in enumerate(self.llm_executors)
        }
        # Incremental capacity state (see module docstring).
        self._idle_regular_heap: List[int] = list(range(len(self.regular_executors)))
        self._free_regular = len(self.regular_executors)
        self._free_llm = config.max_batch_size * len(self.llm_executors)

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    def idle_regular_executors(self) -> List[RegularExecutor]:
        return [e for e in self.regular_executors if e.is_idle]

    def free_llm_slots(self) -> int:
        return self._free_llm

    def free_regular_slots(self) -> int:
        return self._free_regular

    def executor(self, executor_id: str):
        return self._by_id[executor_id]

    def regular_index(self, executor_id: str) -> int:
        """Pool index of a regular executor (for event bookkeeping)."""
        return self._regular_index[executor_id]

    def llm_index(self, executor_id: str) -> int:
        """Pool index of an LLM executor (for dirty-set bookkeeping)."""
        return self._llm_index[executor_id]

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def assign_regular_task(self, task: Task, time: float) -> Optional[str]:
        """Place a regular task on the lowest-index idle executor (None if full)."""
        if task.task_type is not TaskType.REGULAR:
            raise ValueError("assign_regular_task expects a regular task")
        while self._idle_regular_heap:
            index = heapq.heappop(self._idle_regular_heap)
            executor = self.regular_executors[index]
            if not executor.is_idle:
                continue  # stale entry (executor was mutated directly)
            executor.assign(task, time)
            self._free_regular -= 1
            return executor.executor_id
        return None

    def assign_llm_task(self, task: Task, time: float) -> Optional[str]:
        """Place an LLM task on the least-loaded LLM executor (None if full).

        Least-loaded placement is the simple load-balancing rule the paper
        uses for multiple LLM executors.
        """
        if task.task_type is not TaskType.LLM:
            raise ValueError("assign_llm_task expects an LLM task")
        candidates = [e for e in self.llm_executors if e.free_slots > 0]
        if not candidates:
            return None
        executor = min(candidates, key=lambda e: (e.batch_size, e.executor_id))
        executor.add_task(task, time)
        self._free_llm -= 1
        return executor.executor_id

    # ------------------------------------------------------------------ #
    # Completion (keeps the incremental capacity state in sync)
    # ------------------------------------------------------------------ #
    def finish_regular_task(self, executor: RegularExecutor, time: float) -> Task:
        """Complete the executor's current task and return it to the idle pool."""
        task = executor.finish_current(time)
        heapq.heappush(self._idle_regular_heap, self._regular_index[executor.executor_id])
        self._free_regular += 1
        return task

    def finish_llm_task(
        self, executor: LLMExecutor, task: Task, time: float, eps: float = 1e-6
    ) -> Task:
        """Complete ``task`` on ``executor`` and free its batch slot."""
        executor.finish_task(task, time, eps=eps)
        self._free_llm += 1
        return task

    # ------------------------------------------------------------------ #
    # Time keeping
    # ------------------------------------------------------------------ #
    def advance_to(self, time: float) -> None:
        """Accrue progress on every LLM executor up to ``time``."""
        for executor in self.llm_executors:
            executor.advance_to(time)

    def next_completion(self) -> Optional[Tuple[float, Task, str]]:
        """Earliest upcoming task completion across all executors.

        This is the full scan; the simulation engine keeps its own indexed
        view (completion-event heap + per-LLM-executor cache) and only falls
        back to this for diagnostics and tests.
        """
        best: Optional[Tuple[float, Task, str]] = None
        for executor in self.regular_executors:
            completion = executor.completion_time()
            if completion is not None and (best is None or completion < best[0]):
                best = (completion, executor.current_task, executor.executor_id)
        for executor in self.llm_executors:
            completion = executor.next_completion()
            if completion is not None and (best is None or completion[0] < best[0]):
                best = (completion[0], completion[1], executor.executor_id)
        return best

    def utilization(self, horizon: float) -> Dict[str, float]:
        """Average busy fraction of each executor pool over ``horizon`` seconds."""
        if horizon <= 0:
            return {"regular": 0.0, "llm": 0.0}
        regular_busy = sum(e.busy_time for e in self.regular_executors)
        llm_busy = sum(e.busy_time for e in self.llm_executors)
        return {
            "regular": regular_busy / (horizon * len(self.regular_executors)),
            "llm": llm_busy / (horizon * len(self.llm_executors)),
        }
