"""The cluster: pools of regular and LLM executors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dag.task import Task, TaskType
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.latency import DecodingLatencyProfile

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing of the serving cluster.

    The paper configures the executor counts per workload type so the cluster
    runs at a moderate (~85%) average load; :mod:`repro.experiments.runner`
    contains the sizing helper that does the same for this reproduction.
    """

    num_regular_executors: int = 8
    num_llm_executors: int = 4
    max_batch_size: int = 8
    latency_slope: float = 0.06

    def __post_init__(self) -> None:
        if self.num_regular_executors < 1:
            raise ValueError("num_regular_executors must be >= 1")
        if self.num_llm_executors < 1:
            raise ValueError("num_llm_executors must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.latency_slope < 0:
            raise ValueError("latency_slope must be >= 0")

    def latency_profile(self) -> DecodingLatencyProfile:
        return DecodingLatencyProfile(slope=self.latency_slope)


class Cluster:
    """Executor pools plus placement helpers used by the simulation engine."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        profile = config.latency_profile()
        self.regular_executors: List[RegularExecutor] = [
            RegularExecutor(f"reg-{i}") for i in range(config.num_regular_executors)
        ]
        self.llm_executors: List[LLMExecutor] = [
            LLMExecutor(f"llm-{i}", config.max_batch_size, profile)
            for i in range(config.num_llm_executors)
        ]
        self._by_id: Dict[str, object] = {
            e.executor_id: e for e in (*self.regular_executors, *self.llm_executors)
        }

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    def idle_regular_executors(self) -> List[RegularExecutor]:
        return [e for e in self.regular_executors if e.is_idle]

    def free_llm_slots(self) -> int:
        return sum(e.free_slots for e in self.llm_executors)

    def free_regular_slots(self) -> int:
        return len(self.idle_regular_executors())

    def executor(self, executor_id: str):
        return self._by_id[executor_id]

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def assign_regular_task(self, task: Task, time: float) -> Optional[str]:
        """Place a regular task on an idle regular executor (None if full)."""
        if task.task_type is not TaskType.REGULAR:
            raise ValueError("assign_regular_task expects a regular task")
        idle = self.idle_regular_executors()
        if not idle:
            return None
        executor = idle[0]
        executor.assign(task, time)
        return executor.executor_id

    def assign_llm_task(self, task: Task, time: float) -> Optional[str]:
        """Place an LLM task on the least-loaded LLM executor (None if full).

        Least-loaded placement is the simple load-balancing rule the paper
        uses for multiple LLM executors.
        """
        if task.task_type is not TaskType.LLM:
            raise ValueError("assign_llm_task expects an LLM task")
        candidates = [e for e in self.llm_executors if e.free_slots > 0]
        if not candidates:
            return None
        executor = min(candidates, key=lambda e: (e.batch_size, e.executor_id))
        executor.add_task(task, time)
        return executor.executor_id

    # ------------------------------------------------------------------ #
    # Time keeping
    # ------------------------------------------------------------------ #
    def advance_to(self, time: float) -> None:
        """Accrue progress on every LLM executor up to ``time``."""
        for executor in self.llm_executors:
            executor.advance_to(time)

    def next_completion(self) -> Optional[Tuple[float, Task, str]]:
        """Earliest upcoming task completion across all executors."""
        best: Optional[Tuple[float, Task, str]] = None
        for executor in self.regular_executors:
            completion = executor.completion_time()
            if completion is not None and (best is None or completion < best[0]):
                best = (completion, executor.current_task, executor.executor_id)
        for executor in self.llm_executors:
            completion = executor.next_completion()
            if completion is not None and (best is None or completion[0] < best[0]):
                best = (completion[0], completion[1], executor.executor_id)
        return best

    def utilization(self, horizon: float) -> Dict[str, float]:
        """Average busy fraction of each executor pool over ``horizon`` seconds."""
        if horizon <= 0:
            return {"regular": 0.0, "llm": 0.0}
        regular_busy = sum(e.busy_time for e in self.regular_executors)
        llm_busy = sum(e.busy_time for e in self.llm_executors)
        return {
            "regular": regular_busy / (horizon * len(self.regular_executors)),
            "llm": llm_busy / (horizon * len(self.llm_executors)),
        }
