"""The cluster: a composition of named executor pools.

The cluster used to own exactly two hard-coded pools (regular containers
and batched LLM engines); it is now a thin composition layer over N
:class:`~repro.simulator.pool.ExecutorPool` instances, each with its own
executor count, batch size, latency profile and speed factor.  The legacy
:class:`ClusterConfig` still builds the default two-pool cluster — with
identical executor ids and placement order, so existing traces are
reproduced bit for bit.

Capacity accounting is incremental inside each pool (free-slot counters,
idle heaps), so the simulation engine's hot path (`free capacity?`,
`place a task`, `finish a task`) never scans executors.  The counters stay
exact as long as assignments, preemptions *and* completions go through the
cluster (``assign_*`` / ``finish_*`` / ``preempt_task``); poking executors
directly bypasses the bookkeeping.

Which pool a task lands on is decided by the placement layer
(:mod:`repro.simulator.placement`); the legacy ``assign_regular_task`` /
``assign_llm_task`` helpers implement greedy first-fit in pool declaration
order, which is exactly the pre-pool behavior for the default cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dag.task import Task, TaskType
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.latency import DecodingLatencyProfile
from repro.simulator.pool import AnyExecutor, ExecutorPool, PoolSpec

__all__ = ["ClusterConfig", "Cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing of the default homogeneous two-pool serving cluster.

    The paper configures the executor counts per workload type so the cluster
    runs at a moderate (~85%) average load; :mod:`repro.experiments.runner`
    contains the sizing helper that does the same for this reproduction.
    Heterogeneous clusters bypass this config and pass
    :class:`~repro.simulator.pool.PoolSpec` sequences to :class:`Cluster`
    directly.
    """

    num_regular_executors: int = 8
    num_llm_executors: int = 4
    max_batch_size: int = 8
    latency_slope: float = 0.06

    def __post_init__(self) -> None:
        if self.num_regular_executors < 1:
            raise ValueError("num_regular_executors must be >= 1")
        if self.num_llm_executors < 1:
            raise ValueError("num_llm_executors must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.latency_slope < 0:
            raise ValueError("latency_slope must be >= 0")

    def latency_profile(self) -> DecodingLatencyProfile:
        return DecodingLatencyProfile(slope=self.latency_slope)

    def pool_specs(self) -> Tuple[PoolSpec, PoolSpec]:
        """The equivalent two-pool layout (ids match the pre-pool cluster)."""
        return (
            PoolSpec(
                name="regular",
                task_type=TaskType.REGULAR,
                num_executors=self.num_regular_executors,
                executor_id_prefix="reg",
            ),
            PoolSpec(
                name="llm",
                task_type=TaskType.LLM,
                num_executors=self.num_llm_executors,
                max_batch_size=self.max_batch_size,
                latency_slope=self.latency_slope,
                executor_id_prefix="llm",
            ),
        )


class Cluster:
    """Named executor pools plus the capacity surface the engine uses.

    Construct either from a legacy :class:`ClusterConfig` (default two-pool
    layout) or from an explicit sequence of pool specs::

        Cluster(ClusterConfig(num_regular_executors=8))
        Cluster(pools=[PoolSpec("cpu", TaskType.REGULAR, 8),
                       PoolSpec("a100", TaskType.LLM, 2, max_batch_size=8),
                       PoolSpec("h800", TaskType.LLM, 2, max_batch_size=16,
                                speed_factor=1.6)])

    The flat ``regular_executors`` / ``llm_executors`` views aggregate over
    pools in declaration order and only ever grow (scale-down retires
    executors in place), so flat indices held by the engine's event
    bookkeeping stay stable across autoscaling.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        pools: Optional[Sequence[PoolSpec]] = None,
    ) -> None:
        if config is not None and pools is not None:
            raise ValueError("pass either a ClusterConfig or pool specs, not both")
        if pools is None:
            config = config or ClusterConfig()
            specs: Sequence[PoolSpec] = config.pool_specs()
        else:
            specs = tuple(pools)
            if not specs:
                raise ValueError("a cluster needs at least one pool")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pool names: {names}")
        self.config = config

        self.regular_executors: List[RegularExecutor] = []
        self.llm_executors: List[LLMExecutor] = []
        self._by_id: Dict[str, AnyExecutor] = {}
        self._regular_index: Dict[str, int] = {}
        self._llm_index: Dict[str, int] = {}
        # executor_id -> pool *name* (resolved lazily: scale-up registers
        # executors while the pool object is being constructed/looked up).
        self._pool_name_of: Dict[str, str] = {}
        # executor_id -> hardware speed factor (static per executor), so
        # schedulers can translate remaining work into remaining wall time
        # without reaching into executor objects.
        self._speed_of: Dict[str, float] = {}
        # executor_id -> prefill/decode role (only executors of role-carrying
        # pools appear; empty for every non-disaggregated cluster).
        self._role_of: Dict[str, str] = {}

        self.pools: List[ExecutorPool] = []
        self._pools_by_name: Dict[str, ExecutorPool] = {}
        self._regular_pools: List[ExecutorPool] = []
        self._llm_pools: List[ExecutorPool] = []
        for spec in specs:
            pool = ExecutorPool(spec, on_new_executor=self._make_registrar(spec))
            self.pools.append(pool)
            self._pools_by_name[spec.name] = pool
            (self._regular_pools if spec.task_type is TaskType.REGULAR else self._llm_pools).append(pool)

    def _make_registrar(self, spec: PoolSpec):
        def register(executor: AnyExecutor) -> None:
            if executor.executor_id in self._by_id:  # pragma: no cover - defensive
                raise ValueError(f"duplicate executor id {executor.executor_id!r}")
            self._by_id[executor.executor_id] = executor
            self._pool_name_of[executor.executor_id] = spec.name
            self._speed_of[executor.executor_id] = spec.speed_factor
            if spec.role is not None:
                self._role_of[executor.executor_id] = spec.role
            if spec.task_type is TaskType.REGULAR:
                self._regular_index[executor.executor_id] = len(self.regular_executors)
                self.regular_executors.append(executor)
            else:
                self._llm_index[executor.executor_id] = len(self.llm_executors)
                self.llm_executors.append(executor)

        return register

    # ------------------------------------------------------------------ #
    # Pool access
    # ------------------------------------------------------------------ #
    def pool(self, name: str) -> ExecutorPool:
        return self._pools_by_name[name]

    def pools_for(self, task_type: TaskType) -> List[ExecutorPool]:
        """Pools serving ``task_type``, in declaration (placement) order."""
        return self._regular_pools if task_type is TaskType.REGULAR else self._llm_pools

    def pool_of_executor(self, executor_id: str) -> ExecutorPool:
        return self._pools_by_name[self._pool_name_of[executor_id]]

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    def idle_regular_executors(self) -> List[RegularExecutor]:
        return [e for e in self.regular_executors if e.is_idle]

    def free_llm_slots(self) -> int:
        # Plain loop, no generator allocation: this is read once per task in
        # the engine's placement loop.  Each pool's counter is incremental,
        # so the read is O(#pools) with #pools typically 1-2 per type.
        total = 0
        for pool in self._llm_pools:
            total += pool.free_slots
        return total

    def free_regular_slots(self) -> int:
        total = 0
        for pool in self._regular_pools:
            total += pool.free_slots
        return total

    def free_slots(self, task_type: TaskType) -> int:
        total = 0
        for pool in self.pools_for(task_type):
            total += pool.free_slots
        return total

    def total_capacity(self) -> int:
        """Assignable task slots across all active executors of all pools.

        The denominator of cluster-level load signals (federation routing
        and migration use jobs-per-slot); tracks autoscaling because each
        pool's capacity counts active executors only.
        """
        total = 0
        for pool in self.pools:
            total += pool.capacity
        return total

    def inactive_executor_ids(self):
        """Ids of draining/retired executors across all pools (usually empty)."""
        ids = set()
        for pool in self.pools:
            if pool.has_inactive_executors:
                ids |= pool.inactive_executor_ids()
        return ids

    def active_llm_batch_sizes(self) -> List[int]:
        """Batch sizes of LLM executors still accepting work.

        Excludes retired and draining executors so batching-aware duration
        calibration reflects where *new* tasks can land (under autoscaling
        a retired executor would otherwise report batch size 0 forever and
        drag the average down).
        """
        sizes: List[int] = []
        for pool in self._llm_pools:
            for executor in pool.executors:
                if pool.is_active(executor.executor_id):
                    sizes.append(executor.batch_size)
        return sizes

    def executor(self, executor_id: str):
        return self._by_id[executor_id]

    def executor_speeds(self) -> Dict[str, float]:
        """Live executor-id → speed-factor map (read-only by convention).

        Speeds are static per executor, so the engine can hand the same
        dict to every scheduling context without copying.
        """
        return self._speed_of

    def executor_roles(self) -> Dict[str, str]:
        """Live executor-id → prefill/decode-role map (read-only by convention).

        Like :meth:`executor_speeds`, roles are static per executor, so the
        same dict is shared with every scheduling context.  Empty unless the
        cluster declares disaggregated pools.
        """
        return self._role_of

    def regular_index(self, executor_id: str) -> int:
        """Flat pool index of a regular executor (for event bookkeeping)."""
        return self._regular_index[executor_id]

    def llm_index(self, executor_id: str) -> int:
        """Flat pool index of an LLM executor (for dirty-set bookkeeping)."""
        return self._llm_index[executor_id]

    # ------------------------------------------------------------------ #
    # Placement (greedy first-fit over pools; see repro.simulator.placement
    # for the pluggable policies the engine uses)
    # ------------------------------------------------------------------ #
    def assign_regular_task(self, task: Task, time: float) -> Optional[str]:
        """First-fit across regular pools (lowest-index idle executor within)."""
        if task.task_type is not TaskType.REGULAR:
            raise ValueError("assign_regular_task expects a regular task")
        for pool in self._regular_pools:
            placed = pool.assign(task, time)
            if placed is not None:
                return placed
        return None

    def assign_llm_task(self, task: Task, time: float) -> Optional[str]:
        """First-fit across LLM pools (least-loaded executor within a pool).

        Least-loaded placement is the simple load-balancing rule the paper
        uses for multiple LLM executors.
        """
        if task.task_type is not TaskType.LLM:
            raise ValueError("assign_llm_task expects an LLM task")
        for pool in self._llm_pools:
            placed = pool.assign(task, time)
            if placed is not None:
                return placed
        return None

    # ------------------------------------------------------------------ #
    # Completion and preemption (keep the incremental capacity state in sync)
    # ------------------------------------------------------------------ #
    def finish_regular_task(self, executor: RegularExecutor, time: float) -> Task:
        """Complete the executor's current task and return it to the idle pool."""
        return self.pool_of_executor(executor.executor_id).finish_regular_task(executor, time)

    def finish_llm_task(
        self, executor: LLMExecutor, task: Task, time: float, eps: float = 1e-6
    ) -> Task:
        """Complete ``task`` on ``executor`` and free its batch slot."""
        return self.pool_of_executor(executor.executor_id).finish_llm_task(executor, task, time, eps=eps)

    def preempt_task(self, task: Task, time: float, checkpoint: bool = True) -> float:
        """Checkpoint a running task back to PENDING; returns wasted work."""
        if task.executor_id is None:
            raise ValueError(f"task {task.key()} is not placed on any executor")
        return self.pool_of_executor(task.executor_id).preempt(task, time, checkpoint=checkpoint)

    # ------------------------------------------------------------------ #
    # Elasticity
    # ------------------------------------------------------------------ #
    def scale_pool(self, name: str, delta: int) -> int:
        """Resize a pool by ``delta`` executors; returns the applied change.

        Positive deltas add executors (new flat indices appear at the end of
        the executor views); negative deltas retire/drain executors in
        place.  Bounded by the pool spec's ``min_executors`` /
        ``max_executors``.
        """
        pool = self._pools_by_name[name]
        if delta >= 0:
            return pool.scale_up(delta)
        return -pool.scale_down(-delta)

    # ------------------------------------------------------------------ #
    # Time keeping
    # ------------------------------------------------------------------ #
    def advance_to(self, time: float) -> None:
        """Accrue progress on every LLM executor up to ``time``."""
        for executor in self.llm_executors:
            executor.advance_to(time)

    def next_completion(self) -> Optional[Tuple[float, Task, str]]:
        """Earliest upcoming task completion across all executors.

        This is the full scan; the simulation engine keeps its own indexed
        view (completion-event heap + per-LLM-executor cache) and only falls
        back to this for diagnostics and tests.
        """
        best: Optional[Tuple[float, Task, str]] = None
        for executor in self.regular_executors:
            completion = executor.completion_time()
            if completion is not None and (best is None or completion < best[0]):
                best = (completion, executor.current_task, executor.executor_id)
        for executor in self.llm_executors:
            completion = executor.next_completion()
            if completion is not None and (best is None or completion[0] < best[0]):
                best = (completion[0], completion[1], executor.executor_id)
        return best

    def utilization(self, horizon: float) -> Dict[str, float]:
        """Average busy fraction of each executor type over ``horizon`` seconds."""
        if horizon <= 0:
            return {"regular": 0.0, "llm": 0.0}
        result: Dict[str, float] = {}
        for key, executors in (("regular", self.regular_executors), ("llm", self.llm_executors)):
            if not executors:
                result[key] = 0.0
                continue
            busy = sum(e.busy_time for e in executors)
            result[key] = busy / (horizon * len(executors))
        return result

    def pool_utilization(self, horizon: float) -> Dict[str, float]:
        """Average busy fraction per named pool over ``horizon`` seconds."""
        return {p.name: p.utilization(horizon) for p in self.pools}
