"""Executors: regular containers and batched LLM engines."""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.dag.task import Task, TaskType
from repro.simulator.latency import DecodingLatencyProfile

__all__ = ["RegularExecutor", "LLMExecutor"]

_EPS = 1e-9


class RegularExecutor:
    """An executor (e.g. a container) running one regular task at a time.

    ``speed`` is the pool's relative hardware speed: a task with ``w``
    seconds of remaining work occupies the executor for ``w / speed``
    wall-clock seconds.  The default of 1.0 keeps the completion-time
    arithmetic bit-identical to the homogeneous cluster.
    """

    def __init__(self, executor_id: str, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError("speed must be > 0")
        self.executor_id = executor_id
        self.speed = float(speed)
        self.current_task: Optional[Task] = None
        self._task_started_at: float = 0.0
        self.busy_time: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def is_idle(self) -> bool:
        return self.current_task is None

    def assign(self, task: Task, time: float) -> None:
        if not self.is_idle:
            raise RuntimeError(f"executor {self.executor_id} is busy")
        if task.task_type is not TaskType.REGULAR:
            raise ValueError(f"executor {self.executor_id} only runs regular tasks")
        task.mark_running(time, self.executor_id)
        self.current_task = task
        self._task_started_at = float(time)

    def completion_time(self) -> Optional[float]:
        """Absolute time at which the current task will finish (None if idle).

        Uses the task's *remaining* work (a checkpointed task resumes where
        it left off) scaled by the executor speed; at progress 0 and speed 1
        this reduces exactly to ``start + work``.
        """
        if self.current_task is None:
            return None
        return self._task_started_at + self.current_task.remaining_work / self.speed

    def preempt_current(self, time: float, checkpoint: bool = True) -> float:
        """Checkpoint the running task back to PENDING at ``time``.

        Progress accrued so far is banked on the task (work conservation)
        unless ``checkpoint=False``, in which case it is discarded.  Returns
        the amount of work wasted (0 for a checkpointed preemption).
        """
        if self.current_task is None:
            raise RuntimeError(f"executor {self.executor_id} has no task to preempt")
        task = self.current_task
        elapsed = max(0.0, time - self._task_started_at)
        task.advance(elapsed * self.speed)
        wasted = task.mark_preempted(checkpoint=checkpoint)
        self.busy_time += elapsed
        self.current_task = None
        return wasted

    def finish_current(self, time: float) -> Task:
        """Complete the current task at ``time`` and free the executor."""
        if self.current_task is None:
            raise RuntimeError(f"executor {self.executor_id} has no running task")
        task = self.current_task
        task.mark_finished(time)
        self.busy_time += time - self._task_started_at
        self.current_task = None
        return task

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.is_idle else f"running {self.current_task.key()}"
        return f"RegularExecutor({self.executor_id}, {state})"


class LLMExecutor:
    """A serving-engine instance executing LLM tasks with continuous batching.

    Every running request progresses concurrently; the per-request progress
    rate depends on the current batch size through the decoding-latency
    profile.  Whenever the batch composition changes, callers must first
    bring the executor up to date with :meth:`advance_to` so that progress
    is accounted at the correct rates (this is exactly how the paper's
    simulator "dynamically adjusts the remaining duration of each running
    LLM task whenever the number of concurrent running requests changes").
    """

    def __init__(
        self,
        executor_id: str,
        max_batch_size: int,
        latency_profile: Optional[DecodingLatencyProfile] = None,
        speed_factor: float = 1.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if speed_factor <= 0:
            raise ValueError("speed_factor must be > 0")
        self.executor_id = executor_id
        self.max_batch_size = int(max_batch_size)
        self.latency_profile = latency_profile or DecodingLatencyProfile()
        self.speed_factor = float(speed_factor)
        self.running: List[Task] = []
        self.busy_time: float = 0.0
        self._last_update: float = 0.0
        #: Inter-token latency samples (seconds/token), one per task per
        #: constant-batch segment in which it emitted at least one decode
        #: token.  Drained by the engine at finalize; bounded by the number
        #: of batch-composition changes, not by token counts.
        self.itl_samples: List[float] = []

    def _rate(self) -> float:
        """Per-request progress rate at the current batch size.

        ``speed_factor`` scales the whole profile (heterogeneous pools);
        multiplying by the default 1.0 is exact, so homogeneous clusters
        keep bit-identical progress arithmetic.
        """
        return self.latency_profile.speed(self.batch_size) * self.speed_factor

    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        return len(self.running)

    @property
    def free_slots(self) -> int:
        return self.max_batch_size - self.batch_size

    @property
    def is_idle(self) -> bool:
        return not self.running

    # ------------------------------------------------------------------ #
    def advance_to(self, time: float) -> None:
        """Accrue progress for all running tasks up to ``time``."""
        if time < self._last_update - _EPS:
            raise ValueError(
                f"time moved backwards on {self.executor_id}: "
                f"{time} < {self._last_update}"
            )
        elapsed = max(0.0, time - self._last_update)
        if elapsed > 0 and self.running:
            rate = self._rate()
            for task in self.running:
                old_progress = task.progress
                task.advance(elapsed * rate)
                if task.has_token_model:
                    self._record_token_progress(task, old_progress, rate)
            self.busy_time += elapsed
        self._last_update = float(time)

    def _record_token_progress(self, task: Task, old_progress: float, rate: float) -> None:
        """Token-grain instrumentation for one constant-batch segment.

        Pure observation on top of the legacy progress arithmetic: it reads
        the progress a task accrued between ``old_progress`` and
        ``task.progress`` (both already computed by the unchanged
        ``task.advance`` call) and derives token events from the
        prefill/decode decomposition.  ``self._last_update`` is still the
        segment start time when this runs.
        """
        # First token: progress crossed the prefill boundary this segment.
        if task.first_token_time is None and task.progress >= task.prefill_work:
            crossing = (task.prefill_work - old_progress) / rate
            task.first_token_time = self._last_update + max(0.0, crossing)
        # Inter-token latency: one sample per segment in which the task
        # emitted at least one whole decode token.  At a constant batch rate
        # every decode token takes per_token_decode_work / rate wall-clock
        # seconds, so the sample value is exact, not an average.
        per_token = task.per_token_decode_work()
        if per_token is None or per_token <= 0:
            return
        old_tokens = math.floor(max(0.0, old_progress - task.prefill_work) / per_token)
        new_tokens = math.floor(max(0.0, task.progress - task.prefill_work) / per_token)
        if new_tokens > old_tokens:
            self.itl_samples.append(per_token / rate)

    def drain_itl_samples(self) -> List[float]:
        """Hand the accumulated ITL samples to the caller and reset."""
        samples = self.itl_samples
        self.itl_samples = []
        return samples

    def add_task(self, task: Task, time: float) -> None:
        """Admit a new request to the batch at ``time``."""
        if task.task_type is not TaskType.LLM:
            raise ValueError(f"executor {self.executor_id} only runs LLM tasks")
        if self.free_slots <= 0:
            raise RuntimeError(f"executor {self.executor_id} batch is full")
        self.advance_to(time)
        task.mark_running(time, self.executor_id)
        self.running.append(task)

    def next_completion(self) -> Optional[Tuple[float, Task]]:
        """(absolute finish time, task) of the earliest-finishing request.

        Assumes the batch composition stays as it is now; the engine
        re-queries after every change.
        """
        if not self.running:
            return None
        best_task = min(self.running, key=lambda t: (t.remaining_work, t.uid))
        return self.completion_time_of(best_task), best_task

    def completion_time_of(self, task: Task) -> float:
        """Absolute finish time of ``task`` if the batch stays as it is now.

        While the batch composition is unchanged, every request progresses at
        the same rate, so the earliest-finishing *task* stays the same even
        though progress accrues; the engine's fast path caches that task and
        re-derives its finish time from current executor state with this
        method (the same arithmetic as :meth:`next_completion`).
        """
        rate = self._rate()
        return self._last_update + task.remaining_work / rate

    def finish_task(self, task: Task, time: float, eps: float = 1e-6) -> None:
        """Complete ``task`` at ``time`` and remove it from the batch.

        ``eps`` is the remaining-work tolerance below which a task counts as
        done; the simulation engine passes its configured epsilon through so
        the engine and the executor agree on what "finished" means.
        """
        if task not in self.running:
            raise RuntimeError(f"task {task.key()} is not running on {self.executor_id}")
        self.advance_to(time)
        if task.remaining_work > eps:
            raise RuntimeError(
                f"task {task.key()} still has {task.remaining_work:.6f}s of work"
            )
        if task.has_token_model and task.first_token_time is None:
            # Zero-elapsed edge (e.g. zero-work requests): the first token
            # is emitted at completion.
            task.first_token_time = float(time)
        task.mark_finished(time)
        self.running.remove(task)

    def preempt_task(self, task: Task, time: float, checkpoint: bool = True) -> float:
        """Checkpoint ``task`` out of the batch back to PENDING at ``time``.

        Progress is accrued up to ``time`` first (at the pre-removal batch
        rate), then banked on the task unless ``checkpoint=False``.  The
        remaining batch speeds up from ``time`` onwards, exactly as if the
        request had finished.  Returns the work wasted (0 if checkpointed).
        """
        if task not in self.running:
            raise RuntimeError(f"task {task.key()} is not running on {self.executor_id}")
        self.advance_to(time)
        wasted = task.mark_preempted(checkpoint=checkpoint)
        self.running.remove(task)
        return wasted

    def finished_tasks_at(self, time: float) -> List[Task]:
        """Tasks whose work completes at (or before) ``time``."""
        if not self.running:
            return []
        rate = self._rate()
        horizon = max(0.0, time - self._last_update) * rate
        return [t for t in self.running if t.remaining_work <= horizon + 1e-9]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LLMExecutor({self.executor_id}, batch={self.batch_size}/"
            f"{self.max_batch_size})"
        )
