"""The common engine contract shared by single-cluster and federated runs.

:class:`SimulationEngine` and :class:`FederatedSimulationEngine` grew the
same driving surface independently — ``run()`` to completion, ``step()``
for one scheduling point, ``finalize()`` for the run-level metrics, and a
``current_time`` clock — but nothing enforced it, so harness code
duck-typed.  :class:`SimulationEngineProtocol` pins the contract down as a
:func:`~typing.runtime_checkable` :class:`~typing.Protocol`;
:func:`ensure_engine_protocol` is the runner's guard that whatever engine
it built actually satisfies it.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["SimulationEngineProtocol", "ensure_engine_protocol"]


@runtime_checkable
class SimulationEngineProtocol(Protocol):
    """What every simulation engine must expose to the experiment harness.

    ``run()`` drives the workload to completion and returns the run's
    metrics object (:class:`~repro.simulator.metrics.SimulationMetrics` or
    :class:`~repro.simulator.federation.FederationMetrics`); ``step()``
    advances through exactly one scheduling point and returns ``False``
    once no further progress is possible; ``finalize()`` fills the
    run-level metrics after manual stepping.  ``run()`` is equivalent to
    stepping until ``False`` and finalizing.
    """

    @property
    def current_time(self) -> float: ...

    def step(self) -> bool: ...

    def finalize(self) -> Any: ...

    def run(self) -> Any: ...


def ensure_engine_protocol(engine: Any) -> Any:
    """Assert ``engine`` satisfies the protocol; returns it for chaining.

    ``runtime_checkable`` protocols only verify member *presence*, which is
    exactly the guard the harness needs in place of duck-typing: a missing
    ``step``/``run``/``finalize`` fails loudly at construction time instead
    of deep inside a sweep worker.
    """
    if not isinstance(engine, SimulationEngineProtocol):
        missing = [
            name
            for name in ("current_time", "step", "finalize", "run")
            if not hasattr(engine, name)
        ]
        raise TypeError(
            f"{type(engine).__name__} does not satisfy SimulationEngineProtocol "
            f"(missing: {missing})"
        )
    return engine
