"""The discrete-event simulation engine (indexed fast path).

The engine owns the clock, the cluster and the job set; the scheduling
policy is pluggable.  Scheduling points are job arrivals and task
completions.  At every scheduling point the engine snapshots the cluster,
invokes the scheduler (timing the call for the scheduling-overhead numbers
of the paper's Table I) and greedily places tasks from the returned
preference lists onto free capacity.

Event core
----------
The original engine rescanned every executor at every iteration.  This
implementation keeps indexed state instead:

* **Regular executors** — completion events live in a min-heap
  (:class:`~repro.simulator.events.EventQueue`) pushed at placement time.
  Entries are lazily invalidated: a popped/peeked entry whose executor no
  longer runs a task with that completion time is discarded.
* **LLM executors** — a per-request completion time depends on the batch
  composition, but the *absolute* finish time of the earliest-finishing
  request is invariant under progress accrual while the batch is unchanged.
  The engine therefore caches one candidate completion time per LLM
  executor and keeps a *dirty set* of executors whose batch changed; only
  dirty executors are rescanned.
* **Jobs** — active jobs live in an insertion-ordered dict keyed by job id,
  so membership tests and completion removal are O(1).
* **Capacity** — free-slot counts are maintained incrementally by the
  :class:`~repro.simulator.cluster.Cluster`, so building a
  :class:`~repro.schedulers.base.SchedulingContext` does not recompute
  cluster state.

Open-loop workloads
-------------------
``jobs`` may be a materialized sequence (closed loop, sorted internally) or
any iterator/generator yielding jobs in non-decreasing arrival order (open
loop, e.g. :func:`repro.workloads.arrivals.open_loop_jobs`).  Streamed jobs
are admitted lazily and dropped from the engine's indexes once they
complete, so the heavy per-job state (DAG, stages, tasks) only exists for
*concurrently active* jobs.  What still grows with the total job count is
O(1) per job: the seen-id set (duplicate detection) and the per-job JCT
entries in :class:`SimulationMetrics`.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.dag.job import Job
from repro.dag.stage import StageState
from repro.dag.task import Task, TaskType
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.events import EventQueue, EventType
from repro.simulator.metrics import SimulationMetrics

__all__ = ["SimulationConfig", "SimulationEngine"]

_EPS = 1e-9


@dataclass(frozen=True)
class SimulationConfig:
    """Safety limits and bookkeeping knobs for a simulation run.

    ``eps`` is the shared tolerance used for time comparisons and for the
    remaining-work threshold below which an LLM task counts as finished
    (previously a hard-coded ``1e-6`` in the completion scan).
    """

    max_simulated_time: float = 10_000_000.0
    max_iterations: int = 20_000_000
    eps: float = _EPS

    def __post_init__(self) -> None:
        if self.max_simulated_time <= 0:
            raise ValueError("max_simulated_time must be > 0")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be > 0")
        if self.eps <= 0:
            raise ValueError("eps must be > 0")


class SimulationEngine:
    """Runs one workload with one scheduler on one cluster."""

    def __init__(
        self,
        jobs: Iterable[Job],
        scheduler: Scheduler,
        cluster: Optional[Cluster] = None,
        cluster_config: Optional[ClusterConfig] = None,
        config: Optional[SimulationConfig] = None,
        workload_name: str = "",
    ) -> None:
        if cluster is None:
            cluster = Cluster(cluster_config or ClusterConfig())
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        if isinstance(jobs, Sequence):
            if not jobs:
                raise ValueError("cannot simulate an empty job list")
            ordered = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
            if len({j.job_id for j in ordered}) != len(ordered):
                raise ValueError("duplicate job ids in workload")
            self._arrivals: Iterator[Job] = iter(ordered)
        else:
            self._arrivals = iter(jobs)
        self.metrics = SimulationMetrics(
            scheduler_name=scheduler.name, workload_name=workload_name
        )
        self._time = 0.0
        self._active_jobs: Dict[str, Job] = {}
        self._seen_job_ids: Set[str] = set()
        self._last_arrival_time = 0.0
        self._next_arrival: Optional[Job] = None
        self._pull_arrival()

        # Indexed event core (see module docstring).  For LLM executors the
        # cache holds the earliest-finishing *task*: its identity is stable
        # while the batch is unchanged, whereas its absolute finish time is
        # re-derived from current executor state on every query so the clock
        # stays bit-identical with the reference engine's full rescans.
        self._regular_events = EventQueue()
        self._llm_best: List[Optional[Task]] = [None] * len(cluster.llm_executors)
        self._dirty_llm: Set[int] = set(range(len(cluster.llm_executors)))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationMetrics:
        """Execute the workload to completion and return the metrics."""
        iterations = 0
        while self._next_arrival is not None or self._active_jobs:
            iterations += 1
            if iterations > self.config.max_iterations:
                raise RuntimeError("simulation exceeded max_iterations; likely a livelock")
            if self._time > self.config.max_simulated_time:
                raise RuntimeError("simulation exceeded max_simulated_time")

            self._admit_arrivals(self._time)
            self._dispatch()

            next_time = self._next_event_time()
            if next_time is None:
                self._check_for_deadlock()
                break
            self._time = max(self._time, next_time)
            self.cluster.advance_to(self._time)
            self._process_completions(self._time)

        self.metrics.num_events = iterations
        self.metrics.makespan = self._time
        self.metrics.utilization = self.cluster.utilization(max(self._time, _EPS))
        return self.metrics

    @property
    def current_time(self) -> float:
        return self._time

    @property
    def num_active_jobs(self) -> int:
        """Jobs admitted and not yet finished (open-loop memory footprint)."""
        return len(self._active_jobs)

    # ------------------------------------------------------------------ #
    # Arrivals
    # ------------------------------------------------------------------ #
    def _pull_arrival(self) -> None:
        self._next_arrival = next(self._arrivals, None)
        if self._next_arrival is None:
            return
        job = self._next_arrival
        if job.job_id in self._seen_job_ids:
            raise ValueError(f"duplicate job id {job.job_id!r} in arrival stream")
        self._seen_job_ids.add(job.job_id)
        if job.arrival_time < self._last_arrival_time - self.config.eps:
            raise ValueError(
                f"arrival stream is not time-ordered: job {job.job_id!r} arrives at "
                f"{job.arrival_time} after {self._last_arrival_time}"
            )
        self._last_arrival_time = max(self._last_arrival_time, job.arrival_time)

    def _admit_arrivals(self, now: float) -> None:
        eps = self.config.eps
        while self._next_arrival is not None and self._next_arrival.arrival_time <= now + eps:
            job = self._next_arrival
            self._pull_arrival()
            if job.is_finished:
                # Degenerate jobs (everything skipped) complete on arrival.
                self._record_job_completion(job)
                continue
            self._active_jobs[job.job_id] = job
            self.scheduler.on_job_arrival(job, now)

    # ------------------------------------------------------------------ #
    # Scheduling and placement
    # ------------------------------------------------------------------ #
    def _build_context(self) -> SchedulingContext:
        return SchedulingContext(
            time=self._time,
            jobs=list(self._active_jobs.values()),
            free_regular_slots=self.cluster.free_regular_slots(),
            free_llm_slots=self.cluster.free_llm_slots(),
            llm_batch_sizes=[e.batch_size for e in self.cluster.llm_executors],
        )

    def _dispatch(self) -> None:
        if not self._active_jobs:
            return
        if self.cluster.free_regular_slots() == 0 and self.cluster.free_llm_slots() == 0:
            return
        context = self._build_context()
        if not context.schedulable_tasks():
            return

        started = wallclock.perf_counter()
        decision = self.scheduler.schedule(context)
        overhead = wallclock.perf_counter() - started
        self.metrics.record_scheduler_invocation(overhead)

        for task in decision.regular_tasks:
            if self.cluster.free_regular_slots() == 0:
                break
            self._place_task(task, TaskType.REGULAR)
        for task in decision.llm_tasks:
            if self.cluster.free_llm_slots() == 0:
                break
            self._place_task(task, TaskType.LLM)

    def _place_task(self, task: Task, expected_type: TaskType) -> None:
        if task.task_type is not expected_type:
            raise RuntimeError(
                f"scheduler put {task.key()} in the wrong preference list"
            )
        if task.state.name != "PENDING":
            return  # Already placed by an earlier (duplicate) preference entry.
        job = self._active_jobs.get(task.job_id)
        if job is None:
            return
        stage = job.stage(task.stage_id)
        if stage.state not in (StageState.READY, StageState.RUNNING) or not stage.visible:
            return  # Not actually schedulable; ignore the preference entry.
        if expected_type is TaskType.REGULAR:
            placed = self.cluster.assign_regular_task(task, self._time)
            if placed is not None:
                index = self.cluster.regular_index(placed)
                finish = self.cluster.regular_executors[index].completion_time()
                self._regular_events.push(finish, EventType.TASK_FINISH, index)
        else:
            placed = self.cluster.assign_llm_task(task, self._time)
            if placed is not None:
                self._dirty_llm.add(self.cluster.llm_index(placed))
        if placed is not None:
            stage.mark_running()
            job.invalidate_schedulable_cache()

    # ------------------------------------------------------------------ #
    # Time advance and completions
    # ------------------------------------------------------------------ #
    def _peek_regular_completion(self) -> Optional[float]:
        """Earliest valid regular completion, discarding stale heap entries."""
        queue = self._regular_events
        eps = self.config.eps
        while queue:
            event = queue.peek()
            executor = self.cluster.regular_executors[event.payload]
            completion = executor.completion_time()
            if completion is None or abs(completion - event.time) > eps:
                queue.pop()  # lazy invalidation
                continue
            return event.time
        return None

    def _llm_completion_time(self, index: int) -> Optional[float]:
        """Cached candidate completion time of one LLM executor."""
        task = self._llm_best[index]
        if task is None:
            return None
        return self.cluster.llm_executors[index].completion_time_of(task)

    def _next_llm_completion(self) -> Optional[float]:
        """Earliest LLM completion; only dirty executors are rescanned."""
        if self._dirty_llm:
            for index in self._dirty_llm:
                upcoming = self.cluster.llm_executors[index].next_completion()
                self._llm_best[index] = None if upcoming is None else upcoming[1]
            self._dirty_llm.clear()
        best: Optional[float] = None
        for index in range(len(self._llm_best)):
            completion = self._llm_completion_time(index)
            if completion is not None and (best is None or completion < best):
                best = completion
        return best

    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        regular = self._peek_regular_completion()
        if regular is not None:
            candidates.append(regular)
        llm = self._next_llm_completion()
        if llm is not None:
            candidates.append(llm)
        if self._next_arrival is not None:
            candidates.append(self._next_arrival.arrival_time)
        if not candidates:
            return None
        return min(candidates)

    def _process_completions(self, now: float) -> None:
        eps = self.config.eps
        finished_tasks: List[Task] = []

        # Regular executors: pop every due completion event.  Same-time
        # completions finish in pool order, matching the original full scan.
        due: List[int] = []
        queue = self._regular_events
        while queue and queue.peek().time <= now + eps:
            event = queue.pop()
            executor = self.cluster.regular_executors[event.payload]
            completion = executor.completion_time()
            if completion is None or completion > now + eps:
                continue  # stale entry
            due.append(event.payload)
        for index in sorted(set(due)):
            executor = self.cluster.regular_executors[index]
            finished_tasks.append(self.cluster.finish_regular_task(executor, now))

        # LLM executors: the cached candidate is the batch's least-remaining
        # task (progress was accrued by advance_to), so the executor can hold
        # finished requests only if that task's remaining work is within eps.
        # Gating on remaining work — not on the candidate completion *time* —
        # matches the reference engine's sweep rule exactly: with batch > 1
        # and a positive latency slope the progress rate is < 1, and a task
        # with remaining work in (eps * rate, eps] must still finish *now*.
        for index, executor in enumerate(self.cluster.llm_executors):
            candidate = self._llm_best[index]
            if candidate is None or candidate.remaining_work > eps:
                continue
            for task in list(executor.running):
                if task.remaining_work <= eps:
                    self.cluster.finish_llm_task(executor, task, now, eps=eps)
                    finished_tasks.append(task)
            self._dirty_llm.add(index)

        for task in finished_tasks:
            self.metrics.num_tasks_executed += 1
            job = self._active_jobs.get(task.job_id)
            if job is None:  # pragma: no cover - defensive; jobs outlive their tasks
                continue
            stage = job.stage(task.stage_id)
            if stage.all_tasks_finished() and stage.state is StageState.RUNNING:
                job.notify_stage_finished(stage.stage_id, now)
                self.scheduler.on_stage_complete(job, stage, now)
                if job.is_finished:
                    self._record_job_completion(job)

    def _record_job_completion(self, job: Job) -> None:
        if job.jct is None:
            raise RuntimeError(f"job {job.job_id} has no completion time")
        self.metrics.record_job_completion(job.job_id, job.application, job.jct)
        self.scheduler.on_job_complete(job, self._time)
        self._active_jobs.pop(job.job_id, None)

    # ------------------------------------------------------------------ #
    def _check_for_deadlock(self) -> None:
        """Raise if jobs remain but nothing can ever make progress again."""
        stuck = [j for j in self._active_jobs.values() if not j.is_finished]
        if not stuck:
            return
        pending = sum(len(j.schedulable_tasks()) for j in stuck)
        raise RuntimeError(
            f"simulation stalled at t={self._time:.2f}s with {len(stuck)} unfinished "
            f"jobs and {pending} schedulable tasks; the scheduler is not work-conserving"
        )
