"""The discrete-event simulation engine (indexed fast path).

The engine owns the clock, the cluster and the job set; the scheduling
policy, the placement policy and (optionally) an autoscaler are pluggable.
Scheduling points are job arrivals, task completions, periodic scale
events (when an autoscaler is configured) and decision-ready events (when
an :class:`~repro.simulator.async_sched.AsyncSchedulerBackend` is
configured).  At every scheduling point the engine snapshots the cluster,
invokes the scheduler (timing the call for the scheduling-overhead
numbers of the paper's Table I), applies any preemption directives the
decision carries (checkpointing running tasks back to pending with work
conserved), and walks the returned preference lists, asking the placement
policy for a pool per task.  With an async backend the invocation runs
against a frozen snapshot instead (copy-on-write by default, deep copy
under ``SimulationConfig(snapshot_policy="deepcopy")``), the decision
waits out a configurable latency in flight, and its application against
the live cluster resolves whatever changed in the meantime (see
:meth:`_apply_async_decision`).

Event core
----------
The original engine rescanned every executor at every iteration.  This
implementation keeps indexed state instead:

* **Regular executors** — completion events live in a min-heap
  (:class:`~repro.simulator.events.EventQueue`) pushed at placement time.
  Entries are lazily invalidated: a popped/peeked entry whose executor no
  longer runs a task with that completion time is discarded.
* **LLM executors** — a per-request completion time depends on the batch
  composition, but the *absolute* finish time of the earliest-finishing
  request is invariant under progress accrual while the batch is unchanged.
  The engine therefore caches one candidate completion time per LLM
  executor and keeps a *dirty set* of executors whose batch changed; only
  dirty executors are rescanned.
* **Jobs** — active jobs live in an insertion-ordered dict keyed by job id,
  so membership tests and completion removal are O(1).
* **Capacity** — free-slot counts are maintained incrementally by the
  :class:`~repro.simulator.cluster.Cluster`, so building a
  :class:`~repro.schedulers.base.SchedulingContext` does not recompute
  cluster state.

Open-loop workloads
-------------------
``jobs`` may be a materialized sequence (closed loop, sorted internally) or
any iterator/generator yielding jobs in non-decreasing arrival order (open
loop, e.g. :func:`repro.workloads.arrivals.open_loop_jobs`).  Streamed jobs
are admitted lazily and dropped from the engine's indexes once they
complete, so the heavy per-job state (DAG, stages, tasks) only exists for
*concurrently active* jobs.  What still grows with the total job count is
O(1) per job: the seen-id set (duplicate detection) and the per-job JCT
entries in :class:`SimulationMetrics`.
"""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.dag.job import Job
from repro.dag.stage import StageState
from repro.dag.task import Task, TaskState, TaskType
from repro.schedulers.base import (
    PreemptionDirective,
    Scheduler,
    SchedulingContext,
    SchedulingDecision,
)
from repro.schedulers.snapshot import CowSnapshotTracker
from repro.simulator.async_sched import AsyncSchedulerBackend
from repro.simulator.autoscaler import ThresholdAutoscaler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.events import EventQueue, EventType
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.placement import GreedyFirstFitPlacement, PlacementPolicy

__all__ = ["SimulationConfig", "SimulationEngine", "validate_arrival_order"]

_EPS = 1e-9


def validate_arrival_order(
    job: Job, seen_ids: Set[str], last_arrival_time: float, eps: float
) -> float:
    """Validate one pulled arrival against the stream seen so far.

    Shared by the engine's arrival lookahead and the federation's global
    stream (same rules, same error messages): job ids must be unique and
    arrival times non-decreasing.  Adds the id to ``seen_ids`` and returns
    the updated high-water arrival time.
    """
    if job.job_id in seen_ids:
        raise ValueError(f"duplicate job id {job.job_id!r} in arrival stream")
    seen_ids.add(job.job_id)
    if job.arrival_time < last_arrival_time - eps:
        raise ValueError(
            f"arrival stream is not time-ordered: job {job.job_id!r} arrives at "
            f"{job.arrival_time} after {last_arrival_time}"
        )
    return max(last_arrival_time, job.arrival_time)


@dataclass(frozen=True)
class SimulationConfig:
    """Safety limits and bookkeeping knobs for a simulation run.

    ``eps`` is the shared tolerance used for time comparisons and for the
    remaining-work threshold below which an LLM task counts as finished
    (previously a hard-coded ``1e-6`` in the completion scan).

    ``snapshot_policy`` selects how :meth:`SchedulingContext.snapshot`
    isolates async decisions from live mutations: ``"cow"`` (default) hands
    out copy-on-write views whose jobs are copied only when the engine
    mutates them while the snapshot is alive; ``"deepcopy"`` keeps the
    original wholesale deep copy as the golden oracle (observationally
    identical, verified by tests/test_context_snapshot.py, and O(jobs x
    stages x tasks) slower per scheduling pass).
    """

    max_simulated_time: float = 10_000_000.0
    max_iterations: int = 20_000_000
    eps: float = _EPS
    snapshot_policy: str = "cow"

    def __post_init__(self) -> None:
        if self.max_simulated_time <= 0:
            raise ValueError("max_simulated_time must be > 0")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be > 0")
        if self.eps <= 0:
            raise ValueError("eps must be > 0")
        if self.snapshot_policy not in ("cow", "deepcopy"):
            raise ValueError(
                f"snapshot_policy must be 'cow' or 'deepcopy', got {self.snapshot_policy!r}"
            )


class SimulationEngine:
    """Runs one workload with one scheduler on one cluster."""

    def __init__(
        self,
        jobs: Iterable[Job],
        scheduler: Scheduler,
        cluster: Optional[Cluster] = None,
        cluster_config: Optional[ClusterConfig] = None,
        config: Optional[SimulationConfig] = None,
        workload_name: str = "",
        placement: Optional[PlacementPolicy] = None,
        autoscaler: Optional[ThresholdAutoscaler] = None,
        async_backend: Optional[AsyncSchedulerBackend] = None,
    ) -> None:
        if cluster is None:
            cluster = Cluster(cluster_config or ClusterConfig())
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self.placement = placement or GreedyFirstFitPlacement()
        self.autoscaler = autoscaler
        if autoscaler is not None:
            autoscaler.reset()  # instances reused across runs re-arm at t=0
        self.async_backend = async_backend
        if async_backend is not None:
            async_backend.reset()  # same: re-arm in-flight state at t=0
        if isinstance(jobs, Sequence):
            if not jobs:
                raise ValueError("cannot simulate an empty job list")
            ordered = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
            if len({j.job_id for j in ordered}) != len(ordered):
                raise ValueError("duplicate job ids in workload")
            self._arrivals: Iterator[Job] = iter(ordered)
        else:
            self._arrivals = iter(jobs)
        self.metrics = SimulationMetrics(
            scheduler_name=scheduler.name, workload_name=workload_name
        )
        self._time = 0.0
        self._iterations = 0
        self._active_jobs: Dict[str, Job] = {}
        self._seen_job_ids: Set[str] = set()
        self._last_arrival_time = 0.0
        self._next_arrival: Optional[Job] = None
        self._pull_arrival()

        # Federation hooks (set by FederatedSimulationEngine when this
        # engine drives one shard of a fleet): the shard's identity and a
        # callable returning fleet-wide free slots per task type, surfaced
        # to schedulers through the scheduling context.  Standalone runs
        # keep the defaults and build contexts exactly as before.
        self.shard_name: str = ""
        self.shard_count: int = 1
        self.fleet_free_slots: Optional[object] = None

        # Indexed event core (see module docstring).  For LLM executors the
        # cache holds the earliest-finishing *task*: its identity is stable
        # while the batch is unchanged, whereas its absolute finish time is
        # re-derived from current executor state on every query so the clock
        # stays bit-identical with the reference engine's full rescans.
        self._regular_events = EventQueue()
        self._llm_best: List[Optional[Task]] = [None] * len(cluster.llm_executors)
        self._dirty_llm: Set[int] = set(range(len(cluster.llm_executors)))

        # Copy-on-write snapshot support: live contexts built by this engine
        # carry the tracker, so context.snapshot() returns a sharing view and
        # every job-mutation site below calls _mark_job_dirty first.  With
        # snapshot_policy="deepcopy" the tracker is None and snapshot()
        # falls back to the wholesale deep copy (the golden oracle).
        self._cow: Optional[CowSnapshotTracker] = (
            CowSnapshotTracker() if self.config.snapshot_policy == "cow" else None
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationMetrics:
        """Execute the workload to completion and return the metrics."""
        while self.step():
            pass
        return self.finalize()

    def step(self) -> bool:
        """Advance the simulation through one scheduling point.

        Returns ``False`` once no further progress is possible — the
        workload drained, or nothing can ever happen again (which raises
        for a real deadlock).  Callers stepping manually should invoke
        :meth:`finalize` afterwards; :meth:`run` does both.
        """
        if self._next_arrival is None and not self._active_jobs:
            return False
        self._iterations += 1
        if self._iterations > self.config.max_iterations:
            raise RuntimeError("simulation exceeded max_iterations; likely a livelock")
        if self._time > self.config.max_simulated_time:
            raise RuntimeError("simulation exceeded max_simulated_time")

        self._admit_arrivals(self._time)
        if self.async_backend is not None:
            self._apply_due_decisions(self._time)
        self._dispatch()

        next_time = self._next_event_time()
        if next_time is None:
            self._check_for_deadlock()
            return False
        self._time = max(self._time, next_time)
        self.advance_cluster_to(self._time)
        self._process_completions(self._time)
        if (
            self.autoscaler is not None
            and self._time + self.config.eps >= self.autoscaler.next_check_time
        ):
            self._run_autoscaler()
        return True

    def finalize(self) -> SimulationMetrics:
        """Fill the run-level metrics (event count, makespan, utilisation)."""
        self.metrics.num_events = self._iterations
        self.metrics.makespan = self._time
        self.metrics.utilization = self.cluster.utilization(max(self._time, _EPS))
        self.metrics.pool_utilization = self.cluster.pool_utilization(max(self._time, _EPS))
        # Token-grain serving accounting: executors are never removed from
        # the cluster lists (they retire in place), so this drains every ITL
        # sample exactly once.  No-ops (empty lists) on legacy runs.
        self.metrics.num_llm_executors = len(self.cluster.llm_executors)
        for executor in self.cluster.llm_executors:
            self.metrics.record_itl_samples(executor.drain_itl_samples())
        return self.metrics

    @property
    def current_time(self) -> float:
        return self._time

    @property
    def num_active_jobs(self) -> int:
        """Jobs admitted and not yet finished (open-loop memory footprint)."""
        return len(self._active_jobs)

    # ------------------------------------------------------------------ #
    # Copy-on-write snapshot maintenance
    # ------------------------------------------------------------------ #
    def _mark_job_dirty(self, job: Job) -> None:
        """Copy ``job`` into live COW snapshots before mutating it.

        Every engine code path that mutates a job's observable state
        (task placement, progress accrual, completion, preemption,
        migration) must call this *first*.  A no-op when the run uses the
        deep-copy oracle or when no snapshot is currently alive — i.e. in
        steady state this costs one dict-emptiness check.
        """
        if self._cow is not None:
            self._cow.mark_dirty(job)

    def advance_cluster_to(self, time: float) -> None:
        """Accrue executor progress up to ``time`` (COW-safely).

        Progress accrual mutates the tasks currently running on LLM
        executors (regular tasks only mutate at place/finish/preempt), so
        their owning jobs are copied into live snapshots first.  All
        callers that used to call ``cluster.advance_to`` directly — the
        step loop here and the federation's phase drivers — go through
        this wrapper so dirty-marking can never be bypassed.
        """
        cow = self._cow
        if cow is not None and cow.active:
            for executor in self.cluster.llm_executors:
                for task in executor.running:
                    job = self._active_jobs.get(task.job_id)
                    if job is not None:
                        cow.mark_dirty(job)
        self.cluster.advance_to(time)

    # ------------------------------------------------------------------ #
    # Arrivals
    # ------------------------------------------------------------------ #
    def _pull_arrival(self) -> None:
        self._next_arrival = next(self._arrivals, None)
        if self._next_arrival is None:
            return
        self._last_arrival_time = validate_arrival_order(
            self._next_arrival, self._seen_job_ids, self._last_arrival_time, self.config.eps
        )

    def _admit_arrivals(self, now: float) -> None:
        eps = self.config.eps
        while self._next_arrival is not None and self._next_arrival.arrival_time <= now + eps:
            job = self._next_arrival
            self._pull_arrival()
            if job.is_finished:
                # Degenerate jobs (everything skipped) complete on arrival.
                self._record_job_completion(job)
                continue
            self._active_jobs[job.job_id] = job
            self.scheduler.on_job_arrival(job, now)

    # ------------------------------------------------------------------ #
    # Scheduling and placement
    # ------------------------------------------------------------------ #
    def _build_context(self) -> SchedulingContext:
        # While every executor is active (all default runs) the flat-list
        # comprehension is the bit-identical fast path; once any pool has
        # draining/retired executors — whatever resized it, the engine's
        # autoscaler or external Cluster.scale_pool calls — they must not
        # skew the batch-size signal nor be offered as preemption victims.
        inactive = self.cluster.inactive_executor_ids()
        if inactive:
            batch_sizes = self.cluster.active_llm_batch_sizes()
        else:
            batch_sizes = [e.batch_size for e in self.cluster.llm_executors]
        context = SchedulingContext(
            time=self._time,
            jobs=list(self._active_jobs.values()),
            free_regular_slots=self.cluster.free_regular_slots(),
            free_llm_slots=self.cluster.free_llm_slots(),
            llm_batch_sizes=batch_sizes,
        )
        if inactive:
            context.inactive_executor_ids = inactive
        if self.scheduler.preemptive:
            # The cluster's speed and role maps are static and shared, not
            # copied, so this costs two references per context.
            context.executor_speeds = self.cluster.executor_speeds()
            context.executor_roles = self.cluster.executor_roles()
        if self.shard_count > 1 or self.shard_name:
            context.shard_name = self.shard_name
            context.shard_count = self.shard_count
            if self.fleet_free_slots is not None:
                context.fleet_free_slots = self.fleet_free_slots()
        context._cow_tracker = self._cow
        return context

    def _dispatch(self) -> None:
        if not self._active_jobs:
            return
        # A preemptive scheduler must run even on a full cluster — its
        # scheduling pass can *create* capacity; non-preemptive schedulers
        # keep the original fast path.
        if (
            not self.scheduler.preemptive
            and self.cluster.free_regular_slots() == 0
            and self.cluster.free_llm_slots() == 0
        ):
            return
        backend = self.async_backend
        if backend is not None and not backend.can_request():
            return  # a decision is already in flight (pipelining depth hit)
        context = self._build_context()
        if not context.schedulable_tasks():
            return

        if backend is None:
            decision = self._timed_schedule(context)
        else:
            decision = backend.request(
                self._timed_schedule, context, self._time, self.config.eps
            )
            if decision is None:
                return  # in flight; applied once its DECISION_READY event fires
        self._apply_decision(decision)

    def _timed_schedule(self, context: SchedulingContext) -> SchedulingDecision:
        """One scheduler invocation, wall-clock timed for Table I."""
        started = wallclock.perf_counter()  # repro: REP003-exempt -- meters real scheduler overhead (Table I), never feeds simulated time
        decision = self.scheduler.schedule(context)
        overhead = wallclock.perf_counter() - started  # repro: REP003-exempt -- meters real scheduler overhead (Table I), never feeds simulated time
        self.metrics.record_scheduler_invocation(overhead)
        return decision

    def _apply_decision(self, decision: SchedulingDecision) -> None:
        """Apply a decision whose tasks are *live* objects (synchronous path)."""
        if decision.preemptions:
            for directive in decision.preemptions:
                self._apply_preemption(directive)

        for task in decision.regular_tasks:
            if self.cluster.free_regular_slots() == 0:
                break
            self._place_task(task, TaskType.REGULAR)
        for task in decision.llm_tasks:
            if self.cluster.free_llm_slots() == 0:
                break
            self._place_task(task, TaskType.LLM)

    # ------------------------------------------------------------------ #
    # Asynchronous decisions (stale snapshots, applied at t + latency)
    # ------------------------------------------------------------------ #
    def _apply_due_decisions(self, now: float) -> None:
        """Apply every in-flight decision whose latency window ended."""
        for inflight in self.async_backend.pop_due(now, self.config.eps):
            self.metrics.record_async_decision(inflight.apply_at - inflight.requested_at)
            self.metrics.record_decision_applied(now - inflight.requested_at)
            self._apply_async_decision(inflight)

    def _apply_async_decision(self, inflight) -> None:
        """Apply a decision computed from a snapshot against the live cluster.

        The decision's tasks are snapshot *copies*; each is mapped back onto
        its live counterpart by (job, stage, index) key.  Anything the live
        cluster no longer agrees with is dropped and metered: preemptions of
        tasks that stopped running are no-ops, placements of tasks that are
        no longer pending are stale, and placements that lost their slot to
        a faster actor are conflicts (the task stays pending and is simply
        reconsidered at the next decision — requeue for free).  Metering is
        scoped to the entries the snapshot promised capacity for
        (``snapshot_free_*``, grown by every preemption this decision lands):
        preference lists may exceed capacity by design, and the synchronous
        engine drops the overflow silently too.
        """
        decision = inflight.decision
        budget = {
            TaskType.REGULAR: inflight.snapshot_free_regular,
            TaskType.LLM: inflight.snapshot_free_llm,
        }
        # Duplicate preference entries *within one decision* are by-design
        # (the sync path skips them silently); only repeats across decisions
        # signal genuine snapshot staleness, so dedupe before metering.
        seen: Set[str] = set()
        for directive in decision.preemptions:
            live = self._resolve_live_task(directive.task)
            if live is None or live.state is not TaskState.RUNNING:
                self.metrics.record_stale_preemption()
                continue
            self._apply_preemption(
                PreemptionDirective(task=live, checkpoint=directive.checkpoint)
            )
            if live.state is TaskState.PENDING:  # the engine accepted it
                budget[live.task_type] += 1
        for expected_type, tasks in (
            (TaskType.REGULAR, decision.regular_tasks),
            (TaskType.LLM, decision.llm_tasks),
        ):
            for task in tasks:
                key = task.key()
                if key in seen:
                    continue
                seen.add(key)
                in_budget = budget[expected_type] > 0
                budget[expected_type] -= 1
                live = self._resolve_live_task(task)
                if live is None or live.state is not TaskState.PENDING:
                    if in_budget:
                        self.metrics.record_stale_placement()
                    continue
                job = self._active_jobs[live.job_id]
                stage = job.stage(live.stage_id)
                if (
                    stage.state not in (StageState.READY, StageState.RUNNING)
                    or not stage.visible
                ):
                    if in_budget:
                        self.metrics.record_stale_placement()
                    continue
                free = (
                    self.cluster.free_regular_slots()
                    if expected_type is TaskType.REGULAR
                    else self.cluster.free_llm_slots()
                )
                if (free == 0 or not self._place_task(live, expected_type)) and in_budget:
                    self.metrics.record_placement_conflict()

    def _resolve_live_task(self, task: Task) -> Optional[Task]:
        """Live counterpart of a snapshot task (None if its job is gone).

        Resolution is by (job_id, stage_id, index) key and reads nothing
        but those immutable identity fields, so it is correct regardless of
        what the snapshot handed out: a deep copy, a COW clone, or — when
        the job was never mutated while the snapshot lived — the live task
        object itself.
        """
        job = self._active_jobs.get(task.job_id)
        if job is None:
            return None
        try:
            stage = job.stage(task.stage_id)
        except KeyError:
            return None
        for live in stage.tasks:
            if live.index == task.index:
                return live
        return None

    def _apply_preemption(self, directive: PreemptionDirective) -> None:
        """Checkpoint a running task back to PENDING (skipping stale directives)."""
        task = directive.task
        if task.state is not TaskState.RUNNING or task.executor_id is None:
            return  # stale: the task finished (or was never placed)
        job = self._active_jobs.get(task.job_id)
        if job is None:
            return
        executor = self.cluster.executor(task.executor_id)
        if not self.cluster.pool_of_executor(task.executor_id).is_active(task.executor_id):
            # Draining executor: preempting would requeue the victim without
            # freeing an assignable slot (the drain swallows it) — capacity
            # strictly shrinks. Let the task run out instead.
            return
        eps = self.config.eps
        llm_index: Optional[int] = None
        if task.task_type is TaskType.REGULAR:
            completion = executor.completion_time()
            if completion is not None and completion <= self._time + eps:
                return  # completing at this very instant; let it finish
        else:
            llm_index = self.cluster.llm_index(task.executor_id)
            # advance_to accrues progress on *every* task in the batch;
            # their jobs must land in live snapshots pre-mutation too.
            cow = self._cow
            if cow is not None and cow.active:
                for running in executor.running:
                    batch_job = self._active_jobs.get(running.job_id)
                    if batch_job is not None:
                        cow.mark_dirty(batch_job)
            executor.advance_to(self._time)
            if task.remaining_work <= eps:
                return  # effectively done; the completion sweep will take it
        self._mark_job_dirty(job)
        wasted = self.cluster.preempt_task(task, self._time, checkpoint=directive.checkpoint)
        if llm_index is not None:
            self._dirty_llm.add(llm_index)
        self.metrics.record_preemption(wasted)
        job.invalidate_schedulable_cache()

    def _place_task(self, task: Task, expected_type: TaskType) -> bool:
        """Place one task via the placement policy; True iff it started."""
        if task.task_type is not expected_type:
            raise RuntimeError(
                f"scheduler put {task.key()} in the wrong preference list"
            )
        if task.state.name != "PENDING":
            return False  # Already placed by an earlier (duplicate) preference entry.
        job = self._active_jobs.get(task.job_id)
        if job is None:
            return False
        stage = job.stage(task.stage_id)
        if stage.state not in (StageState.READY, StageState.RUNNING) or not stage.visible:
            return False  # Not actually schedulable; ignore the preference entry.
        self._mark_job_dirty(job)
        pool = self.placement.select_pool(self.cluster, task)
        placed = pool.assign(task, self._time) if pool is not None else None
        if placed is None:
            return False
        if expected_type is TaskType.REGULAR:
            index = self.cluster.regular_index(placed)
            finish = self.cluster.regular_executors[index].completion_time()
            self._regular_events.push(finish, EventType.TASK_FINISH, index)
        else:
            self._dirty_llm.add(self.cluster.llm_index(placed))
        stage.mark_running()
        job.invalidate_schedulable_cache()
        return True

    # ------------------------------------------------------------------ #
    # Time advance and completions
    # ------------------------------------------------------------------ #
    def _peek_regular_completion(self) -> Optional[float]:
        """Earliest valid regular completion, discarding stale heap entries."""
        queue = self._regular_events
        eps = self.config.eps
        while queue:
            event = queue.peek()
            executor = self.cluster.regular_executors[event.payload]
            completion = executor.completion_time()
            if completion is None or abs(completion - event.time) > eps:
                queue.pop()  # lazy invalidation
                continue
            return event.time
        return None

    def _llm_completion_time(self, index: int) -> Optional[float]:
        """Cached candidate completion time of one LLM executor."""
        task = self._llm_best[index]
        if task is None:
            return None
        return self.cluster.llm_executors[index].completion_time_of(task)

    def _next_llm_completion(self) -> Optional[float]:
        """Earliest LLM completion; only dirty executors are rescanned."""
        if len(self._llm_best) < len(self.cluster.llm_executors):
            # The cluster grew outside _run_autoscaler (external
            # Cluster.scale_pool calls, e.g. from a scheduler hook).
            self._sync_llm_views()
        if self._dirty_llm:
            # Sorted so the rescan order is reproducible: the per-index cache
            # writes are independent, but iterating the raw set would leave
            # the only hash-ordered loop in the event core.
            for index in sorted(self._dirty_llm):
                upcoming = self.cluster.llm_executors[index].next_completion()
                self._llm_best[index] = None if upcoming is None else upcoming[1]
            self._dirty_llm.clear()
        best: Optional[float] = None
        for index in range(len(self._llm_best)):
            completion = self._llm_completion_time(index)
            if completion is not None and (best is None or completion < best):
                best = completion
        return best

    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        regular = self._peek_regular_completion()
        if regular is not None:
            candidates.append(regular)
        llm = self._next_llm_completion()
        if llm is not None:
            candidates.append(llm)
        if self._next_arrival is not None:
            candidates.append(self._next_arrival.arrival_time)
        # Decisions in flight are pending progress: their DECISION_READY
        # times drive the clock even when nothing else is happening.
        if self.async_backend is not None:
            apply_time = self.async_backend.next_apply_time()
            if apply_time is not None:
                candidates.append(apply_time)
        # Autoscale checks are an event source too — but only while other
        # activity (or placeable backlog) exists, so a truly deadlocked run
        # still falls through to the deadlock check instead of idling on
        # scale events forever.
        if self.autoscaler is not None and (candidates or self._has_placeable_backlog()):
            candidates.append(self.autoscaler.next_check_time)
        if not candidates:
            return None
        return min(candidates)

    def _has_placeable_backlog(self) -> bool:
        return any(job.schedulable_stages() for job in self._active_jobs.values())

    # ------------------------------------------------------------------ #
    # Autoscaling
    # ------------------------------------------------------------------ #
    def _run_autoscaler(self) -> None:
        """One autoscale check: measure backlog, resize pools, sync indexes."""
        backlog = {TaskType.REGULAR: 0, TaskType.LLM: 0}
        for job in self._active_jobs.values():
            for stage in job.schedulable_stages():
                key = TaskType.LLM if stage.is_llm else TaskType.REGULAR
                backlog[key] += len(stage.pending_tasks())
        events = self.autoscaler.check(self.cluster, backlog, self._time, eps=self.config.eps)
        for event in events:
            self.metrics.record_scale_event(event.to_dict())
        if events:
            self._sync_llm_views()

    def _sync_llm_views(self) -> None:
        """Grow the per-LLM-executor caches after a scale-up added executors."""
        count = len(self.cluster.llm_executors)
        while len(self._llm_best) < count:
            self._dirty_llm.add(len(self._llm_best))
            self._llm_best.append(None)

    def _process_completions(self, now: float) -> None:
        eps = self.config.eps
        finished_tasks: List[Task] = []

        # Regular executors: pop every due completion event.  Same-time
        # completions finish in pool order, matching the original full scan.
        due: List[int] = []
        queue = self._regular_events
        while queue and queue.peek().time <= now + eps:
            event = queue.pop()
            executor = self.cluster.regular_executors[event.payload]
            completion = executor.completion_time()
            if completion is None or completion > now + eps:
                continue  # stale entry
            due.append(event.payload)
        for index in sorted(set(due)):
            executor = self.cluster.regular_executors[index]
            current = executor.current_task
            if current is not None:
                job = self._active_jobs.get(current.job_id)
                if job is not None:
                    self._mark_job_dirty(job)
            finished_tasks.append(self.cluster.finish_regular_task(executor, now))

        # LLM executors: the cached candidate is the batch's least-remaining
        # task (progress was accrued by advance_to), so the executor can hold
        # finished requests only if that task's remaining work is within eps.
        # Gating on remaining work — not on the candidate completion *time* —
        # matches the reference engine's sweep rule exactly: with batch > 1
        # and a positive latency slope the progress rate is < 1, and a task
        # with remaining work in (eps * rate, eps] must still finish *now*.
        for index, executor in enumerate(self.cluster.llm_executors):
            candidate = self._llm_best[index]
            if candidate is None or candidate.remaining_work > eps:
                continue
            for task in list(executor.running):
                if task.remaining_work <= eps:
                    job = self._active_jobs.get(task.job_id)
                    if job is not None:
                        self._mark_job_dirty(job)
                    self.cluster.finish_llm_task(executor, task, now, eps=eps)
                    finished_tasks.append(task)
                    if task.has_token_model:
                        tier = job.priority if job is not None else "default"
                        self.metrics.record_llm_task_finish(task, tier)
            self._dirty_llm.add(index)

        for task in finished_tasks:
            self.metrics.num_tasks_executed += 1
            job = self._active_jobs.get(task.job_id)
            if job is None:  # pragma: no cover - defensive; jobs outlive their tasks
                continue
            stage = job.stage(task.stage_id)
            if stage.all_tasks_finished() and stage.state is StageState.RUNNING:
                # Already copied into live snapshots when its finishing task
                # was processed above; re-marking is an O(1) no-op and keeps
                # the mutation locally preceded by its dirty mark.
                self._mark_job_dirty(job)
                job.notify_stage_finished(stage.stage_id, now)
                self.scheduler.on_stage_complete(job, stage, now)
                if job.is_finished:
                    self._record_job_completion(job)

    def _record_job_completion(self, job: Job) -> None:
        if job.jct is None:
            raise RuntimeError(f"job {job.job_id} has no completion time")
        self.metrics.record_job_completion(job.job_id, job.application, job.jct)
        self.scheduler.on_job_complete(job, self._time)
        self._active_jobs.pop(job.job_id, None)

    # ------------------------------------------------------------------ #
    def _check_for_deadlock(self) -> None:
        """Raise if jobs remain but nothing can ever make progress again."""
        stuck = [j for j in self._active_jobs.values() if not j.is_finished]
        if not stuck:
            return
        pending = sum(len(j.schedulable_tasks()) for j in stuck)
        raise RuntimeError(
            f"simulation stalled at t={self._time:.2f}s with {len(stuck)} unfinished "
            f"jobs and {pending} schedulable tasks; the scheduler is not work-conserving"
        )
