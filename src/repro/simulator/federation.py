"""Sharded multi-cluster federation: route jobs, step shards, migrate work.

The paper evaluates one fixed-size cluster; a production fleet is many
clusters (*shards*) behind a routing layer.  This module adds that layer
on top of the existing engine without forking it:

* :class:`FederatedCluster` owns N named :class:`~repro.simulator.cluster.
  Cluster` shards plus a pluggable :class:`JobRouter` (hash, least-loaded,
  type-affinity — mirroring the ``PlacementPolicy`` factory pattern).
* :class:`FederatedSimulationEngine` steps one full
  :class:`~repro.simulator.engine.SimulationEngine` per shard through a
  **shared event clock**: every fleet iteration admits/dispatches only the
  shards whose state changed, advances the global clock to the earliest
  event across shards + the global arrival stream, and processes the due
  shards.  With a single shard the driver degenerates to exactly the
  single-engine loop, so a 1-shard federation reproduces the golden traces
  **bit for bit**.
* Cross-shard **migration** reuses the PR 2 checkpoint machinery: at a
  fixed check interval, when the hottest shard's load exceeds the coldest
  shard's by more than a threshold, whole jobs are moved — every running
  task is checkpoint-preempted on the hot shard (progress conserved), the
  job is re-admitted on the cold shard, and the migration cost is metered
  exactly once per moved job in the fleet metrics.

Per-shard arrivals are fed through a refillable queue: the federation
holds the global arrival stream, consults the router when the clock
reaches each job's arrival time, and pushes the job into the owning
shard's feed; the shard engine admits it through its ordinary arrival
path, so duplicate detection, degenerate-job completion and scheduler
arrival hooks all behave exactly as in a standalone run.
"""

from __future__ import annotations

import abc
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.dag.job import Job
from repro.dag.task import TaskState, TaskType
from repro.schedulers.base import PreemptionDirective, Scheduler
from repro.simulator.async_sched import AsyncSchedulerBackend
from repro.simulator.autoscaler import ThresholdAutoscaler
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SimulationConfig, SimulationEngine, validate_arrival_order
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.placement import PlacementPolicy

__all__ = [
    "JobRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "StaleLeastLoadedRouter",
    "TypeAffinityRouter",
    "available_job_routers",
    "create_job_router",
    "MigrationConfig",
    "MigrationEvent",
    "FederatedCluster",
    "FederationMetrics",
    "FederatedSimulationEngine",
]

_EPS = 1e-9


# --------------------------------------------------------------------------- #
# Routers
# --------------------------------------------------------------------------- #
class JobRouter(abc.ABC):
    """Maps an arriving job onto one shard of the fleet.

    Routing happens when the fleet clock reaches the job's arrival time,
    so load-aware routers see the shard states of that instant.  Routers
    must be deterministic: the same shard states and job always pick the
    same shard (ties broken by shard index).  The built-in routers only
    consider shards that can *ever* serve the job
    (:meth:`FederatedShard.can_serve` — a regular-only shard must not
    receive a job with an LLM stage); on a homogeneous fleet the
    capability filter keeps every shard and changes nothing.
    """

    #: Human-readable name used in experiment reports and factories.
    name: str = "base"

    @abc.abstractmethod
    def select_shard(self, shards: Sequence["FederatedShard"], job: Job) -> int:
        """Index of the shard ``job`` should be admitted to."""

    def observe(self, shards: Sequence["FederatedShard"], now: float) -> None:
        """Periodic fleet-state observation hook (default: no-op).

        The federated engine calls this at every routing opportunity;
        routers that keep *cached* views of shard state (e.g.
        :class:`StaleLeastLoadedRouter`) refresh them here at their own
        cadence, so ``select_shard`` can read a deliberately stale view.
        """

    def reset(self) -> None:
        """Drop any cached view so the router can drive a fresh run."""

    @staticmethod
    def _capable(shards: Sequence["FederatedShard"], job: Job) -> List[int]:
        """Shard indices able to serve the job (all indices if none are:
        an impossible job then stalls loudly instead of silently skewing
        the capable shards' load)."""
        indices = [i for i, shard in enumerate(shards) if shard.can_serve(job)]
        return indices or list(range(len(shards)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class HashRouter(JobRouter):
    """Stable hash of the job id — stateless, load-oblivious, sticky.

    Uses CRC-32 (not Python's randomized ``hash``) so the same job id maps
    to the same shard across runs and processes.  With one shard every job
    maps to shard 0, which is what makes the 1-shard federation reduce to
    the single-cluster engine.
    """

    name = "hash"

    def select_shard(self, shards: Sequence["FederatedShard"], job: Job) -> int:
        capable = self._capable(shards, job)
        return capable[zlib.crc32(job.job_id.encode("utf-8")) % len(capable)]


class LeastLoadedRouter(JobRouter):
    """Capable shard with the lowest jobs-per-slot load (ties by index).

    Load counts jobs already admitted *plus* jobs routed but not yet
    admitted, normalized by the shard's total slot capacity, so unequal
    shard sizes are compared fairly.
    """

    name = "least_loaded"

    def select_shard(self, shards: Sequence["FederatedShard"], job: Job) -> int:
        return min(self._capable(shards, job), key=lambda i: (shards[i].load(), i))


class StaleLeastLoadedRouter(JobRouter):
    """Least-loaded routing against a *periodically refreshed* load view.

    A real routing tier does not read shard state synchronously — it
    consumes load reports published every ``view_refresh_interval``
    seconds.  This router models that: :meth:`observe` (called by the
    federated engine at every routing opportunity) re-reads the true shard
    loads only when the last refresh is at least the interval old, and
    :meth:`select_shard` routes against the cached snapshot.  With
    ``view_refresh_interval=0`` every observation refreshes and the router
    degenerates to :class:`LeastLoadedRouter`; growing the interval lets
    experiments quantify how much load-aware routing's advantage survives
    staleness (arrival bursts within one window all pile onto the shard
    that *looked* coldest when the window opened).
    """

    name = "stale_least_loaded"

    def __init__(self, view_refresh_interval: float = 30.0) -> None:
        if view_refresh_interval < 0:
            raise ValueError("view_refresh_interval must be >= 0")
        self.view_refresh_interval = float(view_refresh_interval)
        self._loads: Optional[List[float]] = None
        self._last_refresh: Optional[float] = None

    @property
    def last_refresh_time(self) -> Optional[float]:
        """When the cached view was last refreshed (None before the first)."""
        return self._last_refresh

    def reset(self) -> None:
        self._loads = None
        self._last_refresh = None

    def observe(self, shards: Sequence["FederatedShard"], now: float) -> None:
        if (
            self._last_refresh is not None
            and now - self._last_refresh < self.view_refresh_interval - _EPS
        ):
            return
        self._loads = [shard.load() for shard in shards]
        self._last_refresh = now

    def select_shard(self, shards: Sequence["FederatedShard"], job: Job) -> int:
        capable = self._capable(shards, job)
        loads = self._loads
        if loads is None or len(loads) != len(shards):
            # No published view yet (router used outside the engine's
            # observe loop): fall back to the live load, refreshing nothing.
            return min(capable, key=lambda i: (shards[i].load(), i))
        return min(capable, key=lambda i: (loads[i], i))


class TypeAffinityRouter(JobRouter):
    """Route jobs toward shards with free capacity of their dominant type.

    A job whose LLM stages carry more than half its total work prefers the
    capable shard with the most free LLM slots (and vice versa for
    regular-heavy jobs); among shards tied on free capacity the
    least-loaded wins.  When no shard has a free slot of the preferred
    type the router falls back to plain least-loaded, so jobs are never
    stranded.
    """

    name = "type_affinity"

    def __init__(self, fallback: Optional[JobRouter] = None) -> None:
        self._fallback = fallback or LeastLoadedRouter()

    def select_shard(self, shards: Sequence["FederatedShard"], job: Job) -> int:
        llm_work = sum(s.duration for s in job.stages.values() if s.is_llm)  # repro: REP005-exempt -- insertion-ordered stage dict; sorting would change float-summation order and the golden traces
        total_work = sum(s.duration for s in job.stages.values())  # repro: REP005-exempt -- insertion-ordered stage dict; sorting would change float-summation order and the golden traces
        dominant = TaskType.LLM if llm_work > 0.5 * total_work else TaskType.REGULAR
        capable = self._capable(shards, job)
        best = max(capable, key=lambda i: (shards[i].free_slots(dominant), -shards[i].load(), -i))
        if shards[best].free_slots(dominant) > 0:
            return best
        return self._fallback.select_shard(shards, job)


_ROUTERS: Dict[str, Callable[..., JobRouter]] = {
    "hash": HashRouter,
    "least_loaded": LeastLoadedRouter,
    "stale_least_loaded": StaleLeastLoadedRouter,
    "type_affinity": TypeAffinityRouter,
}


def available_job_routers() -> list:
    """Names accepted by :func:`create_job_router`."""
    return sorted(_ROUTERS)


def create_job_router(name: str, **kwargs) -> JobRouter:
    """Instantiate a job router by name.

    ``kwargs`` pass through to the router's constructor (e.g.
    ``create_job_router("stale_least_loaded", view_refresh_interval=60.0)``).
    """
    try:
        factory = _ROUTERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown job router {name!r}; available: {available_job_routers()}"
        ) from None
    return factory(**kwargs)


# --------------------------------------------------------------------------- #
# Migration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MigrationConfig:
    """Cross-shard rebalancing knobs for :class:`FederatedSimulationEngine`.

    Every ``interval`` seconds the fleet compares the hottest and coldest
    shard's load (jobs per slot); when the gap exceeds
    ``imbalance_threshold`` up to ``max_migrations_per_check`` jobs move
    from hot to cold.  ``cost`` is **pure accounting**: the bookkeeping
    price of one migration (e.g. checkpoint transfer seconds), metered
    once per migrated job in the fleet metrics so operators can weigh
    rebalancing against its overhead — it does *not* delay the migrated
    job inside the simulation (cost-aware migration policies are a named
    next step in the ROADMAP).
    """

    interval: float = 60.0
    imbalance_threshold: float = 0.25
    max_migrations_per_check: int = 4
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.imbalance_threshold <= 0:
            raise ValueError("imbalance_threshold must be > 0")
        if self.max_migrations_per_check < 1:
            raise ValueError("max_migrations_per_check must be >= 1")
        if self.cost < 0:
            raise ValueError("cost must be >= 0")


@dataclass(frozen=True)
class MigrationEvent:
    """One applied job migration (recorded in the fleet metrics)."""

    time: float
    job_id: str
    source: str
    target: str
    checkpointed_tasks: int
    remaining_work: float
    cost: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "job_id": self.job_id,
            "source": self.source,
            "target": self.target,
            "checkpointed_tasks": self.checkpointed_tasks,
            "remaining_work": self.remaining_work,
            "cost": self.cost,
        }


# --------------------------------------------------------------------------- #
# Fleet composition
# --------------------------------------------------------------------------- #
class _ShardFeed:
    """Refillable arrival iterator: the federation pushes, the engine pulls.

    Unlike a generator, raising ``StopIteration`` is not terminal — the
    federation keeps pushing routed jobs between fleet iterations and the
    owning engine re-pulls its lookahead.
    """

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, job: Job) -> None:
        self._queue.append(job)

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Job]:
        return self

    def __next__(self) -> Job:
        if not self._queue:
            raise StopIteration
        return self._queue.popleft()


class FederatedShard:
    """One shard: a cluster, its engine, and the routing read surface."""

    def __init__(self, index: int, name: str, cluster: Cluster) -> None:
        self.index = index
        self.name = name
        self.cluster = cluster
        self.feed = _ShardFeed()
        self.engine: Optional[SimulationEngine] = None
        #: Cached earliest shard-local event time (completions/autoscale);
        #: recomputed whenever the shard's state changes.
        self.next_event: Optional[float] = None
        #: Scheduling points this shard processed (its share of fleet events).
        self.num_events: int = 0

    # Routing read surface ------------------------------------------------ #
    def total_slots(self) -> int:
        return self.cluster.total_capacity()

    def free_slots(self, task_type: TaskType) -> int:
        return self.cluster.free_slots(task_type)

    def can_serve(self, job: Job) -> bool:
        """Whether this shard has pools for every task type ``job`` needs.

        Shards may be heterogeneous down to the task-type level (e.g. a
        regular-only shard); routers and the migrator must never place a
        job where one of its stages can never run.
        """
        for stage in job.stages.values():
            task_type = TaskType.LLM if stage.is_llm else TaskType.REGULAR
            if not self.cluster.pools_for(task_type):
                return False
        return True

    def num_jobs(self) -> int:
        """Jobs admitted and unfinished, plus routed-but-not-yet-admitted.

        The engine's arrival lookahead holds one routed job *outside* the
        feed, so it must be counted too — otherwise every same-instant
        burst undercounts the shard by one and biases load-aware routing.
        """
        routed = len(self.feed)
        if self.engine is None:
            return routed
        if self.engine._next_arrival is not None:
            routed += 1
        return len(self.engine._active_jobs) + routed

    def load(self) -> float:
        """Jobs per slot — the routing and migration imbalance signal."""
        return self.num_jobs() / max(1, self.total_slots())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FederatedShard({self.name!r}, jobs={self.num_jobs()}, slots={self.total_slots()})"


class FederatedCluster:
    """N named cluster shards behind a pluggable job router."""

    def __init__(
        self,
        shards: Sequence[Tuple[str, Cluster]],
        router: Optional[JobRouter] = None,
    ) -> None:
        if not shards:
            raise ValueError("a federation needs at least one shard")
        names = [name for name, _ in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {names}")
        self.shards: List[FederatedShard] = [
            FederatedShard(index, name, cluster) for index, (name, cluster) in enumerate(shards)
        ]
        self.router = router or HashRouter()

    @classmethod
    def homogeneous(
        cls,
        num_shards: int,
        cluster_factory: Callable[[], Cluster],
        router: Optional[JobRouter] = None,
        name_prefix: str = "shard",
    ) -> "FederatedCluster":
        """Build ``num_shards`` identical shards from a cluster factory."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        return cls(
            [(f"{name_prefix}-{i}", cluster_factory()) for i in range(num_shards)],
            router=router,
        )

    def __len__(self) -> int:
        return len(self.shards)

    def shard(self, name: str) -> FederatedShard:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError(f"unknown shard {name!r}")

    def free_slots_by_type(self) -> Dict[TaskType, int]:
        """Fleet-wide free capacity per task type (the shard view exposed
        to schedulers through the scheduling context)."""
        return {
            task_type: sum(s.free_slots(task_type) for s in self.shards)
            for task_type in (TaskType.REGULAR, TaskType.LLM)
        }


# --------------------------------------------------------------------------- #
# Fleet metrics
# --------------------------------------------------------------------------- #
@dataclass
class FederationMetrics:
    """Per-shard metrics plus fleet-level aggregation."""

    workload_name: str = ""
    router_name: str = ""
    shards: Dict[str, SimulationMetrics] = field(default_factory=dict)
    migration_events: List[Dict[str, object]] = field(default_factory=list)
    num_migrations: int = 0
    migrated_work: float = 0.0
    migration_cost: float = 0.0
    #: Fleet driver iterations (global scheduling points).
    num_fleet_iterations: int = 0
    makespan: float = 0.0

    def record_migration(self, event: MigrationEvent) -> None:
        self.migration_events.append(event.to_dict())
        self.num_migrations += 1
        self.migrated_work += event.remaining_work
        self.migration_cost += event.cost

    # Fleet-level views ---------------------------------------------------- #
    @property
    def job_completion_times(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for metrics in self.shards.values():
            merged.update(metrics.job_completion_times)
        return merged

    @property
    def average_jct(self) -> float:
        jcts = self.job_completion_times
        if not jcts:
            return 0.0
        return float(sum(jcts.values()) / len(jcts))

    @property
    def num_events(self) -> int:
        """Aggregate shard scheduling points (throughput numerator)."""
        return sum(m.num_events for m in self.shards.values())

    @property
    def num_tasks_executed(self) -> int:
        return sum(m.num_tasks_executed for m in self.shards.values())

    @property
    def num_preemptions(self) -> int:
        return sum(m.num_preemptions for m in self.shards.values())

    @property
    def utilization(self) -> Dict[str, float]:
        """Fleet busy fractions, weighted by each shard's executor counts
        (a property, mirroring ``SimulationMetrics.utilization``)."""
        busy: Dict[str, float] = {"regular": 0.0, "llm": 0.0}
        weight: Dict[str, float] = {"regular": 0.0, "llm": 0.0}
        for metrics in self.shards.values():
            for key in busy:
                share = metrics.utilization.get(key)
                if share is None:
                    continue
                executors = metrics.executor_counts.get(key, 0)
                busy[key] += share * executors
                weight[key] += executors
        return {key: (busy[key] / weight[key] if weight[key] else 0.0) for key in busy}

    def to_dict(self) -> Dict[str, object]:
        jcts = self.job_completion_times
        return {
            "workload": self.workload_name,
            "router": self.router_name,
            "num_shards": len(self.shards),
            "num_jobs": len(jcts),
            "average_jct": self.average_jct,
            "makespan": self.makespan,
            "num_events": self.num_events,
            "num_fleet_iterations": self.num_fleet_iterations,
            "num_tasks_executed": self.num_tasks_executed,
            "num_preemptions": self.num_preemptions,
            "num_migrations": self.num_migrations,
            "migrated_work": self.migrated_work,
            "migration_cost": self.migration_cost,
            "utilization": self.utilization,
        }


# --------------------------------------------------------------------------- #
# The federated driver
# --------------------------------------------------------------------------- #
SchedulerSource = Union[Callable[[], Scheduler], Sequence[Scheduler]]


class FederatedSimulationEngine:
    """Steps N shard engines through one shared event clock.

    ``schedulers`` is either a zero-argument factory (one independent
    scheduler instance is built per shard — schedulers carry state, so
    shards must not share one) or an explicit sequence of instances, one
    per shard.  ``placement_factory`` / ``autoscaler_factory`` likewise
    build per-shard policies when given.

    The driver mirrors :meth:`SimulationEngine.run` exactly for the shards
    it touches — admit, dispatch, advance, complete, autoscale — and only
    adds two fleet-level event sources: the global arrival stream (routed
    through the federation's :class:`JobRouter` at admission time) and the
    optional migration check.  A 1-shard fleet therefore produces the same
    trace as a standalone engine, bit for bit.
    """

    def __init__(
        self,
        jobs: Iterable[Job],
        schedulers: SchedulerSource,
        federation: FederatedCluster,
        config: Optional[SimulationConfig] = None,
        workload_name: str = "",
        placement_factory: Optional[Callable[[], PlacementPolicy]] = None,
        autoscaler_factory: Optional[Callable[[], ThresholdAutoscaler]] = None,
        migration: Optional[MigrationConfig] = None,
        async_backend_factory: Optional[Callable[[], AsyncSchedulerBackend]] = None,
    ) -> None:
        self.federation = federation
        self.config = config or SimulationConfig()
        self.migration = migration
        federation.router.reset()  # routers reused across runs drop stale views
        shards = federation.shards
        if callable(schedulers):
            instances = [schedulers() for _ in shards]
        else:
            instances = list(schedulers)
            if len(instances) != len(shards):
                raise ValueError(
                    f"got {len(instances)} schedulers for {len(shards)} shards"
                )
            if len(set(map(id, instances))) != len(instances):
                raise ValueError("each shard needs its own scheduler instance")
        self.metrics = FederationMetrics(
            workload_name=workload_name,
            router_name=federation.router.name,
        )
        fleet_free = federation.free_slots_by_type
        for shard, scheduler in zip(shards, instances, strict=True):
            engine = SimulationEngine(
                shard.feed,
                scheduler,
                cluster=shard.cluster,
                config=self.config,
                workload_name=workload_name,
                placement=placement_factory() if placement_factory is not None else None,
                autoscaler=autoscaler_factory() if autoscaler_factory is not None else None,
                async_backend=(
                    async_backend_factory() if async_backend_factory is not None else None
                ),
            )
            engine.shard_name = shard.name
            engine.shard_count = len(shards)
            engine.fleet_free_slots = fleet_free
            shard.engine = engine

        if isinstance(jobs, Sequence):
            if not jobs:
                raise ValueError("cannot simulate an empty job list")
            ordered = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
            self._global_arrivals: Iterator[Job] = iter(ordered)
        else:
            self._global_arrivals = iter(jobs)
        self._time = 0.0
        self._iterations = 0
        self._seen_job_ids: Set[str] = set()
        self._last_arrival_time = 0.0
        self._next_global: Optional[Job] = None
        self._pull_global()
        self._next_migration_check = migration.interval if migration is not None else None
        # Shards whose state changed since their last scheduling pass; all
        # shards start due so the first iteration initializes every view.
        self._due: Set[int] = set(range(len(shards)))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def current_time(self) -> float:
        return self._time

    @property
    def shards(self) -> List[FederatedShard]:
        return self.federation.shards

    def run(self) -> FederationMetrics:
        """Execute the workload fleet-wide and return aggregated metrics."""
        while self.step():
            pass
        return self.finalize()

    def step(self) -> bool:
        """Advance the fleet through one shared-clock scheduling point.

        Returns ``False`` once no shard can make progress (deadlocks
        raise).  Mirrors :meth:`SimulationEngine.step`; :meth:`run` steps
        to completion and finalizes.
        """
        eps = self.config.eps
        shards = self.federation.shards
        if self._next_global is None and not any(
            s.engine._next_arrival is not None or s.engine._active_jobs for s in shards
        ):
            return False
        self._iterations += 1
        if self._iterations > self.config.max_iterations:
            raise RuntimeError("federated simulation exceeded max_iterations; likely a livelock")
        if self._time > self.config.max_simulated_time:
            raise RuntimeError("federated simulation exceeded max_simulated_time")

        # Scheduling pass on every shard whose state changed.
        for index in sorted(self._due):
            shard = shards[index]
            engine = shard.engine
            engine._time = self._time
            engine.advance_cluster_to(self._time)
            engine._admit_arrivals(self._time)
            if engine.async_backend is not None:
                engine._apply_due_decisions(self._time)
            engine._dispatch()
            shard.next_event = self._shard_next_event(shard)
            shard.num_events += 1
        self._due.clear()

        next_time = self._next_fleet_event()
        if next_time is None:
            self._check_for_deadlock()
            return False
        self._time = max(self._time, next_time)

        # Route global arrivals due now; owning shards become due.
        self._route_due(self._time)

        # Completions (and autoscale checks) on shards whose clock hit.
        for shard in shards:
            if shard.next_event is None or shard.next_event > self._time + eps:
                continue
            engine = shard.engine
            engine._time = self._time
            engine.advance_cluster_to(self._time)
            engine._process_completions(self._time)
            if (
                engine.autoscaler is not None
                and self._time + eps >= engine.autoscaler.next_check_time
            ):
                engine._run_autoscaler()
            self._due.add(shard.index)

        if (
            self._next_migration_check is not None
            and self._time + eps >= self._next_migration_check
        ):
            self._run_migration(self._time)
        return True

    def finalize(self) -> FederationMetrics:
        """Fill the fleet-level metrics (iterations, makespan, utilisation)."""
        shards = self.federation.shards
        self.metrics.num_fleet_iterations = self._iterations
        self.metrics.makespan = self._time
        # Utilization is normalized to the *fleet* horizon for every shard:
        # a shard that drained early and froze its own clock would otherwise
        # report its busy fraction over a shorter window, overstating the
        # aggregate.  (With one shard the horizons coincide, so the
        # single-engine numbers are reproduced exactly.)
        horizon = max(self._time, _EPS)
        for shard in shards:
            engine = shard.engine
            engine.metrics.num_events = shard.num_events
            engine.metrics.makespan = engine._time
            engine.metrics.utilization = engine.cluster.utilization(horizon)
            engine.metrics.pool_utilization = engine.cluster.pool_utilization(horizon)
            engine.metrics.executor_counts = {
                "regular": len(engine.cluster.regular_executors),
                "llm": len(engine.cluster.llm_executors),
            }
            self.metrics.shards[shard.name] = engine.metrics
        return self.metrics

    # ------------------------------------------------------------------ #
    # Arrivals and routing
    # ------------------------------------------------------------------ #
    def _pull_global(self) -> None:
        """Advance the global lookahead (fleet-level duplicate detection:
        per-shard seen sets cannot catch the same id routed to two shards)."""
        self._next_global = next(self._global_arrivals, None)
        if self._next_global is None:
            return
        self._last_arrival_time = validate_arrival_order(
            self._next_global, self._seen_job_ids, self._last_arrival_time, self.config.eps
        )

    def _route_due(self, now: float) -> None:
        eps = self.config.eps
        shards = self.federation.shards
        # Routers with cached views refresh here at their own cadence; the
        # hook runs even when nothing is due, modeling a load reporter that
        # publishes on the fleet's event clock rather than on arrivals.
        self.federation.router.observe(shards, now)
        while self._next_global is not None and self._next_global.arrival_time <= now + eps:
            job = self._next_global
            self._pull_global()
            index = self.federation.router.select_shard(shards, job)
            if not 0 <= index < len(shards):
                raise ValueError(
                    f"router {self.federation.router.name!r} returned shard index "
                    f"{index} for job {job.job_id!r} (fleet has {len(shards)} shards)"
                )
            shard = shards[index]
            shard.feed.push(job)
            engine = shard.engine
            if engine._next_arrival is None:
                engine._pull_arrival()
            self._due.add(index)

    # ------------------------------------------------------------------ #
    # The shared event clock
    # ------------------------------------------------------------------ #
    def _shard_next_event(self, shard: FederatedShard) -> Optional[float]:
        """Earliest shard-local event, with one fleet-aware correction.

        The engine's own ``_next_event_time`` only arms the autoscaler tick
        while the *shard* has activity; in a fleet, global arrivals still
        heading for an idle shard must keep its autoscaler alive (a
        standalone engine gets this via its arrival lookahead).
        """
        engine = shard.engine
        next_time = engine._next_event_time()
        if (
            next_time is None
            and engine.autoscaler is not None
            and self._next_global is not None
        ):
            next_time = engine.autoscaler.next_check_time
        return next_time

    def _next_fleet_event(self) -> Optional[float]:
        candidates: List[float] = [
            shard.next_event
            for shard in self.federation.shards
            if shard.next_event is not None
        ]
        if self._next_global is not None:
            candidates.append(self._next_global.arrival_time)
        # The migration check is an event source only while something else
        # can still happen, so a drained fleet terminates instead of
        # rebalancing nothing forever.
        if self._next_migration_check is not None and candidates:
            candidates.append(self._next_migration_check)
        if not candidates:
            return None
        return min(candidates)

    # ------------------------------------------------------------------ #
    # Migration
    # ------------------------------------------------------------------ #
    def _run_migration(self, now: float) -> None:
        """One rebalance check: move jobs from the hottest to the coldest shard.

        The hot/cold loads are re-evaluated after *every* moved job —
        draining ``max_migrations_per_check`` in one go from a snapshot
        taken up front can overshoot past balance, reverse the imbalance,
        and ping-pong the same jobs between shards on every check.
        """
        config = self.migration
        shards = self.federation.shards
        while self._next_migration_check <= now + self.config.eps:
            self._next_migration_check += config.interval
        if len(shards) < 2:
            return
        for _ in range(config.max_migrations_per_check):
            loads = [shard.load() for shard in shards]
            hot = max(range(len(shards)), key=lambda i: (loads[i], -i))
            cold = min(range(len(shards)), key=lambda i: (loads[i], i))
            if loads[hot] - loads[cold] <= config.imbalance_threshold:
                return
            source, target = shards[hot], shards[cold]
            # Newest jobs first: they have the least schedule locality to
            # lose, and the ordering is deterministic.
            candidates = sorted(
                (j for j in source.engine._active_jobs.values() if not j.is_finished),
                key=lambda j: (j.arrival_time, j.job_id),
                reverse=True,
            )
            moved = False
            for job in candidates:
                if self._migrate_job(job, source, target, now):
                    self._due.add(source.index)
                    self._due.add(target.index)
                    moved = True
                    break
            if not moved:
                return  # nothing movable off the hot shard; try next check

    def _migrate_job(
        self, job: Job, source: FederatedShard, target: FederatedShard, now: float
    ) -> bool:
        """Checkpoint ``job`` off ``source`` and re-admit it on ``target``.

        Every running task is checkpoint-preempted through the source
        engine (progress conserved, preemption metered per shard).  A task
        the engine refuses to preempt — completing at this very instant,
        or stranded on a draining executor — keeps the job pinned to its
        shard: moving it would orphan the running task's completion.

        The migration tick is a fleet-level event, so the source shard's
        clock may lag ``now``; it is synced (and LLM progress accrued)
        first, otherwise the checkpoint would silently roll back the work
        simulated since the shard's last own event.  Preemptability is
        checked for *all* running tasks before any directive is applied —
        checkpointing half a job and then aborting would requeue tasks
        behind the hot shard's backlog for zero rebalancing benefit.
        """
        if not target.can_serve(job):
            return False
        engine = source.engine
        engine._time = now
        engine.advance_cluster_to(now)
        running = [
            task
            for stage in job.unfinished_stages()
            for task in stage.running_tasks()
        ]
        if not all(self._is_preemptable(engine, task, now) for task in running):
            return False
        for task in running:
            engine._apply_preemption(PreemptionDirective(task=task, checkpoint=True))
        if any(task.state is TaskState.RUNNING for task in running):
            # The engine stays authoritative: if it still refused a
            # directive the pre-check missed, the job stays put — but any
            # slots already freed must be redispatched now rather than
            # idling until the shard's next (possibly far-future) event.
            self._due.add(source.index)
            return False
        # The job changes hands: any live snapshot on the *source* shard
        # must freeze its pre-migration state now, because from here on the
        # target engine mutates it and the source tracker never sees it again.
        engine._mark_job_dirty(job)
        del engine._active_jobs[job.job_id]
        job.invalidate_schedulable_cache()
        engine.metrics.record_migration_out()
        target.engine._active_jobs[job.job_id] = job
        target.engine.metrics.record_migration_in()
        target.engine.scheduler.on_job_arrival(job, now)
        self.metrics.record_migration(
            MigrationEvent(
                time=now,
                job_id=job.job_id,
                source=source.name,
                target=target.name,
                checkpointed_tasks=len(running),
                remaining_work=job.true_remaining_work(),
                cost=self.migration.cost,
            )
        )
        return True

    def _is_preemptable(self, engine: SimulationEngine, task, now: float) -> bool:
        """Mirror of the guards in ``SimulationEngine._apply_preemption``:
        a task completing at this very instant, or held by a draining /
        retired executor, cannot be checkpointed off its shard."""
        if task.state is not TaskState.RUNNING or task.executor_id is None:
            return False
        if not engine.cluster.pool_of_executor(task.executor_id).is_active(task.executor_id):
            return False
        eps = self.config.eps
        if task.task_type is TaskType.REGULAR:
            completion = engine.cluster.executor(task.executor_id).completion_time()
            return completion is None or completion > now + eps
        return task.remaining_work > eps

    # ------------------------------------------------------------------ #
    def _check_for_deadlock(self) -> None:
        stuck = [
            job
            for shard in self.federation.shards
            for job in shard.engine._active_jobs.values()
            if not job.is_finished
        ]
        if not stuck:
            return
        pending = sum(len(j.schedulable_tasks()) for j in stuck)
        raise RuntimeError(
            f"federated simulation stalled at t={self._time:.2f}s with {len(stuck)} "
            f"unfinished jobs and {pending} schedulable tasks across "
            f"{len(self.federation.shards)} shards"
        )
