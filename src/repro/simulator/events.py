"""Deterministic event queue used by the simulation engine.

The engine only stores *externally scheduled* events here (job arrivals);
task completions are recomputed from executor state every iteration because
batch-composition changes invalidate previously computed completion times.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["EventType", "SimulationEvent", "EventQueue"]


class EventType(enum.Enum):
    JOB_ARRIVAL = "job_arrival"
    TASK_FINISH = "task_finish"
    #: An asynchronous scheduling decision finishing its latency window and
    #: becoming ready to apply against the live cluster (payload: the
    #: in-flight decision record).
    DECISION_READY = "decision_ready"


@dataclass(frozen=True, order=True)
class SimulationEvent:
    """An event with a total ordering of (time, sequence number)."""

    time: float
    sequence: int
    event_type: EventType = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A min-heap of :class:`SimulationEvent` with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[SimulationEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, event_type: EventType, payload: Any = None) -> SimulationEvent:
        if time < 0:
            raise ValueError("event time must be >= 0")
        event = SimulationEvent(
            time=float(time),
            sequence=next(self._counter),
            event_type=event_type,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def peek(self) -> Optional[SimulationEvent]:
        return self._heap[0] if self._heap else None

    def pop(self) -> SimulationEvent:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
