"""Pluggable placement policies: scheduler decisions → executor pools.

The scheduler layer ranks *which* tasks should run next (preference
lists); the placement layer decides *where* each task lands.  The engine
walks a decision's preference lists in order and, for every task, asks the
policy for a pool; the pool then picks the concrete executor (lowest-index
idle executor for regular pools, least-loaded for LLM pools).

:class:`GreedyFirstFitPlacement` reproduces the pre-refactor inline
placement exactly — with the default two-pool cluster there is one pool
per task type, so "first pool with a free slot" degenerates to "the" pool
and traces stay bit-identical.  The other policies only change behavior on
multi-pool (heterogeneous) clusters.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional

from repro.dag.task import Task, TaskType
from repro.simulator.cluster import Cluster
from repro.simulator.pool import ExecutorPool

__all__ = [
    "PlacementPolicy",
    "GreedyFirstFitPlacement",
    "BestFitPlacement",
    "PoolAffinityPlacement",
    "PrefillDecodePlacement",
    "available_placement_policies",
    "create_placement_policy",
]


class PlacementPolicy(abc.ABC):
    """Maps one task of a scheduling decision onto an executor pool."""

    #: Human-readable name used in experiment reports and factories.
    name: str = "base"

    @abc.abstractmethod
    def select_pool(self, cluster: Cluster, task: Task) -> Optional[ExecutorPool]:
        """The pool ``task`` should be placed on, or None if nothing fits.

        Implementations must only return pools of the task's type with at
        least one free slot; the engine places on the returned pool without
        re-checking the policy's reasoning.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class GreedyFirstFitPlacement(PlacementPolicy):
    """First pool (in declaration order) with a free slot — the default.

    Equivalent to the pre-pool cluster's inline placement on any cluster
    with one pool per task type.
    """

    name = "greedy"

    def select_pool(self, cluster: Cluster, task: Task) -> Optional[ExecutorPool]:
        for pool in cluster.pools_for(task.task_type):
            if pool.free_slots > 0:
                return pool
        return None


class BestFitPlacement(PlacementPolicy):
    """Tightest pool that still fits (fewest free slots, ties by order).

    Packs work into already-busy pools, keeping lightly loaded pools
    drainable — the placement rule that pairs naturally with a scale-down
    autoscaler.
    """

    name = "best_fit"

    def select_pool(self, cluster: Cluster, task: Task) -> Optional[ExecutorPool]:
        best: Optional[ExecutorPool] = None
        for pool in cluster.pools_for(task.task_type):
            if pool.free_slots <= 0:
                continue
            if best is None or pool.free_slots < best.free_slots:
                best = pool
        return best


class PoolAffinityPlacement(PlacementPolicy):
    """Route tasks to a preferred pool by name, falling back when full.

    ``affinity`` maps a task to the name of its preferred pool (e.g. pin a
    tenant's jobs to a dedicated pool, or LLM tasks of long jobs to the
    high-batch pool); tasks with no preference — or whose preferred pool is
    unknown, full or serves the wrong task type — fall back to ``fallback``
    (greedy first-fit by default).
    """

    name = "affinity"

    def __init__(
        self,
        affinity: Callable[[Task], Optional[str]],
        fallback: Optional[PlacementPolicy] = None,
    ) -> None:
        self._affinity = affinity
        self._fallback = fallback or GreedyFirstFitPlacement()

    def select_pool(self, cluster: Cluster, task: Task) -> Optional[ExecutorPool]:
        preferred = self._affinity(task)
        if preferred is not None:
            try:
                pool = cluster.pool(preferred)
            except KeyError:
                pool = None  # stale pool name: degrade, don't abort the run
            if pool is not None and pool.task_type is task.task_type and pool.free_slots > 0:
                return pool
        return self._fallback.select_pool(cluster, task)


class PrefillDecodePlacement(PlacementPolicy):
    """Phase-aware routing for disaggregated prefill/decode LLM pools.

    Token-model LLM tasks land on the pool whose :attr:`~repro.simulator.
    pool.PoolSpec.role` matches their current phase: requests still in
    prefill prefer ``"prefill"`` pools, requests past their prefill
    boundary (fresh admits resuming after a handoff preemption) prefer
    ``"decode"`` pools.  Role-less pools rank second and opposite-role
    pools last — the policy stays work-conserving, trading role purity for
    an occupied slot rather than leaving the task pending.  Regular tasks
    and LLM tasks outside the token model use greedy first-fit, so on a
    cluster without role annotations this policy degenerates to the
    default exactly.
    """

    name = "prefill_decode"

    def select_pool(self, cluster: Cluster, task: Task) -> Optional[ExecutorPool]:
        if task.task_type is not TaskType.LLM or not task.has_token_model:
            for pool in cluster.pools_for(task.task_type):
                if pool.free_slots > 0:
                    return pool
            return None
        want = "decode" if task.prefill_done else "prefill"
        best: Optional[ExecutorPool] = None
        best_rank = 3
        for pool in cluster.pools_for(task.task_type):
            if pool.free_slots <= 0:
                continue
            role = pool.spec.role
            rank = 0 if role == want else (1 if role is None else 2)
            if rank < best_rank:
                best, best_rank = pool, rank
                if rank == 0:
                    break  # declaration order breaks ties within a rank
        return best


_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "greedy": GreedyFirstFitPlacement,
    "best_fit": BestFitPlacement,
    "prefill_decode": PrefillDecodePlacement,
}


def available_placement_policies() -> list:
    """Names accepted by :func:`create_placement_policy`."""
    return sorted(_POLICIES)


def create_placement_policy(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by name (affinity needs a callable,
    so it is constructed directly rather than through this factory)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; available: {available_placement_policies()}"
        ) from None
