"""Batch-size → decoding-latency profile.

The paper profiles the per-token decoding latency of the serving engine at
different batch sizes and uses it both in the simulator (to rescale the
remaining duration of running LLM tasks when the batch changes) and in the
batching-aware duration calibration of Eq. 2.

Batching on modern serving stacks is throughput-friendly: doubling the batch
raises per-token latency far less than 2x.  The default profile uses a
linear per-token latency growth ``l(b) = 1 + slope * (b - 1)`` which matches
the near-linear curves reported for vLLM-style continuous batching at
moderate batch sizes; measured profiles can be supplied as an explicit table
and are linearly interpolated.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["DecodingLatencyProfile"]


class DecodingLatencyProfile:
    """Relative per-token decoding latency as a function of batch size.

    ``latency(1)`` is normalised to 1.0: an LLM task's ``work`` is expressed
    in seconds at batch size 1, and progresses at rate ``speed(b) =
    latency(1) / latency(b)`` when it shares the batch with ``b - 1`` other
    requests.
    """

    def __init__(
        self,
        slope: float = 0.06,
        table: Optional[Mapping[int, float]] = None,
    ) -> None:
        if slope < 0:
            raise ValueError("slope must be >= 0")
        self._slope = float(slope)
        self._table: Optional[Dict[int, float]] = None
        if table is not None:
            if not table:
                raise ValueError("latency table must not be empty")
            cleaned: Dict[int, float] = {}
            for batch_size, latency in table.items():
                if int(batch_size) < 1:
                    raise ValueError("batch sizes must be >= 1")
                require_positive(latency, f"latency at batch size {batch_size}")
                cleaned[int(batch_size)] = float(latency)
            if 1 not in cleaned:
                raise ValueError("latency table must contain batch size 1")
            # Normalise so latency(1) == 1.0.
            base = cleaned[1]
            self._table = {b: latency / base for b, latency in sorted(cleaned.items())}

    # ------------------------------------------------------------------ #
    def latency(self, batch_size: int) -> float:
        """Relative per-token latency at the given batch size (>= 1.0)."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self._table is None:
            return 1.0 + self._slope * (batch_size - 1)
        sizes = np.array(list(self._table.keys()), dtype=float)
        latencies = np.array(list(self._table.values()), dtype=float)
        return float(np.interp(float(batch_size), sizes, latencies))

    def speed(self, batch_size: int) -> float:
        """Progress rate of one task when sharing a batch of ``batch_size``."""
        return 1.0 / self.latency(batch_size)

    def calibrate(self, duration: float, observed_batch: int, target_batch: int) -> float:
        """Batching-aware duration calibration (paper Eq. 2).

        Rescales a duration measured (or profiled) at ``observed_batch`` to
        the expected duration at ``target_batch``.
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        return duration * self.latency(target_batch) / self.latency(observed_batch)

    @classmethod
    def from_measurements(cls, measurements: Mapping[int, float]) -> "DecodingLatencyProfile":
        """Build a profile from measured per-token latencies (seconds)."""
        return cls(table=measurements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._table is not None:
            return f"DecodingLatencyProfile(table={self._table})"
        return f"DecodingLatencyProfile(slope={self._slope})"
