"""Metrics collected during a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.utils.stats import OnlineStats, percentile_summary, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.task import Task

__all__ = ["SimulationMetrics", "SERVING_METRICS_VERSION"]

#: Version of the ``serving`` summary block (Result API / BENCH payloads).
SERVING_METRICS_VERSION = 1


@dataclass
class SimulationMetrics:
    """JCT, utilisation and scheduling-overhead accounting for one run."""

    scheduler_name: str = ""
    workload_name: str = ""
    job_completion_times: Dict[str, float] = field(default_factory=dict)
    job_applications: Dict[str, str] = field(default_factory=dict)
    makespan: float = 0.0
    utilization: Dict[str, float] = field(default_factory=dict)
    scheduling_overhead: OnlineStats = field(default_factory=OnlineStats)
    num_scheduler_invocations: int = 0
    num_tasks_executed: int = 0
    #: Scheduling points the engine processed (arrival/completion events);
    #: the throughput benchmark reports simulated events per second from it.
    num_events: int = 0
    #: Preemption accounting: checkpointed preemptions conserve work, so
    #: ``wasted_work`` only grows for restart-from-scratch preemptions.
    num_preemptions: int = 0
    wasted_work: float = 0.0
    #: Autoscaler resize events (dicts from ScaleEvent.to_dict), and the
    #: per-named-pool busy fractions of the run.
    scale_events: List[Dict[str, object]] = field(default_factory=list)
    pool_utilization: Dict[str, float] = field(default_factory=dict)
    #: Cross-shard migration accounting (federated runs only): jobs this
    #: shard handed off / received, plus the executor counts the federation
    #: uses to weight fleet-level utilization.
    num_migrations_out: int = 0
    num_migrations_in: int = 0
    executor_counts: Dict[str, int] = field(default_factory=dict)
    #: Asynchronous scheduling accounting (runs with an AsyncSchedulerBackend
    #: only).  ``decision_latency`` is the charged latency of every in-flight
    #: decision; ``decision_staleness`` the snapshot age when each decision
    #: was applied (>= its latency when the engine applies late).  Conflicts
    #: are per preference-list entry: ``stale placements`` targeted tasks no
    #: longer pending at apply time (placed by an earlier decision, finished,
    #: or job gone), ``placement conflicts`` were still placeable but found
    #: their slot taken, and ``stale preemptions`` named tasks that were no
    #: longer running.
    num_async_decisions: int = 0
    decision_latency: OnlineStats = field(default_factory=OnlineStats)
    decision_staleness: OnlineStats = field(default_factory=OnlineStats)
    num_stale_placements: int = 0
    num_placement_conflicts: int = 0
    num_stale_preemptions: int = 0
    #: Token-level serving accounting (token-model workloads only; every
    #: container stays empty on legacy runs so ``to_dict`` is byte-identical
    #: to the pre-serving output there).  ``serving_requests`` holds one
    #: record per finished LLM request; ``itl_samples`` are drained from the
    #: executors at finalize; ``slo_targets`` maps tier -> {"ttft", "tpot"}
    #: seconds (installed by the API layer from the spec's SLOSection).
    serving_requests: List[Dict[str, object]] = field(default_factory=list)
    itl_samples: List[float] = field(default_factory=list)
    total_prompt_tokens: int = 0
    total_output_tokens: int = 0
    num_llm_executors: int = 0
    slo_targets: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def record_job_completion(self, job_id: str, application: str, jct: float) -> None:
        if jct < 0:
            raise ValueError("JCT must be >= 0")
        self.job_completion_times[job_id] = float(jct)
        self.job_applications[job_id] = application

    def record_scheduler_invocation(self, overhead_seconds: float) -> None:
        self.num_scheduler_invocations += 1
        self.scheduling_overhead.add(max(0.0, overhead_seconds))

    def record_preemption(self, wasted_work: float) -> None:
        if wasted_work < 0:
            raise ValueError("wasted work must be >= 0")
        self.num_preemptions += 1
        self.wasted_work += float(wasted_work)

    def record_scale_event(self, event: Dict[str, object]) -> None:
        self.scale_events.append(dict(event))

    def record_migration_out(self) -> None:
        self.num_migrations_out += 1

    def record_migration_in(self) -> None:
        self.num_migrations_in += 1

    def record_async_decision(self, latency_seconds: float) -> None:
        if latency_seconds < 0:
            raise ValueError("decision latency must be >= 0")
        self.num_async_decisions += 1
        self.decision_latency.add(float(latency_seconds))

    def record_decision_applied(self, staleness_seconds: float) -> None:
        self.decision_staleness.add(max(0.0, staleness_seconds))

    def record_stale_placement(self) -> None:
        self.num_stale_placements += 1

    def record_placement_conflict(self) -> None:
        self.num_placement_conflicts += 1

    def record_stale_preemption(self) -> None:
        self.num_stale_preemptions += 1

    # ------------------------------------------------------------------ #
    # Token-level serving accounting
    # ------------------------------------------------------------------ #
    def record_llm_task_finish(self, task: "Task", tier: str) -> None:
        """Record the serving latencies of one finished token-model request.

        TTFT is anchored at the task's ready time (when it became
        schedulable), so it upper-bounds queueing delay by construction;
        TPOT only exists for multi-token requests.
        """
        if not task.has_token_model or task.finish_time is None:
            return
        ready = task.ready_time if task.ready_time is not None else task.finish_time
        first = task.first_token_time if task.first_token_time is not None else task.finish_time
        ttft = max(0.0, first - ready)
        tpot: Optional[float] = None
        if task.output_tokens is not None and task.output_tokens > 1:
            tpot = max(0.0, task.finish_time - first) / (task.output_tokens - 1)
        self.serving_requests.append(
            {
                "job_id": task.job_id,
                "tier": tier,
                "prompt_tokens": int(task.prompt_tokens or 0),
                "output_tokens": int(task.output_tokens or 0),
                "ready_time": float(ready),
                "first_token_time": float(first),
                "finish_time": float(task.finish_time),
                "ttft": float(ttft),
                "tpot": tpot,
            }
        )
        self.total_prompt_tokens += int(task.prompt_tokens or 0)
        self.total_output_tokens += int(task.output_tokens or 0)

    def record_itl_samples(self, samples: List[float]) -> None:
        self.itl_samples.extend(samples)

    @property
    def has_serving_samples(self) -> bool:
        return bool(self.serving_requests)

    def _request_meets_slo(self, request: Dict[str, object]) -> bool:
        targets = self.slo_targets.get(str(request["tier"])) or self.slo_targets.get("default")
        if not targets:
            return True  # unconstrained tier: nothing to violate
        ttft_target = targets.get("ttft")
        if ttft_target is not None and float(request["ttft"]) > ttft_target:
            return False
        tpot_target = targets.get("tpot")
        tpot = request.get("tpot")
        if tpot_target is not None and tpot is not None and float(tpot) > tpot_target:
            return False
        return True

    def serving_summary(self) -> Dict[str, object]:
        """The versioned ``serving`` block of the Result API.

        All percentiles come from :func:`repro.utils.stats.percentile_summary`
        — the one shared implementation the CLI, the benchmark writers and
        the regression gate consume, so their numbers agree exactly.
        """
        requests = self.serving_requests
        ttfts = [float(r["ttft"]) for r in requests]
        tpots = [float(r["tpot"]) for r in requests if r.get("tpot") is not None]
        tiers = sorted({str(r["tier"]) for r in requests})
        goodput: Dict[str, float] = {}
        met_total = 0
        for tier in tiers:
            in_tier = [r for r in requests if r["tier"] == tier]
            met = sum(1 for r in in_tier if self._request_meets_slo(r))
            met_total += met
            goodput[tier] = met / len(in_tier) if in_tier else 0.0
        # Fleet-level token throughput (TPS/GPU) vs per-user token velocity
        # (TPS/User): the serving Pareto axes.
        tps_per_gpu = 0.0
        if self.makespan > 0 and self.num_llm_executors > 0:
            tps_per_gpu = self.total_output_tokens / (self.makespan * self.num_llm_executors)
        per_user = [
            int(r["output_tokens"]) / max(1e-12, float(r["finish_time"]) - float(r["ready_time"]))
            for r in requests
        ]
        return {
            "version": SERVING_METRICS_VERSION,
            "num_requests": len(requests),
            "total_prompt_tokens": self.total_prompt_tokens,
            "total_output_tokens": self.total_output_tokens,
            "ttft": percentile_summary(ttfts),
            "tpot": percentile_summary(tpots),
            "itl": percentile_summary(self.itl_samples),
            "goodput": goodput,
            "goodput_overall": met_total / len(requests) if requests else 0.0,
            "tps_per_gpu": tps_per_gpu,
            "tps_per_user": float(sum(per_user) / len(per_user)) if per_user else 0.0,
            "slo_targets": {t: dict(v) for t, v in sorted(self.slo_targets.items())},
        }

    # ------------------------------------------------------------------ #
    @property
    def average_jct(self) -> float:
        if not self.job_completion_times:
            return 0.0
        values = list(self.job_completion_times.values())
        return float(sum(values) / len(values))

    @property
    def average_scheduling_overhead_ms(self) -> float:
        """Average wall-clock overhead of one scheduler invocation (Table I)."""
        if self.scheduling_overhead.count == 0:
            return 0.0
        return self.scheduling_overhead.mean * 1000.0

    def jct_by_application(self) -> Dict[str, float]:
        """Average JCT per application (diagnostic breakdown)."""
        sums: Dict[str, List[float]] = {}
        for job_id, jct in self.job_completion_times.items():
            sums.setdefault(self.job_applications[job_id], []).append(jct)
        return {app: float(sum(v) / len(v)) for app, v in sums.items()}

    def jct_summary(self) -> Dict[str, float]:
        return summarize(list(self.job_completion_times.values()))

    def to_dict(self) -> Dict[str, object]:
        """Flat summary used by the experiment report writers."""
        data: Dict[str, object] = {
            "scheduler": self.scheduler_name,
            "workload": self.workload_name,
            "num_jobs": len(self.job_completion_times),
            "average_jct": self.average_jct,
            "makespan": self.makespan,
            "p95_jct": self.jct_summary()["p95"],
            "avg_overhead_ms": self.average_scheduling_overhead_ms,
            "scheduler_invocations": self.num_scheduler_invocations,
            "num_events": self.num_events,
            "llm_utilization": self.utilization.get("llm", 0.0),
            "regular_utilization": self.utilization.get("regular", 0.0),
            "num_preemptions": self.num_preemptions,
            "wasted_work": self.wasted_work,
            "num_scale_events": len(self.scale_events),
            "num_async_decisions": self.num_async_decisions,
            "avg_decision_latency": (
                self.decision_latency.mean if self.decision_latency.count else 0.0
            ),
            "avg_decision_staleness": (
                self.decision_staleness.mean if self.decision_staleness.count else 0.0
            ),
            "num_stale_placements": self.num_stale_placements,
            "num_placement_conflicts": self.num_placement_conflicts,
            "num_stale_preemptions": self.num_stale_preemptions,
        }
        if self.has_serving_samples:
            # Only token-model runs carry the block, so legacy consumers
            # (golden traces, existing BENCH baselines) see an unchanged dict.
            data["serving"] = self.serving_summary()
        return data
