"""Metrics collected during a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.utils.stats import OnlineStats, summarize

__all__ = ["SimulationMetrics"]


@dataclass
class SimulationMetrics:
    """JCT, utilisation and scheduling-overhead accounting for one run."""

    scheduler_name: str = ""
    workload_name: str = ""
    job_completion_times: Dict[str, float] = field(default_factory=dict)
    job_applications: Dict[str, str] = field(default_factory=dict)
    makespan: float = 0.0
    utilization: Dict[str, float] = field(default_factory=dict)
    scheduling_overhead: OnlineStats = field(default_factory=OnlineStats)
    num_scheduler_invocations: int = 0
    num_tasks_executed: int = 0
    #: Scheduling points the engine processed (arrival/completion events);
    #: the throughput benchmark reports simulated events per second from it.
    num_events: int = 0
    #: Preemption accounting: checkpointed preemptions conserve work, so
    #: ``wasted_work`` only grows for restart-from-scratch preemptions.
    num_preemptions: int = 0
    wasted_work: float = 0.0
    #: Autoscaler resize events (dicts from ScaleEvent.to_dict), and the
    #: per-named-pool busy fractions of the run.
    scale_events: List[Dict[str, object]] = field(default_factory=list)
    pool_utilization: Dict[str, float] = field(default_factory=dict)
    #: Cross-shard migration accounting (federated runs only): jobs this
    #: shard handed off / received, plus the executor counts the federation
    #: uses to weight fleet-level utilization.
    num_migrations_out: int = 0
    num_migrations_in: int = 0
    executor_counts: Dict[str, int] = field(default_factory=dict)
    #: Asynchronous scheduling accounting (runs with an AsyncSchedulerBackend
    #: only).  ``decision_latency`` is the charged latency of every in-flight
    #: decision; ``decision_staleness`` the snapshot age when each decision
    #: was applied (>= its latency when the engine applies late).  Conflicts
    #: are per preference-list entry: ``stale placements`` targeted tasks no
    #: longer pending at apply time (placed by an earlier decision, finished,
    #: or job gone), ``placement conflicts`` were still placeable but found
    #: their slot taken, and ``stale preemptions`` named tasks that were no
    #: longer running.
    num_async_decisions: int = 0
    decision_latency: OnlineStats = field(default_factory=OnlineStats)
    decision_staleness: OnlineStats = field(default_factory=OnlineStats)
    num_stale_placements: int = 0
    num_placement_conflicts: int = 0
    num_stale_preemptions: int = 0

    # ------------------------------------------------------------------ #
    def record_job_completion(self, job_id: str, application: str, jct: float) -> None:
        if jct < 0:
            raise ValueError("JCT must be >= 0")
        self.job_completion_times[job_id] = float(jct)
        self.job_applications[job_id] = application

    def record_scheduler_invocation(self, overhead_seconds: float) -> None:
        self.num_scheduler_invocations += 1
        self.scheduling_overhead.add(max(0.0, overhead_seconds))

    def record_preemption(self, wasted_work: float) -> None:
        if wasted_work < 0:
            raise ValueError("wasted work must be >= 0")
        self.num_preemptions += 1
        self.wasted_work += float(wasted_work)

    def record_scale_event(self, event: Dict[str, object]) -> None:
        self.scale_events.append(dict(event))

    def record_migration_out(self) -> None:
        self.num_migrations_out += 1

    def record_migration_in(self) -> None:
        self.num_migrations_in += 1

    def record_async_decision(self, latency_seconds: float) -> None:
        if latency_seconds < 0:
            raise ValueError("decision latency must be >= 0")
        self.num_async_decisions += 1
        self.decision_latency.add(float(latency_seconds))

    def record_decision_applied(self, staleness_seconds: float) -> None:
        self.decision_staleness.add(max(0.0, staleness_seconds))

    def record_stale_placement(self) -> None:
        self.num_stale_placements += 1

    def record_placement_conflict(self) -> None:
        self.num_placement_conflicts += 1

    def record_stale_preemption(self) -> None:
        self.num_stale_preemptions += 1

    # ------------------------------------------------------------------ #
    @property
    def average_jct(self) -> float:
        if not self.job_completion_times:
            return 0.0
        values = list(self.job_completion_times.values())
        return float(sum(values) / len(values))

    @property
    def average_scheduling_overhead_ms(self) -> float:
        """Average wall-clock overhead of one scheduler invocation (Table I)."""
        if self.scheduling_overhead.count == 0:
            return 0.0
        return self.scheduling_overhead.mean * 1000.0

    def jct_by_application(self) -> Dict[str, float]:
        """Average JCT per application (diagnostic breakdown)."""
        sums: Dict[str, List[float]] = {}
        for job_id, jct in self.job_completion_times.items():
            sums.setdefault(self.job_applications[job_id], []).append(jct)
        return {app: float(sum(v) / len(v)) for app, v in sums.items()}

    def jct_summary(self) -> Dict[str, float]:
        return summarize(list(self.job_completion_times.values()))

    def to_dict(self) -> Dict[str, object]:
        """Flat summary used by the experiment report writers."""
        return {
            "scheduler": self.scheduler_name,
            "workload": self.workload_name,
            "num_jobs": len(self.job_completion_times),
            "average_jct": self.average_jct,
            "makespan": self.makespan,
            "p95_jct": self.jct_summary()["p95"],
            "avg_overhead_ms": self.average_scheduling_overhead_ms,
            "scheduler_invocations": self.num_scheduler_invocations,
            "num_events": self.num_events,
            "llm_utilization": self.utilization.get("llm", 0.0),
            "regular_utilization": self.utilization.get("regular", 0.0),
            "num_preemptions": self.num_preemptions,
            "wasted_work": self.wasted_work,
            "num_scale_events": len(self.scale_events),
            "num_async_decisions": self.num_async_decisions,
            "avg_decision_latency": (
                self.decision_latency.mean if self.decision_latency.count else 0.0
            ),
            "avg_decision_staleness": (
                self.decision_staleness.mean if self.decision_staleness.count else 0.0
            ),
            "num_stale_placements": self.num_stale_placements,
            "num_placement_conflicts": self.num_placement_conflicts,
            "num_stale_preemptions": self.num_stale_preemptions,
        }
