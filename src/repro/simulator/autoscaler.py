"""Threshold / target-load autoscaling of executor pools.

The paper sizes the cluster offline for one fixed arrival rate; under the
open-loop diurnal arrival process (:mod:`repro.workloads.arrivals`) any
static size is wrong half the day.  This module adds the missing control
loop: at a fixed check interval (a *scale event*), the autoscaler compares
each pool's instantaneous occupancy against a target band and resizes the
pool through the cluster's elasticity API — scale-up adds executors,
scale-down drains them (busy executors retire when their work finishes, so
no running task is killed by the autoscaler).

The engine only consults the autoscaler when one is configured, so default
runs remain bit-identical to the pre-autoscaler engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dag.task import TaskType
from repro.simulator.cluster import Cluster

__all__ = ["AutoscalerConfig", "ScaleEvent", "ThresholdAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Target-load band and step sizing for :class:`ThresholdAutoscaler`.

    A pool scales up when its occupancy is at or above
    ``scale_up_occupancy`` *and* there is unplaced demand of its task type
    (backlog), and scales down when occupancy falls to or below
    ``scale_down_occupancy`` with no backlog.  ``step`` executors are added
    or drained per event, bounded by each pool spec's ``min_executors`` /
    ``max_executors``.  Both directions are capped *per task type*: one
    check event changes a type's capacity by at most ``step`` executors,
    however many sibling pools serve that type.
    """

    interval: float = 30.0
    scale_up_occupancy: float = 0.9
    scale_down_occupancy: float = 0.3
    step: int = 1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if not 0.0 < self.scale_up_occupancy <= 1.0:
            raise ValueError("scale_up_occupancy must be within (0, 1]")
        if not 0.0 <= self.scale_down_occupancy < self.scale_up_occupancy:
            raise ValueError("scale_down_occupancy must be in [0, scale_up_occupancy)")
        if self.step < 1:
            raise ValueError("step must be >= 1")


@dataclass(frozen=True)
class ScaleEvent:
    """One applied pool resize (recorded in the run metrics)."""

    time: float
    pool: str
    delta: int
    occupancy: float
    backlog: int
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "pool": self.pool,
            "delta": self.delta,
            "occupancy": self.occupancy,
            "backlog": self.backlog,
            "reason": self.reason,
        }


class ThresholdAutoscaler:
    """Per-pool occupancy-band autoscaler driven by the engine's clock.

    The engine treats ``next_check_time`` as an event source (like arrivals
    and completions) and calls :meth:`check` whenever the clock reaches it;
    ``check`` evaluates every pool once and advances the next check time by
    ``interval``.
    """

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config or AutoscalerConfig()
        self.next_check_time: float = self.config.interval
        self.events: List[ScaleEvent] = []

    def reset(self) -> None:
        """Re-arm for a fresh run (clock restarts at 0).

        The engine calls this at construction so an autoscaler instance
        reused across runs does not carry the previous run's check
        schedule (which would silently skip every check before the old
        run's final clock).
        """
        self.next_check_time = self.config.interval
        self.events = []

    def check(
        self,
        cluster: Cluster,
        backlog: Dict[TaskType, int],
        now: float,
        eps: float = 0.0,
    ) -> List[ScaleEvent]:
        """Evaluate all pools at ``now``; returns the scale events applied.

        ``backlog`` is the number of schedulable-but-unplaced tasks per
        task type (the demand signal: occupancy alone cannot distinguish a
        full pool with a deep queue from a full pool with none).  ``eps``
        must match the caller's trigger tolerance: a check fired at
        ``next_check_time - eps/2`` still advances the schedule, so one
        scheduled interval never runs twice.
        """
        config = self.config
        applied: List[ScaleEvent] = []
        # Demand is absorbed type-wide: a full pool must not scale up while
        # a sibling pool of the same task type can take the whole backlog.
        free_by_type = {
            task_type: cluster.free_slots(task_type)
            for task_type in (TaskType.REGULAR, TaskType.LLM)
        }
        # Scale-down needs the mirror-image guard: each eligible pool is
        # individually below the band, but draining ``step`` from every
        # sibling would shrink the type's capacity by pools × step in one
        # event — far below the band's intent.  Budget the drain per type.
        down_budget = {TaskType.REGULAR: config.step, TaskType.LLM: config.step}
        for pool in cluster.pools:
            occupancy = pool.occupancy
            pending = backlog.get(pool.task_type, 0)
            # Scale up only for demand the cluster cannot already absorb:
            # at a band-edge occupancy a small backlog may fit into free
            # slots at the very next dispatch.  A pool drained to zero
            # capacity reports occupancy 0; backlog alone must be able to
            # scale it back up.
            if pending > free_by_type[pool.task_type] and (
                pool.capacity == 0 or occupancy >= config.scale_up_occupancy
            ):
                delta = cluster.scale_pool(pool.name, config.step)
                # Re-read the type-wide free capacity so a sibling pool does
                # not also scale up for the same backlog.  (Recomputing is
                # exact: scale-up may recycle busy draining executors that
                # free no slots right now, so crediting delta*slots would
                # overstate the absorbed demand.)
                free_by_type[pool.task_type] = cluster.free_slots(pool.task_type)
                reason = "occupancy above target band with backlog"
            elif (
                occupancy <= config.scale_down_occupancy
                and pending == 0
                and down_budget[pool.task_type] > 0
            ):
                delta = cluster.scale_pool(pool.name, -down_budget[pool.task_type])
                down_budget[pool.task_type] += delta  # delta <= 0
                reason = "occupancy below target band"
            else:
                continue
            if delta != 0:
                applied.append(
                    ScaleEvent(
                        time=now,
                        pool=pool.name,
                        delta=delta,
                        occupancy=occupancy,
                        backlog=pending,
                        reason=reason,
                    )
                )
        while self.next_check_time <= now + eps:
            self.next_check_time += config.interval
        self.events.extend(applied)
        return applied
