"""Reference simulation engine: the pre-refactor event loop, kept as an oracle.

This is the seed implementation of :class:`SimulationEngine` before the
indexed fast path landed: it rescans every executor and rebuilds the full
cluster view at every iteration and keeps active jobs in a list (O(n)
removal and membership tests).  One deliberate deviation from the seed:
the shared ``SimulationConfig.eps`` knob (default ``1e-9``) replaces both
the seed's hard-coded ``1e-9`` time epsilon and its ``1e-6`` LLM
remaining-work threshold, so the fast-vs-reference comparison certifies
the *current* completion semantics bit for bit at any eps; at the default
eps, traces can differ from the seed commit by up to 1e-6 seconds on
sub-microsecond completion gaps.

It exists for two reasons:

* **Golden behavior.** The invariant/golden-trace test harness runs the
  fast engine and this reference side by side and asserts bit-identical
  per-job JCTs, so any silent behavior drift in the fast path is caught.
* **Honest speedups.** The engine-throughput benchmark reports the fast
  engine's speedup against this implementation on the same workload.

Do not use it for experiments; it is deliberately slow.
"""

from __future__ import annotations

import time as wallclock
from typing import Dict, List, Optional, Sequence

from repro.dag.job import Job
from repro.dag.stage import StageState
from repro.dag.task import Task, TaskType
from repro.schedulers.base import Scheduler, SchedulingContext
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationConfig
from repro.simulator.metrics import SimulationMetrics

__all__ = ["ReferenceSimulationEngine"]

_EPS = 1e-9


class ReferenceSimulationEngine:
    """Seed engine: full per-iteration scans (behavioral oracle, see module doc)."""

    def __init__(
        self,
        jobs: Sequence[Job],
        scheduler: Scheduler,
        cluster: Optional[Cluster] = None,
        cluster_config: Optional[ClusterConfig] = None,
        config: Optional[SimulationConfig] = None,
        workload_name: str = "",
    ) -> None:
        if not jobs:
            raise ValueError("cannot simulate an empty job list")
        if cluster is None:
            cluster = Cluster(cluster_config or ClusterConfig())
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self._jobs: List[Job] = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        self._jobs_by_id: Dict[str, Job] = {j.job_id: j for j in self._jobs}
        if len(self._jobs_by_id) != len(self._jobs):
            raise ValueError("duplicate job ids in workload")
        self.metrics = SimulationMetrics(
            scheduler_name=scheduler.name, workload_name=workload_name
        )
        self._time = 0.0
        self._arrival_index = 0
        self._active_jobs: List[Job] = []

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationMetrics:
        """Execute the workload to completion and return the metrics."""
        iterations = 0
        while self._arrival_index < len(self._jobs) or self._active_jobs:
            iterations += 1
            if iterations > self.config.max_iterations:
                raise RuntimeError("simulation exceeded max_iterations; likely a livelock")
            if self._time > self.config.max_simulated_time:
                raise RuntimeError("simulation exceeded max_simulated_time")

            self._admit_arrivals(self._time)
            self._dispatch()

            next_time = self._next_event_time()
            if next_time is None:
                self._check_for_deadlock()
                break
            self._time = max(self._time, next_time)
            self.cluster.advance_to(self._time)
            self._process_completions(self._time)

        self.metrics.num_events = iterations
        self.metrics.makespan = self._time
        self.metrics.utilization = self.cluster.utilization(max(self._time, _EPS))
        # Same drain as the fast engine's finalize (executors retire in
        # place, so every ITL sample is collected exactly once).
        self.metrics.num_llm_executors = len(self.cluster.llm_executors)
        for executor in self.cluster.llm_executors:
            self.metrics.record_itl_samples(executor.drain_itl_samples())
        return self.metrics

    @property
    def current_time(self) -> float:
        return self._time

    # ------------------------------------------------------------------ #
    def _admit_arrivals(self, now: float) -> None:
        while (
            self._arrival_index < len(self._jobs)
            and self._jobs[self._arrival_index].arrival_time <= now + self.config.eps
        ):
            job = self._jobs[self._arrival_index]
            self._arrival_index += 1
            if job.is_finished:
                # Degenerate jobs (everything skipped) complete on arrival.
                self._record_job_completion(job)
                continue
            self._active_jobs.append(job)
            self.scheduler.on_job_arrival(job, now)

    # ------------------------------------------------------------------ #
    def _build_context(self) -> SchedulingContext:
        return SchedulingContext(
            time=self._time,
            jobs=list(self._active_jobs),
            free_regular_slots=len(self.cluster.idle_regular_executors()),
            free_llm_slots=sum(e.free_slots for e in self.cluster.llm_executors),
            llm_batch_sizes=[e.batch_size for e in self.cluster.llm_executors],
        )

    def _dispatch(self) -> None:
        if not self._active_jobs:
            return
        free_regular = len(self.cluster.idle_regular_executors())
        free_llm = sum(e.free_slots for e in self.cluster.llm_executors)
        if free_regular == 0 and free_llm == 0:
            return
        context = self._build_context()
        if not context.schedulable_tasks():
            return

        started = wallclock.perf_counter()  # repro: REP003-exempt -- meters real scheduler overhead (Table I), never feeds simulated time
        decision = self.scheduler.schedule(context)
        overhead = wallclock.perf_counter() - started  # repro: REP003-exempt -- meters real scheduler overhead (Table I), never feeds simulated time
        self.metrics.record_scheduler_invocation(overhead)

        for task in decision.regular_tasks:
            if len(self.cluster.idle_regular_executors()) == 0:
                break
            self._place_task(task, TaskType.REGULAR)
        for task in decision.llm_tasks:
            if sum(e.free_slots for e in self.cluster.llm_executors) == 0:
                break
            self._place_task(task, TaskType.LLM)

    def _place_task(self, task: Task, expected_type: TaskType) -> None:
        if task.task_type is not expected_type:
            raise RuntimeError(
                f"scheduler put {task.key()} in the wrong preference list"
            )
        if task.state.name != "PENDING":
            return  # Already placed by an earlier (duplicate) preference entry.
        job = self._jobs_by_id.get(task.job_id)
        if job is None or job not in self._active_jobs:
            return
        stage = job.stage(task.stage_id)
        if stage.state not in (StageState.READY, StageState.RUNNING) or not stage.visible:
            return  # Not actually schedulable; ignore the preference entry.
        if expected_type is TaskType.REGULAR:
            placed = self.cluster.assign_regular_task(task, self._time)
        else:
            placed = self.cluster.assign_llm_task(task, self._time)
        if placed is not None:
            stage.mark_running()
            job.invalidate_schedulable_cache()

    # ------------------------------------------------------------------ #
    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        completion = self.cluster.next_completion()
        if completion is not None:
            candidates.append(completion[0])
        if self._arrival_index < len(self._jobs):
            candidates.append(self._jobs[self._arrival_index].arrival_time)
        if not candidates:
            return None
        return min(candidates)

    def _process_completions(self, now: float) -> None:
        finished_tasks: List[Task] = []
        for executor in self.cluster.regular_executors:
            completion = executor.completion_time()
            if completion is not None and completion <= now + self.config.eps:
                finished_tasks.append(self.cluster.finish_regular_task(executor, now))
        for executor in self.cluster.llm_executors:
            for task in list(executor.running):
                # Honors the shared eps knob (the seed hard-coded 1e-6 here)
                # so fast-vs-reference traces stay bit-identical.
                if task.remaining_work <= self.config.eps:
                    self.cluster.finish_llm_task(executor, task, now, eps=self.config.eps)
                    finished_tasks.append(task)
                    if task.has_token_model:
                        owner = self._jobs_by_id.get(task.job_id)
                        tier = owner.priority if owner is not None else "default"
                        self.metrics.record_llm_task_finish(task, tier)

        for task in finished_tasks:
            self.metrics.num_tasks_executed += 1
            job = self._jobs_by_id[task.job_id]
            stage = job.stage(task.stage_id)
            if stage.all_tasks_finished() and stage.state is StageState.RUNNING:
                job.notify_stage_finished(stage.stage_id, now)
                self.scheduler.on_stage_complete(job, stage, now)
                if job.is_finished:
                    self._record_job_completion(job)

    def _record_job_completion(self, job: Job) -> None:
        if job.jct is None:
            raise RuntimeError(f"job {job.job_id} has no completion time")
        self.metrics.record_job_completion(job.job_id, job.application, job.jct)
        self.scheduler.on_job_complete(job, self._time)
        if job in self._active_jobs:
            self._active_jobs.remove(job)

    # ------------------------------------------------------------------ #
    def _check_for_deadlock(self) -> None:
        """Raise if jobs remain but nothing can ever make progress again."""
        stuck = [j for j in self._active_jobs if not j.is_finished]
        if not stuck:
            return
        pending = sum(len(j.schedulable_tasks()) for j in stuck)
        raise RuntimeError(
            f"simulation stalled at t={self._time:.2f}s with {len(stuck)} unfinished "
            f"jobs and {pending} schedulable tasks; the scheduler is not work-conserving"
        )
