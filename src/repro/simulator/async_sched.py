"""Asynchronous scheduling: decision latency, stale snapshots, conflicts.

The synchronous engine assumes every scheduling decision is instantaneous:
the scheduler sees a perfectly fresh cluster view and its decision applies
at the very instant it was requested.  At fleet scale neither holds — the
control plane snapshots state, *thinks* for a while, and the decision lands
on a cluster that has moved on.  This module models that regime:

* A :class:`DecisionLatencyModel` prices one scheduling pass — fixed,
  linear in the number of pending jobs, or sampled from an empirical
  latency profile.
* :class:`AsyncSchedulerBackend` snapshots the
  :class:`~repro.schedulers.base.SchedulingContext` at decision-request
  time — a copy-on-write view by default, or a deep copy under the
  ``snapshot_policy="deepcopy"`` oracle; either way later live mutations
  cannot leak into the view — invokes the scheduler against the snapshot,
  and holds the resulting decision *in flight* until ``t + latency``, when
  the engine applies it against the **live** cluster.  The snapshot's
  lifetime is the ``schedule()`` call: the in-flight record keeps only the
  decision (plus the snapshot's free-slot counts), so under COW the
  per-mutation copy cost drops to zero the moment the scheduler returns.
* Conflict resolution happens at apply time: tasks that are no longer
  pending (placed by an earlier decision, finished, or their job left the
  cluster) are dropped and metered as stale placements; tasks that are
  still placeable but find their slot taken are requeued and metered as
  capacity conflicts; preemption directives naming tasks that already
  finished are metered no-ops.
* In **pipelined** mode the backend takes the next snapshot while the
  previous decision is still in flight (up to ``max_in_flight`` deep),
  modeling a scheduler that overlaps decision computation with decision
  delivery.

A latency of zero in non-pipelined mode short-circuits the whole machinery
— the scheduler runs on the live context and the decision applies
immediately — so the asynchronous backend at latency 0 is bit-identical to
the synchronous engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.schedulers.base import SchedulingContext, SchedulingDecision
from repro.simulator.events import EventQueue, EventType
from repro.utils.rng import make_rng

__all__ = [
    "DecisionLatencyModel",
    "FixedLatency",
    "PerJobLinearLatency",
    "SampledLatency",
    "create_latency_model",
    "AsyncConfig",
    "InFlightDecision",
    "AsyncSchedulerBackend",
]


# --------------------------------------------------------------------------- #
# Latency models
# --------------------------------------------------------------------------- #
class DecisionLatencyModel(abc.ABC):
    """Prices one scheduling pass in simulated seconds."""

    name: str = "base"

    @abc.abstractmethod
    def latency(self, context: SchedulingContext) -> float:
        """Decision latency for a pass over ``context`` (>= 0)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class FixedLatency(DecisionLatencyModel):
    """Every decision takes the same ``seconds`` (0 = synchronous)."""

    name = "fixed"

    def __init__(self, seconds: float = 0.0) -> None:
        if seconds < 0:
            raise ValueError("decision latency must be >= 0")
        self.seconds = float(seconds)

    def latency(self, context: SchedulingContext) -> float:
        return self.seconds


class PerJobLinearLatency(DecisionLatencyModel):
    """``base + per_job * num_pending_jobs`` — the decision cost grows with
    the backlog the scheduler must reason about (the shape of every
    optimization-based policy in the paper's Table I)."""

    name = "per_job_linear"

    def __init__(self, base: float = 0.0, per_job: float = 0.01) -> None:
        if base < 0 or per_job < 0:
            raise ValueError("base and per_job must be >= 0")
        self.base = float(base)
        self.per_job = float(per_job)

    def latency(self, context: SchedulingContext) -> float:
        return self.base + self.per_job * len(context.jobs)


class SampledLatency(DecisionLatencyModel):
    """Latency drawn from an empirical profile of observed decision times.

    ``samples`` is any sequence of non-negative latencies (e.g. measured
    scheduler overheads scaled to control-plane units); each decision draws
    one uniformly with a seeded RNG, so runs are reproducible.
    """

    name = "sampled"

    def __init__(self, samples: Sequence[float], seed: int = 0) -> None:
        values = [float(v) for v in samples]
        if not values:
            raise ValueError("samples must not be empty")
        if any(v < 0 for v in values):
            raise ValueError("latency samples must be >= 0")
        self.samples = values
        self.seed = int(seed)
        self._rng = make_rng(self.seed)

    def reset(self) -> None:
        """Re-arm the RNG so a reused model replays the same draws."""
        self._rng = make_rng(self.seed)

    def latency(self, context: SchedulingContext) -> float:
        return self.samples[int(self._rng.integers(0, len(self.samples)))]


def create_latency_model(
    spec: Union[float, int, DecisionLatencyModel],
) -> DecisionLatencyModel:
    """Coerce a bare number into :class:`FixedLatency` (models pass through)."""
    if isinstance(spec, DecisionLatencyModel):
        return spec
    return FixedLatency(float(spec))


# --------------------------------------------------------------------------- #
# Configuration and in-flight state
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AsyncConfig:
    """Knobs of one asynchronous scheduling backend.

    ``latency`` is a :class:`DecisionLatencyModel` or a bare number of
    seconds (coerced to :class:`FixedLatency`).  ``pipelined`` lets the
    backend take the next snapshot while a previous decision is still in
    flight, up to ``max_in_flight`` concurrent decisions; non-pipelined
    backends always hold at most one.
    """

    latency: Union[float, DecisionLatencyModel] = 0.0
    pipelined: bool = False
    max_in_flight: int = 2

    def __post_init__(self) -> None:
        if not isinstance(self.latency, DecisionLatencyModel) and float(self.latency) < 0:
            raise ValueError("decision latency must be >= 0")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")

    @property
    def depth(self) -> int:
        return self.max_in_flight if self.pipelined else 1


@dataclass
class InFlightDecision:
    """A decision computed from a snapshot, waiting out its latency window."""

    requested_at: float
    apply_at: float
    decision: SchedulingDecision
    #: Free capacity the snapshot promised.  Conflict metering is scoped to
    #: the preference-list entries within these budgets: entries beyond them
    #: would have been dropped by the synchronous engine too (preference
    #: lists may exceed capacity by design), so only in-budget drops signal
    #: genuine staleness.
    snapshot_free_regular: int = 0
    snapshot_free_llm: int = 0


# --------------------------------------------------------------------------- #
# The backend
# --------------------------------------------------------------------------- #
class AsyncSchedulerBackend:
    """Decision-latency layer between the engine and its scheduler.

    The backend owns no scheduler and no metrics — both belong to the
    engine; it owns the *policy* (latency model, pipelining depth) and the
    queue of in-flight decisions, ordered by apply time through the shared
    :class:`~repro.simulator.events.EventQueue` machinery
    (:attr:`~repro.simulator.events.EventType.DECISION_READY` events).

    One backend instance drives one engine; construct one per shard for
    federated runs (see ``FederatedSimulationEngine``'s
    ``async_backend_factory``).
    """

    def __init__(self, config: Optional[AsyncConfig] = None) -> None:
        self.config = config or AsyncConfig()
        self.model = create_latency_model(self.config.latency)
        if isinstance(self.model, SampledLatency):
            # Every backend draws from its own seed-fresh stream: sharing
            # one RNG across backends built from the same config (e.g. the
            # per-shard factory of a federated run) would couple their
            # latency sequences and let any backend's reset() rewind the
            # siblings mid-run.
            self.model = SampledLatency(self.model.samples, self.model.seed)
        self._events = EventQueue()
        self._num_in_flight = 0

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Drop in-flight state so the backend can drive a fresh run."""
        self._events = EventQueue()
        self._num_in_flight = 0
        if isinstance(self.model, SampledLatency):
            self.model.reset()

    @property
    def num_in_flight(self) -> int:
        return self._num_in_flight

    def can_request(self) -> bool:
        """Whether a new decision may be requested now (pipelining depth)."""
        return self._num_in_flight < self.config.depth

    # ------------------------------------------------------------------ #
    def request(
        self,
        schedule: Callable[[SchedulingContext], SchedulingDecision],
        context: SchedulingContext,
        now: float,
        eps: float,
    ) -> Optional[SchedulingDecision]:
        """Start one decision at ``now`` against (a snapshot of) ``context``.

        Returns the decision directly when it is synchronous (latency within
        ``eps`` in non-pipelined mode) — the caller applies it immediately,
        exactly like the synchronous engine.  Otherwise the scheduler runs
        against a snapshot, the decision goes in flight, and ``None`` is
        returned; the caller collects it from :meth:`pop_due` once the
        clock reaches ``now + latency``.

        This is the *only* snapshot call site in the async machinery, and
        ``context`` is always the live context freshly built by the engine's
        dispatch pass — never an earlier snapshot.  In pipelined mode each
        of the up-to-``max_in_flight`` outstanding decisions therefore got
        its own independent snapshot of a *live* context; no path
        re-snapshots an existing snapshot (``snapshot()`` raises if one
        ever does).
        """
        latency = self.model.latency(context)
        if latency < 0:
            raise ValueError(f"latency model {self.model.name!r} returned {latency}")
        if latency <= eps and not self.config.pipelined:
            # Synchronous fast path: live view, immediate application —
            # bit-identical to an engine without an async backend.
            return schedule(context)
        decision = schedule(context.snapshot())
        inflight = InFlightDecision(
            requested_at=now,
            apply_at=now + latency,
            decision=decision,
            snapshot_free_regular=context.free_regular_slots,
            snapshot_free_llm=context.free_llm_slots,
        )
        self._events.push(inflight.apply_at, EventType.DECISION_READY, inflight)
        self._num_in_flight += 1
        return None

    def next_apply_time(self) -> Optional[float]:
        """Apply time of the earliest in-flight decision (an event source)."""
        event = self._events.peek()
        return event.time if event is not None else None

    def pop_due(self, now: float, eps: float) -> List[InFlightDecision]:
        """In-flight decisions whose latency window ended by ``now``."""
        due: List[InFlightDecision] = []
        while self._events and self._events.peek().time <= now + eps:
            due.append(self._events.pop().payload)
            self._num_in_flight -= 1
        return due

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncSchedulerBackend(model={self.model.name!r}, "
            f"pipelined={self.config.pipelined}, in_flight={self._num_in_flight})"
        )
