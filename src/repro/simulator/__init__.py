"""Cluster simulator substrate.

The paper evaluates LLMSched both on a real testbed (H800 + vLLM) and on a
simulator that models the one property of LLM serving that matters for
scheduling: decoding latency depends on how many requests share the batch,
so the remaining duration of every running LLM task changes whenever the
batch composition changes.  This subpackage implements that simulator as a
discrete-event engine:

* :mod:`~repro.simulator.latency` — batch-size → decoding-latency profile,
* :mod:`~repro.simulator.executor` — regular executors (one task at a time)
  and batched LLM executors (progress rescaling on batch changes),
* :mod:`~repro.simulator.pool` — named, heterogeneous executor pools with
  incremental capacity accounting and drain-based elasticity,
* :mod:`~repro.simulator.cluster` — composition of pools plus the capacity
  surface the engine uses,
* :mod:`~repro.simulator.placement` — pluggable policies mapping scheduler
  decisions onto pools (greedy first-fit, best-fit, pool affinity),
* :mod:`~repro.simulator.autoscaler` — threshold/target-load pool resizing
  at periodic scale events,
* :mod:`~repro.simulator.engine` — the event loop driving jobs, executors,
  a pluggable scheduler and (optionally) preemption + autoscaling,
* :mod:`~repro.simulator.federation` — sharded multi-cluster fleets: job
  routers, a shared-event-clock federated engine and cross-shard
  checkpoint migration,
* :mod:`~repro.simulator.metrics` — JCT / utilisation / preemption /
  scale-event accounting.
"""

from repro.simulator.latency import DecodingLatencyProfile
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.pool import ExecutorPool, PoolSpec
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.placement import (
    BestFitPlacement,
    GreedyFirstFitPlacement,
    PlacementPolicy,
    PoolAffinityPlacement,
    create_placement_policy,
)
from repro.simulator.autoscaler import AutoscalerConfig, ScaleEvent, ThresholdAutoscaler
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.async_sched import (
    AsyncConfig,
    AsyncSchedulerBackend,
    DecisionLatencyModel,
    FixedLatency,
    PerJobLinearLatency,
    SampledLatency,
    create_latency_model,
)
from repro.simulator.engine import SimulationEngine, SimulationConfig
from repro.simulator.events import EventQueue, SimulationEvent
from repro.simulator.protocol import SimulationEngineProtocol, ensure_engine_protocol
from repro.simulator.federation import (
    FederatedCluster,
    FederatedSimulationEngine,
    FederationMetrics,
    HashRouter,
    JobRouter,
    LeastLoadedRouter,
    MigrationConfig,
    MigrationEvent,
    StaleLeastLoadedRouter,
    TypeAffinityRouter,
    create_job_router,
)
from repro.simulator.reference import ReferenceSimulationEngine

__all__ = [
    "ReferenceSimulationEngine",
    "DecodingLatencyProfile",
    "RegularExecutor",
    "LLMExecutor",
    "ExecutorPool",
    "PoolSpec",
    "Cluster",
    "ClusterConfig",
    "PlacementPolicy",
    "GreedyFirstFitPlacement",
    "BestFitPlacement",
    "PoolAffinityPlacement",
    "create_placement_policy",
    "AutoscalerConfig",
    "ScaleEvent",
    "ThresholdAutoscaler",
    "SimulationMetrics",
    "SimulationEngine",
    "SimulationConfig",
    "SimulationEngineProtocol",
    "ensure_engine_protocol",
    "AsyncConfig",
    "AsyncSchedulerBackend",
    "DecisionLatencyModel",
    "FixedLatency",
    "PerJobLinearLatency",
    "SampledLatency",
    "create_latency_model",
    "EventQueue",
    "SimulationEvent",
    "FederatedCluster",
    "FederatedSimulationEngine",
    "FederationMetrics",
    "JobRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "StaleLeastLoadedRouter",
    "TypeAffinityRouter",
    "MigrationConfig",
    "MigrationEvent",
    "create_job_router",
]
