"""Cluster simulator substrate.

The paper evaluates LLMSched both on a real testbed (H800 + vLLM) and on a
simulator that models the one property of LLM serving that matters for
scheduling: decoding latency depends on how many requests share the batch,
so the remaining duration of every running LLM task changes whenever the
batch composition changes.  This subpackage implements that simulator as a
discrete-event engine:

* :mod:`~repro.simulator.latency` — batch-size → decoding-latency profile,
* :mod:`~repro.simulator.executor` — regular executors (one task at a time)
  and batched LLM executors (progress rescaling on batch changes),
* :mod:`~repro.simulator.cluster` — executor pools and placement,
* :mod:`~repro.simulator.engine` — the event loop driving jobs, executors and
  a pluggable scheduler,
* :mod:`~repro.simulator.metrics` — JCT / utilisation / overhead accounting.
"""

from repro.simulator.latency import DecodingLatencyProfile
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.engine import SimulationEngine, SimulationConfig
from repro.simulator.events import EventQueue, SimulationEvent
from repro.simulator.reference import ReferenceSimulationEngine

__all__ = [
    "ReferenceSimulationEngine",
    "DecodingLatencyProfile",
    "RegularExecutor",
    "LLMExecutor",
    "Cluster",
    "ClusterConfig",
    "SimulationMetrics",
    "SimulationEngine",
    "SimulationConfig",
    "EventQueue",
    "SimulationEvent",
]
