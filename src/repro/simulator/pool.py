"""Named, heterogeneous executor pools.

A :class:`Cluster` used to own exactly two hard-coded pools (regular
containers and batched LLM engines).  This module extracts the pool into
its own abstraction so a cluster can be composed of N named pools with
per-pool executor count, batch size, latency profile and speed factor —
the substrate for pool-aware placement policies and autoscaling.

Capacity bookkeeping is incremental, exactly like the pre-refactor
cluster: each pool maintains a free-slot counter and (for regular pools) a
min-heap of idle executor indices, so the simulation engine's hot path
never scans executors.  The counters stay exact as long as assignments,
preemptions and completions go through the pool.

Elasticity
----------
``scale_up`` appends fresh executors (ids carry a monotonically increasing
suffix and are never reused).  ``scale_down`` *retires* executors instead
of deleting them: an idle executor retires immediately, a busy one drains —
it stops accepting work and retires when its current work finishes.
Retired executors stay in the executor list so indices held by the
engine's event bookkeeping remain stable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Union

from repro.dag.task import Task, TaskType
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.latency import DecodingLatencyProfile

__all__ = ["PoolSpec", "ExecutorPool"]

AnyExecutor = Union[RegularExecutor, LLMExecutor]


@dataclass(frozen=True)
class PoolSpec:
    """Static description of one executor pool.

    Attributes
    ----------
    name:
        Unique pool name (used by placement policies and scale events).
    task_type:
        Which task type the pool serves (regular or LLM).
    num_executors:
        Initial executor count.
    max_batch_size:
        Batch capacity per executor (only meaningful for LLM pools; must
        be 1 for regular pools).
    latency_slope:
        Slope of the batch-size → decoding-latency profile (LLM pools).
    speed_factor:
        Relative hardware speed: 2.0 completes work twice as fast as the
        baseline.  The default of 1.0 keeps the arithmetic bit-identical
        to the pre-pool cluster.
    min_executors / max_executors:
        Autoscaler bounds (``max_executors=None`` means unbounded).
    executor_id_prefix:
        Prefix of generated executor ids; defaults to the pool name.  The
        default two-pool cluster passes ``reg`` / ``llm`` so ids match the
        pre-pool cluster exactly.
    role:
        Serving role for prefill/decode disaggregation (LLM pools only):
        ``"prefill"`` pools prefer requests still in their prefill phase,
        ``"decode"`` pools prefer requests past it (routed by the
        ``prefill_decode`` placement policy).  ``None`` (the default) keeps
        the pool role-agnostic and all placement behavior unchanged.
    """

    name: str
    task_type: TaskType
    num_executors: int
    max_batch_size: int = 1
    latency_slope: float = 0.06
    speed_factor: float = 1.0
    min_executors: int = 1
    max_executors: Optional[int] = None
    executor_id_prefix: Optional[str] = None
    role: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        if self.num_executors < 1:
            raise ValueError("num_executors must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.role is not None and self.role not in ("prefill", "decode"):
            raise ValueError(f"role must be 'prefill' or 'decode', got {self.role!r}")
        if self.role is not None and self.task_type is not TaskType.LLM:
            raise ValueError("only LLM pools can carry a prefill/decode role")
        if self.task_type is TaskType.REGULAR and self.max_batch_size != 1:
            raise ValueError("regular pools run one task per executor (max_batch_size=1)")
        if self.latency_slope < 0:
            raise ValueError("latency_slope must be >= 0")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be > 0")
        if self.min_executors < 0:
            raise ValueError("min_executors must be >= 0")
        if self.max_executors is not None and self.max_executors < self.min_executors:
            raise ValueError("max_executors must be >= min_executors")

    @property
    def prefix(self) -> str:
        return self.executor_id_prefix or self.name

    def latency_profile(self) -> DecodingLatencyProfile:
        return DecodingLatencyProfile(slope=self.latency_slope)

    @property
    def slots_per_executor(self) -> int:
        return self.max_batch_size if self.task_type is TaskType.LLM else 1


class ExecutorPool:
    """One named pool of homogeneous executors with incremental accounting.

    ``on_new_executor`` is invoked for every executor the pool creates
    (at construction and on scale-up); the owning cluster uses it to keep
    its flat executor lists and id → index maps in sync.

    Lifecycle of an executor: *active* (assignable) → *draining* (busy,
    accepts no new work) → *retired* (idle, out of capacity).  Idle active
    executors retire directly.  ``free_slots`` always counts assignable
    slots on active executors only.
    """

    def __init__(
        self,
        spec: PoolSpec,
        on_new_executor: Optional[Callable[[AnyExecutor], None]] = None,
    ) -> None:
        self.spec = spec
        self.executors: List[AnyExecutor] = []
        self._on_new_executor = on_new_executor
        self._id_counter = 0
        self._local_index = {}  # executor_id -> index into self.executors
        self._draining: Set[str] = set()
        self._retired: Set[str] = set()
        # Incremental capacity state.
        self._idle_heap: List[int] = []  # regular pools only
        self._free_slots = 0
        for _ in range(spec.num_executors):
            self._create_executor()

    # ------------------------------------------------------------------ #
    # Identity and capacity
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def task_type(self) -> TaskType:
        return self.spec.task_type

    @property
    def free_slots(self) -> int:
        return self._free_slots

    @property
    def num_active_executors(self) -> int:
        """Executors accepting new work (excludes draining and retired)."""
        return len(self.executors) - len(self._draining) - len(self._retired)

    @property
    def capacity(self) -> int:
        """Total task slots across active executors."""
        return self.num_active_executors * self.spec.slots_per_executor

    @property
    def occupancy(self) -> float:
        """Busy fraction of the pool's active slot capacity (0 when empty)."""
        capacity = self.capacity
        if capacity <= 0:
            return 0.0
        return 1.0 - self._free_slots / capacity

    def is_active(self, executor_id: str) -> bool:
        return executor_id not in self._draining and executor_id not in self._retired

    @property
    def has_inactive_executors(self) -> bool:
        return bool(self._draining or self._retired)

    def inactive_executor_ids(self) -> Set[str]:
        """Ids of draining + retired executors (not accepting work)."""
        return set(self._draining) | self._retired

    # ------------------------------------------------------------------ #
    # Executor creation
    # ------------------------------------------------------------------ #
    def _create_executor(self) -> AnyExecutor:
        executor_id = f"{self.spec.prefix}-{self._id_counter}"
        self._id_counter += 1
        executor: AnyExecutor
        if self.spec.task_type is TaskType.REGULAR:
            executor = RegularExecutor(executor_id, speed=self.spec.speed_factor)
        else:
            executor = LLMExecutor(
                executor_id,
                self.spec.max_batch_size,
                self.spec.latency_profile(),
                speed_factor=self.spec.speed_factor,
            )
        index = len(self.executors)
        self.executors.append(executor)
        self._local_index[executor_id] = index
        if self.spec.task_type is TaskType.REGULAR:
            heapq.heappush(self._idle_heap, index)
        self._free_slots += self.spec.slots_per_executor
        if self._on_new_executor is not None:
            self._on_new_executor(executor)
        return executor

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def assign(self, task: Task, time: float) -> Optional[str]:
        """Place ``task`` on this pool's executor of choice (None if full).

        Regular pools pick the lowest-index idle executor; LLM pools pick
        the least-loaded executor (ties broken by executor id) — the same
        rules the pre-pool cluster applied, so the default configuration
        reproduces its traces bit for bit.
        """
        if task.task_type is not self.spec.task_type:
            raise ValueError(
                f"pool {self.name!r} serves {self.spec.task_type.value} tasks, "
                f"got {task.task_type.value}"
            )
        if self.spec.task_type is TaskType.REGULAR:
            while self._idle_heap:
                index = heapq.heappop(self._idle_heap)
                executor = self.executors[index]
                if not executor.is_idle or not self.is_active(executor.executor_id):
                    continue  # stale entry (mutated directly, or no longer active)
                executor.assign(task, time)
                self._free_slots -= 1
                return executor.executor_id
            return None
        candidates = [
            e
            for e in self.executors
            if e.free_slots > 0 and self.is_active(e.executor_id)
        ]
        if not candidates:
            return None
        executor = min(candidates, key=lambda e: (e.batch_size, e.executor_id))
        executor.add_task(task, time)
        self._free_slots -= 1
        return executor.executor_id

    # ------------------------------------------------------------------ #
    # Completion and preemption
    # ------------------------------------------------------------------ #
    def finish_regular_task(self, executor: RegularExecutor, time: float) -> Task:
        task = executor.finish_current(time)
        self._release(executor)
        return task

    def finish_llm_task(
        self, executor: LLMExecutor, task: Task, time: float, eps: float = 1e-6
    ) -> Task:
        executor.finish_task(task, time, eps=eps)
        self._release(executor)
        return task

    def preempt(self, task: Task, time: float, checkpoint: bool = True) -> float:
        """Checkpoint a running task back to PENDING; returns wasted work.

        With ``checkpoint=True`` (the default) progress is conserved and
        the wasted work is 0; without it the task restarts from scratch
        and the discarded progress is returned.
        """
        executor = self.executors[self._local_index[task.executor_id]]
        if self.spec.task_type is TaskType.REGULAR:
            wasted = executor.preempt_current(time, checkpoint=checkpoint)
        else:
            wasted = executor.preempt_task(task, time, checkpoint=checkpoint)
        self._release(executor)
        return wasted

    def _release(self, executor: AnyExecutor) -> None:
        """Return one freed slot to the pool (or complete a drain)."""
        executor_id = executor.executor_id
        if executor_id in self._retired:
            return  # already out of capacity
        if executor_id in self._draining:
            if executor.is_idle:
                self._draining.discard(executor_id)
                self._retired.add(executor_id)
            return  # draining capacity is never returned
        if self.spec.task_type is TaskType.REGULAR:
            heapq.heappush(self._idle_heap, self._local_index[executor_id])
        self._free_slots += 1

    # ------------------------------------------------------------------ #
    # Elasticity
    # ------------------------------------------------------------------ #
    def scale_up(self, count: int) -> int:
        """Add up to ``count`` executors (bounded by ``max_executors``).

        Existing capacity is recycled before any new executor is created:
        draining executors are un-drained first (cancelling the pending
        shrink), then retired executors are reactivated — so a cyclic
        scale-down/scale-up pattern (diurnal autoscaling) reuses the same
        executors instead of growing the executor list without bound.
        Returns the number of executors actually added (recycled ones
        included).
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        added = 0
        for _ in range(count):
            if (
                self.spec.max_executors is not None
                and self.num_active_executors >= self.spec.max_executors
            ):
                break
            if self._undrain_one() is None and self._unretire_one() is None:
                self._create_executor()
            added += 1
        return added

    def _undrain_one(self) -> Optional[AnyExecutor]:
        if not self._draining:
            return None
        executor_id = min(self._draining, key=lambda eid: self._local_index[eid])
        self._draining.discard(executor_id)
        executor = self.executors[self._local_index[executor_id]]
        # Draining executors are always busy (idle ones retire immediately),
        # so a regular executor contributes no free slot yet; an LLM
        # executor re-contributes its open batch slots.
        if self.spec.task_type is TaskType.LLM:
            self._free_slots += executor.free_slots
        return executor

    def _unretire_one(self) -> Optional[AnyExecutor]:
        if not self._retired:
            return None
        executor_id = min(self._retired, key=lambda eid: self._local_index[eid])
        self._retired.discard(executor_id)
        index = self._local_index[executor_id]
        executor = self.executors[index]
        # Retired executors are always idle: restore their full capacity
        # (their stale idle-heap entries were dropped at assign time, so
        # regular pools need the index pushed back).
        if self.spec.task_type is TaskType.REGULAR:
            heapq.heappush(self._idle_heap, index)
        self._free_slots += self.spec.slots_per_executor
        return executor

    def scale_down(self, count: int) -> int:
        """Retire up to ``count`` executors (bounded by ``min_executors``).

        Idle executors retire immediately; busy ones drain and retire when
        their current work completes.  Returns how many retirements were
        initiated.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        initiated = 0
        for _ in range(count):
            if self.num_active_executors <= self.spec.min_executors:
                break
            victim = self._pick_scale_down_victim()
            if victim is None:  # pragma: no cover - defensive
                break
            if victim.is_idle:
                self._retired.add(victim.executor_id)
                self._free_slots -= self.spec.slots_per_executor
            else:
                self._draining.add(victim.executor_id)
                self._free_slots -= victim.free_slots if self.spec.task_type is TaskType.LLM else 0
            initiated += 1
        return initiated

    def _pick_scale_down_victim(self) -> Optional[AnyExecutor]:
        # Prefer idle executors, then the least-loaded busy one; scan from
        # the high-index end so low-index executors (the ones first-fit
        # placement prefers) stay hot.
        fallback: Optional[AnyExecutor] = None
        for executor in reversed(self.executors):
            if not self.is_active(executor.executor_id):
                continue
            if executor.is_idle:
                return executor
            if fallback is None or self._load_of(executor) < self._load_of(fallback):
                fallback = executor
        return fallback

    @staticmethod
    def _load_of(executor: AnyExecutor) -> int:
        return executor.batch_size if isinstance(executor, LLMExecutor) else 1

    # ------------------------------------------------------------------ #
    # Time keeping and accounting
    # ------------------------------------------------------------------ #
    def advance_to(self, time: float) -> None:
        if self.spec.task_type is not TaskType.LLM:
            return
        for executor in self.executors:
            executor.advance_to(time)

    def busy_time(self) -> float:
        return sum(e.busy_time for e in self.executors)

    def utilization(self, horizon: float) -> float:
        """Average busy fraction over ``horizon`` (relative to all executors ever)."""
        if horizon <= 0 or not self.executors:
            return 0.0
        return self.busy_time() / (horizon * len(self.executors))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutorPool({self.name!r}, {self.spec.task_type.value}, "
            f"{self.num_active_executors} active, free={self._free_slots})"
        )
