"""Benchmark regenerating Fig. 8 — testbed-mode comparison (reduced scale)."""

from conftest import BENCH_NUM_JOBS, BENCH_SETTINGS

from repro.experiments import fig8_testbed
from repro.workloads.mixtures import WorkloadType


def test_bench_fig8_testbed(benchmark):
    rows = benchmark.pedantic(
        fig8_testbed.run,
        kwargs={
            "num_jobs": BENCH_NUM_JOBS,
            "workload_types": (WorkloadType.MIXED, WorkloadType.PREDEFINED),
            "scheduler_names": ("fcfs", "fair", "llmsched"),
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2 * 3
    by_key = {(r["workload"], r["scheduler"]): r for r in rows}
    # Paper Fig. 8: the testbed comparison mirrors the simulation — LLMSched
    # below the job-agnostic baselines on every workload.
    for workload in ("mixed", "predefined"):
        assert (
            by_key[(workload, "llmsched")]["average_jct"]
            < by_key[(workload, "fcfs")]["average_jct"]
        )
        assert by_key[(workload, "llmsched")]["avg_overhead_ms"] > 0
