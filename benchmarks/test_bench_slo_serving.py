"""SLO serving benchmark: goodput + TPS/GPU-vs-TPS/User Pareto comparison.

Every registered scheduler plus ``slo_serving`` replays the *identical*
token-model workload draw on the identical fixed cluster, once per traffic
mix (chat / batch / agentic), fanned out through the declarative grid API
(:func:`repro.api.grid.run_grid` over ``scheduler.name`` x
``workload.token_mix``).  The per-mix Pareto tables come from the same
:func:`repro.api.cli.pareto_rows` helper that powers ``python -m repro
pareto``, so the bench file, the CLI and the regression gate all read one
schema — no percentile math is re-derived here.

Asserts the ISSUE 9 acceptance bar: ``slo_serving`` beats **all eight**
incumbents on overall goodput at fixed hardware for at least one traffic
mix, and everything lands in ``BENCH_6.json`` (CI artifact + regression
baseline), including the full ``Result.to_dict()`` payloads of the
``slo_serving`` cells.

Smoke mode (``BENCH_SCALE=smoke``) shrinks the job count and the offline
profiling phase for CI.
"""

import os

from bench_output import record_bench_section, record_results
from conftest import BENCH_SETTINGS
from repro.api import ClusterSection, ExperimentSettings, ScenarioSpec, WorkloadSection
from repro.api.cli import pareto_rows
from repro.api.grid import run_grid
from repro.api.spec import SLOSection
from repro.schedulers.registry import available_schedulers
from repro.simulator.cluster import ClusterConfig
from repro.workloads.serving import DEFAULT_SLO_TARGETS, available_token_mixes

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
NUM_JOBS = 40 if SMOKE else 120
SETTINGS = ExperimentSettings(profile_jobs=30, prior_samples=15) if SMOKE else BENCH_SETTINGS
OUTPUT_FILE = "BENCH_6.json"

#: Deliberately tight: goodput only separates schedulers under contention.
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=8)

INCUMBENTS = available_schedulers(include_llmsched=True)
MIXES = available_token_mixes()


def _base_spec():
    return ScenarioSpec(
        workload=WorkloadSection.closed_loop(
            "mixed",
            num_jobs=NUM_JOBS,
            arrival_rate=0.9,
            seed=7,
            token_mix=MIXES[0],
            token_seed=3,
        ),
        cluster=ClusterSection(config=CLUSTER),
        slo=SLOSection(tiers=DEFAULT_SLO_TARGETS),
        settings=SETTINGS,
    )


def test_bench_slo_serving_pareto():
    schedulers = list(INCUMBENTS) + ["slo_serving"]
    axes = {
        "workload.token_mix": list(MIXES),
        "scheduler.name": schedulers,
    }
    cells = run_grid(_base_spec(), axes)

    by_mix = {mix: [] for mix in MIXES}
    for overrides, result in cells:
        by_mix[overrides["workload.token_mix"]].append((overrides, result))

    mixes_payload = {}
    slo_results = {}
    winning_mixes = []
    for mix in MIXES:
        rows = pareto_rows(by_mix[mix])
        goodput = {row["scheduler"]: row["goodput"] for row in rows}
        # Identical draw per mix: every scheduler serves the same requests.
        requests = {row["num_requests"] for row in rows}
        assert len(requests) == 1, f"{mix}: request counts diverge across schedulers {requests}"
        best_incumbent = max(goodput[name] for name in INCUMBENTS)
        if goodput["slo_serving"] > best_incumbent:
            winning_mixes.append(mix)
        mixes_payload[mix] = {
            "goodput": goodput,
            "best_incumbent_goodput": best_incumbent,
            "pareto": rows,
        }
        for overrides, result in by_mix[mix]:
            if overrides["scheduler.name"] == "slo_serving":
                slo_results[f"slo_serving@{mix}"] = result

    print(f"\nSLO serving goodput ({NUM_JOBS} jobs, {len(MIXES)} mixes, fixed cluster):")
    for mix in MIXES:
        goodput = mixes_payload[mix]["goodput"]
        line = "  ".join(f"{name}={goodput[name]:.3f}" for name in INCUMBENTS)
        tag = "WIN" if mix in winning_mixes else "   "
        print(f"  {mix:>8} {tag} slo_serving={goodput['slo_serving']:.3f} | {line}")

    assert winning_mixes, (
        "slo_serving beat no incumbent lineup on goodput for any traffic mix: "
        + "; ".join(
            f"{mix}: slo={mixes_payload[mix]['goodput']['slo_serving']:.3f} vs "
            f"best={mixes_payload[mix]['best_incumbent_goodput']:.3f}"
            for mix in MIXES
        )
    )

    record_bench_section(
        "slo_serving_pareto",
        {
            "num_jobs": NUM_JOBS,
            "cluster": {
                "num_regular_executors": CLUSTER.num_regular_executors,
                "num_llm_executors": CLUSTER.num_llm_executors,
                "max_batch_size": CLUSTER.max_batch_size,
            },
            "schedulers": schedulers,
            "winning_mixes": winning_mixes,
            "mixes": mixes_payload,
        },
        filename=OUTPUT_FILE,
    )
    record_results("slo_serving_results", slo_results, filename=OUTPUT_FILE)
