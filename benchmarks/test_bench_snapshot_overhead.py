"""Snapshot-overhead benchmark: COW vs deep-copy scheduling snapshots.

The async decision path snapshots the scheduling context on every pass;
PR 4 paid ``copy.deepcopy(jobs)`` — O(active jobs x stages x tasks) — per
snapshot.  This benchmark quantifies the copy-on-write replacement along
the axis that matters (concurrently active jobs, BENCH_2 shows 330 at
peak on open-loop traces) and guards it two ways:

1. **Micro**: per-decision ``snapshot()`` cost at growing active-job
   counts, deep-copy oracle vs COW view on identical engine state.  The
   ISSUE 6 acceptance bar — COW at least **5x** cheaper at >= 300 active
   jobs — is asserted here at every scale.
2. **End-to-end**: one pipelined async run per snapshot policy on the
   identical workload draw; wall-clock throughput is recorded for the
   regression gate and the two runs must agree **bit-identically** on
   every simulated number (the policy may only change wall-clock cost,
   never behavior).

Results land in ``BENCH_5.json`` (CI artifact + regression baseline):
``*_snapshots_per_sec`` / ``*_events_per_sec`` are machine-normalized
throughput floors, ``jct``-tagged keys are exact golden numbers.

Smoke mode (``BENCH_SCALE=smoke``) shrinks job counts and repeats for CI.
"""

import os
import time as wallclock

from bench_output import record_bench_section
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.async_sched import AsyncConfig, AsyncSchedulerBackend
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationConfig, SimulationEngine
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
JOB_COUNTS = (60, 300) if SMOKE else (60, 150, 300, 600)
REPEATS = 3 if SMOKE else 5
COW_BATCH = 20 if SMOKE else 50  # snapshots per timing sample (COW is fast)
E2E_JOBS = 40 if SMOKE else 120
TARGET_SPEEDUP = 5.0
TARGET_AT_JOBS = 300
OUTPUT_FILE = "BENCH_5.json"

APPLICATIONS = default_applications()
#: Tiny on purpose: the cluster must not drain jobs while they accumulate,
#: so the snapshot cost is measured at the advertised active-job count.
MICRO_CLUSTER = ClusterConfig(num_regular_executors=1, num_llm_executors=1, max_batch_size=2)
E2E_CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)


def loaded_context(num_jobs, snapshot_policy):
    """A live context with ~num_jobs concurrently active jobs."""
    spec = WorkloadSpec(
        workload_type=WorkloadType.MIXED,
        num_jobs=num_jobs,
        arrival_rate=50.0,  # everyone arrives long before the tiny cluster drains
        seed=3,
    )
    engine = SimulationEngine(
        generate_workload(spec, applications=APPLICATIONS),
        FcfsScheduler(),
        cluster=Cluster(MICRO_CLUSTER),
        config=SimulationConfig(snapshot_policy=snapshot_policy),
    )
    while engine._next_arrival is not None:
        assert engine.step()
    assert engine.num_active_jobs >= 0.9 * num_jobs
    return engine._build_context(), engine.num_active_jobs


def snapshots_per_sec(context, batch):
    best = 0.0
    for _ in range(REPEATS):
        started = wallclock.perf_counter()
        for _ in range(batch):
            snapshot = context.snapshot()
        elapsed = wallclock.perf_counter() - started
        del snapshot
        best = max(best, batch / elapsed)
    return best


def run_e2e(snapshot_policy):
    spec = WorkloadSpec(
        workload_type=WorkloadType.MIXED, num_jobs=E2E_JOBS, arrival_rate=1.5, seed=11
    )
    engine = SimulationEngine(
        generate_workload(spec, applications=APPLICATIONS),
        FcfsScheduler(),
        cluster=Cluster(E2E_CLUSTER),
        config=SimulationConfig(snapshot_policy=snapshot_policy),
        async_backend=AsyncSchedulerBackend(
            AsyncConfig(latency=0.5, pipelined=True, max_in_flight=4)
        ),
    )
    started = wallclock.perf_counter()
    metrics = engine.run()
    elapsed = wallclock.perf_counter() - started
    return metrics, metrics.num_events / elapsed


def test_bench_snapshot_overhead():
    points = []
    for num_jobs in JOB_COUNTS:
        deep_context, deep_active = loaded_context(num_jobs, "deepcopy")
        cow_context, cow_active = loaded_context(num_jobs, "cow")
        assert deep_active == cow_active  # identical deterministic state
        deep_rate = snapshots_per_sec(deep_context, batch=1)
        cow_rate = snapshots_per_sec(cow_context, batch=COW_BATCH)
        points.append(
            {
                "active_jobs": deep_active,
                "deepcopy_snapshots_per_sec": deep_rate,
                "cow_snapshots_per_sec": cow_rate,
                "cow_speedup": cow_rate / deep_rate,
            }
        )

    print(f"\nsnapshot cost vs active jobs (policies: deepcopy vs cow, {REPEATS} repeats):")
    for point in points:
        print(
            f"  {point['active_jobs']:>5} jobs   "
            f"deepcopy {1e6 / point['deepcopy_snapshots_per_sec']:>10.0f} us   "
            f"cow {1e6 / point['cow_snapshots_per_sec']:>8.1f} us   "
            f"x{point['cow_speedup']:.0f}"
        )

    # ISSUE 6 acceptance: >= 5x cheaper per decision at >= 300 active jobs.
    at_scale = [p for p in points if p["active_jobs"] >= 0.9 * TARGET_AT_JOBS]
    assert at_scale, f"no measurement at >= {TARGET_AT_JOBS} active jobs"
    for point in at_scale:
        assert point["cow_speedup"] >= TARGET_SPEEDUP, (
            f"COW snapshot only {point['cow_speedup']:.1f}x faster than deep copy "
            f"at {point['active_jobs']} active jobs (need >= {TARGET_SPEEDUP}x)"
        )

    # End-to-end: the policy must be invisible in simulated output...
    cow_metrics, cow_events_per_sec = run_e2e("cow")
    deep_metrics, deep_events_per_sec = run_e2e("deepcopy")
    assert cow_metrics.job_completion_times == deep_metrics.job_completion_times
    assert cow_metrics.makespan == deep_metrics.makespan
    assert cow_metrics.num_preemptions == deep_metrics.num_preemptions
    print(
        f"  pipelined e2e ({E2E_JOBS} jobs): cow {cow_events_per_sec:,.0f} events/s, "
        f"deepcopy {deep_events_per_sec:,.0f} events/s, identical traces"
    )

    record_bench_section(
        "snapshot_overhead",
        {
            "job_counts": list(JOB_COUNTS),
            "points": {str(p["active_jobs"]): p for p in points},
            "e2e": {
                "num_jobs": E2E_JOBS,
                "cow_events_per_sec": cow_events_per_sec,
                "deepcopy_events_per_sec": deep_events_per_sec,
                "average_jct": cow_metrics.average_jct,
                "jct_identical_across_policies": True,
                "makespan": cow_metrics.makespan,
            },
        },
        filename=OUTPUT_FILE,
    )
