#!/usr/bin/env python
"""Benchmark regression gate: compare fresh BENCH_*.json against baselines.

CI regenerates the smoke-scale benchmark results and this script fails the
build when they regress against the committed snapshots in
``benchmarks/baselines/``:

* **Golden numbers** (simulated JCTs, makespans, migration counts,
  degradation ratios — anything the deterministic simulation produces) must
  match the baseline **exactly**: the simulator is seeded, so any drift is
  a real behavior change.  Intentional changes regenerate the baselines,
  exactly like the golden traces (run the smoke benchmarks and copy the
  fresh ``BENCH_*.json`` over ``benchmarks/baselines/``, updating
  ``calibration.json`` with the printed machine speed).
* **Throughput numbers** (``*_per_sec``) may not drop below
  ``--min-throughput-ratio`` (default 0.75, i.e. a >25% drop fails) after
  normalizing for machine speed: the baseline directory carries a
  ``calibration.json`` with the ops/sec of a fixed pure-Python loop
  measured when the baseline was recorded, and the same loop is measured
  on the current machine, so a slow CI runner does not masquerade as a
  code regression (and a fast one does not hide it).
* **Same-machine ratios** (``speedup_vs_seed``, ``scaling_vs_1_shard``)
  compare two runs on the same host, so they are gated by the ratio alone,
  without machine normalization.

Baselines resolve through the content-addressed run store when
``benchmarks/baselines/store/`` exists (the committed records are the
source of truth; the BENCH-shaped views are reconstructed via
``repro.store.report``), falling back to the legacy flat
``benchmarks/baselines/BENCH_*.json`` snapshots otherwise — so the gate
works against either layout, and a tampered store record surfaces as
golden drift.

Exit code 0 = no regression; 1 = regression (every violation is printed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: Path components whose leaves are deterministic simulation output and
#: must match the baseline exactly.
GOLDEN_MARKERS = (
    "jct",
    "makespan",
    "degradation",
    "migrated_work",
    "num_migrations",
    "monotone",
    # Serving metrics (BENCH_6): seeded token streams make goodput, latency
    # percentiles and token-normalized throughput exactly reproducible.
    "goodput",
    "ttft",
    "tpot",
    "itl",
    "tps_per",
    "token",
    "winning",
)

#: Leaf keys that are same-machine ratios (gated, but not normalized).
RATIO_KEYS = ("speedup_vs_seed", "scaling_vs_1_shard")

#: Leaf keys ignored entirely (wall-clock noise / metadata).  Result.to_dict
#: payloads (bench_output.record_results) carry wall_clock_sec and the spec's
#: schema/seed bookkeeping; none of those are simulation output.
IGNORED_KEYS = ("elapsed_sec", "scale", "wall_clock_sec", "seed", "schema_version")

CALIBRATION_FILE = "calibration.json"
CALIBRATION_LOOP = 2_000_000


def load_baselines(
    baseline_dir: str, store_dir: Optional[str] = None
) -> Tuple[Dict[str, Dict], str]:
    """Baseline payloads keyed by BENCH filename, plus which view served them.

    The run store (``store_dir``, default ``<baseline_dir>/store``) wins when
    it exists: the BENCH-shaped views are reconstructed from its records, so
    the committed provenance-stamped store is the single source of golden
    truth.  Without one, the legacy flat snapshots are read directly.
    """
    store_dir = store_dir or os.path.join(baseline_dir, "store")
    if os.path.isdir(os.path.join(store_dir, "records")):
        # CI invokes this script without PYTHONPATH; make repro importable.
        src_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        if src_root not in sys.path:
            sys.path.insert(0, src_root)
        from repro.store.report import bench_artifacts
        from repro.store.store import RunStore

        return dict(bench_artifacts(RunStore(store_dir))), f"store:{store_dir}"

    flat: Dict[str, Dict] = {}
    for filename in sorted(os.listdir(baseline_dir)):
        if filename.startswith("BENCH_") and filename.endswith(".json"):
            with open(os.path.join(baseline_dir, filename)) as handle:
                flat[filename] = json.load(handle)
    return flat, f"flat:{baseline_dir}"


def measure_machine_speed(repeats: int = 3) -> float:
    """Ops/sec of a fixed pure-Python loop (the benchmarks' cost model is
    dominated by pure-Python event processing, so this is the right unit)."""
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        acc = 0
        for i in range(CALIBRATION_LOOP):
            acc += i % 7
        elapsed = time.perf_counter() - started
        best = max(best, CALIBRATION_LOOP / elapsed)
    return best


def walk_leaves(payload: object, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], object]]:
    if isinstance(payload, dict):
        for key in sorted(payload):
            yield from walk_leaves(payload[key], path + (str(key),))
    else:
        yield path, payload


def classify(path: Tuple[str, ...]) -> str:
    leaf = path[-1]
    if leaf in IGNORED_KEYS:
        return "ignore"
    if leaf in RATIO_KEYS:
        return "ratio"
    if leaf.endswith("_per_sec"):
        return "throughput"
    if any(marker in component for component in path for marker in GOLDEN_MARKERS):
        return "golden"
    return "ignore"


def check_file(
    name: str,
    baseline: Dict,
    current: Dict,
    min_ratio: float,
    speed_factor: float,
) -> List[str]:
    failures: List[str] = []
    for section, base_payload in baseline.items():
        if section not in current:
            failures.append(f"{name}: section {section!r} missing from current results")
            continue
        cur_payload = current[section]
        base_scale = base_payload.get("scale") if isinstance(base_payload, dict) else None
        cur_scale = cur_payload.get("scale") if isinstance(cur_payload, dict) else None
        if base_scale != cur_scale:
            failures.append(
                f"{name}/{section}: scale mismatch (baseline {base_scale!r} vs "
                f"current {cur_scale!r}) — regenerate at matching BENCH_SCALE"
            )
            continue
        cur_leaves = dict(walk_leaves(cur_payload))
        for path, base_value in walk_leaves(base_payload):
            kind = classify(path)
            if kind == "ignore":
                continue
            dotted = f"{name}/{section}/" + "/".join(path)
            if path not in cur_leaves:
                failures.append(f"{dotted}: missing from current results")
                continue
            cur_value = cur_leaves[path]
            if kind == "golden":
                if cur_value != base_value:
                    failures.append(
                        f"{dotted}: golden drift — baseline {base_value!r}, "
                        f"current {cur_value!r} (exact match required)"
                    )
            elif kind == "ratio":
                floor = base_value * min_ratio
                if cur_value < floor:
                    failures.append(
                        f"{dotted}: ratio regression — baseline {base_value:.3f}, "
                        f"current {cur_value:.3f} (floor {floor:.3f})"
                    )
            elif kind == "throughput":
                floor = base_value * speed_factor * min_ratio
                if cur_value < floor:
                    failures.append(
                        f"{dotted}: throughput regression — baseline {base_value:.1f}, "
                        f"current {cur_value:.1f} (machine-adjusted floor {floor:.1f})"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines"),
        help="directory of committed BENCH_*.json snapshots (+ calibration.json)",
    )
    parser.add_argument(
        "--current-dir",
        default=os.getcwd(),
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline-store",
        default=None,
        help="run-store directory serving the baselines "
        "(default: <baseline-dir>/store when it exists; flat files otherwise)",
    )
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.75,
        help="fail when throughput drops below this fraction of baseline (default 0.75)",
    )
    parser.add_argument(
        "--print-calibration",
        action="store_true",
        help="measure and print this machine's calibration ops/sec, then exit",
    )
    args = parser.parse_args(argv)

    if args.print_calibration:
        print(f"{measure_machine_speed():.0f}")
        return 0

    calibration_path = os.path.join(args.baseline_dir, CALIBRATION_FILE)
    with open(calibration_path) as handle:
        baseline_speed = float(json.load(handle)["ops_per_sec"])
    current_speed = measure_machine_speed()
    speed_factor = current_speed / baseline_speed
    print(
        f"machine calibration: baseline {baseline_speed:.0f} ops/s, "
        f"current {current_speed:.0f} ops/s (factor {speed_factor:.2f})"
    )

    baselines, baseline_view = load_baselines(args.baseline_dir, args.baseline_store)
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}", file=sys.stderr)
        return 1
    print(f"baselines: {len(baselines)} file(s) via {baseline_view}")

    failures: List[str] = []
    for filename, baseline in sorted(baselines.items()):
        current_path = os.path.join(args.current_dir, filename)
        if not os.path.exists(current_path):
            failures.append(f"{filename}: not generated (expected at {current_path})")
            continue
        with open(current_path) as handle:
            current = json.load(handle)
        file_failures = check_file(
            filename, baseline, current, args.min_throughput_ratio, speed_factor
        )
        status = "FAIL" if file_failures else "ok"
        print(f"  {filename}: {len(list(walk_leaves(baseline)))} leaves checked — {status}")
        failures.extend(file_failures)

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
