"""Engine-throughput benchmark: fast event core vs the seed engine.

Measures simulated events per second on a closed-loop 500-job workload and
asserts the indexed fast path is at least 3x faster than the seed
implementation (:class:`ReferenceSimulationEngine` driven with the seed
cost model, i.e. per-job structure caches disabled).  Also exercises the
open-loop path: a 1000-job Poisson stream must run to completion through
the generator API without the workload ever being materialized.

Smoke mode (``BENCH_SCALE=smoke``) shrinks the workloads for CI; the
speedup assertion is relaxed there because tiny runs are noise-dominated.
"""

import os
import time

import pytest

from bench_output import record_bench_section
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.reference import ReferenceSimulationEngine
from repro.workloads.arrivals import PoissonProcess, open_loop_jobs
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, generate_workload

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
CLOSED_LOOP_JOBS = 100 if SMOKE else 500
OPEN_LOOP_JOBS = 200 if SMOKE else 1000
MIN_SPEEDUP = 1.5 if SMOKE else 3.0

CLUSTER = dict(num_regular_executors=16, num_llm_executors=6, max_batch_size=8)


def closed_loop_workload():
    spec = WorkloadSpec(
        workload_type=WorkloadType.MIXED,
        num_jobs=CLOSED_LOOP_JOBS,
        arrival_rate=2.0,
        seed=11,
    )
    return generate_workload(spec)


def timed_run(engine_cls, jobs, structure_caching=True):
    for job in jobs:
        job.set_structure_caching(structure_caching)
    engine = engine_cls(jobs, FcfsScheduler(), cluster=Cluster(ClusterConfig(**CLUSTER)))
    started = time.perf_counter()
    metrics = engine.run()
    elapsed = time.perf_counter() - started
    return metrics, elapsed


def test_bench_engine_throughput_vs_seed():
    # Seed cost model: reference event loop + uncached per-job structure.
    ref_metrics, ref_elapsed = timed_run(
        ReferenceSimulationEngine, closed_loop_workload(), structure_caching=False
    )
    fast_metrics, fast_elapsed = timed_run(SimulationEngine, closed_loop_workload())

    # Identical behavior is a precondition for a meaningful speedup claim.
    assert fast_metrics.job_completion_times == ref_metrics.job_completion_times
    assert fast_metrics.makespan == ref_metrics.makespan

    speedup = ref_elapsed / fast_elapsed
    fast_events_per_sec = fast_metrics.num_events / fast_elapsed
    ref_events_per_sec = ref_metrics.num_events / ref_elapsed
    print(
        f"\nengine throughput ({CLOSED_LOOP_JOBS} jobs closed-loop): "
        f"seed {ref_events_per_sec:,.0f} events/s ({ref_elapsed:.2f}s), "
        f"fast {fast_events_per_sec:,.0f} events/s ({fast_elapsed:.2f}s), "
        f"speedup {speedup:.2f}x"
    )
    record_bench_section(
        "engine_throughput",
        {
            "closed_loop_jobs": CLOSED_LOOP_JOBS,
            "seed_events_per_sec": ref_events_per_sec,
            "fast_events_per_sec": fast_events_per_sec,
            "seed_elapsed_sec": ref_elapsed,
            "fast_elapsed_sec": fast_elapsed,
            "speedup_vs_seed": speedup,
            "min_required_speedup": MIN_SPEEDUP,
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine is only {speedup:.2f}x faster than the seed engine "
        f"(required: {MIN_SPEEDUP}x)"
    )


def test_bench_open_loop_stream_completes_without_materialization():
    stream = open_loop_jobs(
        PoissonProcess(rate=3.0, seed=5), seed=5, max_jobs=OPEN_LOOP_JOBS
    )
    cluster = Cluster(
        ClusterConfig(num_regular_executors=24, num_llm_executors=8, max_batch_size=8)
    )
    engine = SimulationEngine(stream, FcfsScheduler(), cluster=cluster, workload_name="open_loop")

    peak_active = 0
    original_admit = engine._admit_arrivals

    def tracking_admit(now):
        nonlocal peak_active
        original_admit(now)
        peak_active = max(peak_active, engine.num_active_jobs)

    engine._admit_arrivals = tracking_admit

    started = time.perf_counter()
    metrics = engine.run()
    elapsed = time.perf_counter() - started

    print(
        f"\nopen-loop Poisson stream: {OPEN_LOOP_JOBS} jobs in {elapsed:.2f}s wall "
        f"({metrics.num_events / elapsed:,.0f} events/s), peak active jobs {peak_active}"
    )
    record_bench_section(
        "open_loop_stream",
        {
            "jobs": OPEN_LOOP_JOBS,
            "elapsed_sec": elapsed,
            "events_per_sec": metrics.num_events / elapsed,
            "peak_active_jobs": peak_active,
        },
    )
    assert len(metrics.job_completion_times) == OPEN_LOOP_JOBS
    assert engine.num_active_jobs == 0
    # The engine only ever held the in-flight jobs, not the whole stream.
    assert peak_active < OPEN_LOOP_JOBS / 2
