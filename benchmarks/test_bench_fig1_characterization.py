"""Benchmark regenerating Fig. 1 — workload characterisation."""

from repro.experiments import fig1_characterization


def test_bench_fig1_characterization(benchmark):
    results = benchmark.pedantic(
        fig1_characterization.run, kwargs={"n_jobs": 300, "seed": 0}, rounds=1, iterations=1
    )
    fig1a = results["fig1a_job_duration"]
    # Paper Fig. 1a: widely spread job durations (roughly 10s to 300s).
    assert fig1a["max"] > 4 * fig1a["min"]
    assert abs(sum(fig1a["probability"]) - 1.0) < 1e-6
    # Paper Fig. 1b: chain lengths between 3 and 15.
    fig1b = results["fig1b_chain_length"]
    assert fig1b["min"] >= 3
    assert fig1b["max"] <= 15
    # Paper Fig. 1c: 1 to 8 generated stages.
    fig1c = results["fig1c_generated_stages"]
    assert fig1c["min"] >= 1
    assert fig1c["max"] <= 8
