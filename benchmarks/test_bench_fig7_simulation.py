"""Benchmark regenerating Fig. 7 — simulation comparison across schedulers.

Reduced scale (fewer jobs, two job counts, three representative baselines)
so the whole benchmark suite stays fast; the full sweep is
``python -m repro.experiments.fig7_simulation``.
"""

from conftest import BENCH_SETTINGS

from repro.experiments import fig7_simulation
from repro.workloads.mixtures import WorkloadType


def test_bench_fig7_simulation(benchmark):
    rows = benchmark.pedantic(
        fig7_simulation.run,
        kwargs={
            "num_jobs_values": (80, 160),
            "workload_types": (WorkloadType.MIXED,),
            "scheduler_names": ("fcfs", "sjf", "llmsched"),
            "seed": 0,
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2 * 3
    by_key = {(r["num_jobs"], r["scheduler"]): r["average_jct"] for r in rows}
    # Paper Fig. 7: LLMSched beats the job-agnostic FCFS baseline at every
    # job count, and the average JCT grows with the number of jobs.
    for num_jobs in (80, 160):
        assert by_key[(num_jobs, "llmsched")] < by_key[(num_jobs, "fcfs")]
    assert by_key[(160, "fcfs")] > by_key[(80, "fcfs")]
