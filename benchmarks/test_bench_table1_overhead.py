"""Benchmark regenerating Table I — scheduling overhead per invocation."""

from conftest import BENCH_NUM_JOBS, BENCH_SETTINGS

from repro.experiments import table1_overhead
from repro.workloads.mixtures import WorkloadType


def test_bench_table1_overhead(benchmark):
    rows = benchmark.pedantic(
        table1_overhead.run,
        kwargs={
            "num_jobs": BENCH_NUM_JOBS,
            "workload_types": (WorkloadType.MIXED,),
            "scheduler_names": ("fcfs", "sjf", "decima", "llmsched"),
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    overhead = {row["scheduler"]: row["mixed"] for row in rows}
    # Paper Table I: simple heuristics are fastest, LLMSched stays in the
    # low-millisecond range (its overhead includes BN inference + entropy).
    assert overhead["fcfs"] < overhead["llmsched"]
    assert overhead["llmsched"] < 20.0
    assert all(value >= 0.0 for value in overhead.values())
