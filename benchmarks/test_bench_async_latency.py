"""Decision-latency degradation benchmark: JCT vs charged decision latency.

Every registered scheduler replays the *identical* workload draw on the
identical (deliberately congested) cluster behind an
:class:`~repro.simulator.async_sched.AsyncSchedulerBackend`, sweeping the
charged decision latency.  The curve quantifies how much of each
scheduler's paper-reported advantage survives realistic control-plane
delay; latency 0 in non-pipelined mode is asserted **bit-identical** to
the synchronous engine, so the curves are anchored at today's golden
numbers.  Asserts a monotone (non-decreasing, strictly growing overall)
degradation curve for at least 3 schedulers — the ISSUE 4 acceptance bar
— and dumps everything into ``BENCH_4.json`` (CI artifact + regression
baseline).

Smoke mode (``BENCH_SCALE=smoke``) shrinks the job count for CI.
"""

import os

from bench_output import record_bench_section
from conftest import BENCH_SETTINGS
from repro.experiments.runner import build_priors, build_profiler, run_single
from repro.schedulers.registry import available_schedulers
from repro.simulator.async_sched import AsyncConfig
from repro.simulator.cluster import ClusterConfig
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
NUM_JOBS = 30 if SMOKE else 80
LATENCIES = (0.0, 1.0, 2.0, 5.0)
MIN_MONOTONE_SCHEDULERS = 3
OUTPUT_FILE = "BENCH_4.json"

SPEC = WorkloadSpec(
    workload_type=WorkloadType.MIXED, num_jobs=NUM_JOBS, arrival_rate=1.2, seed=7
)
#: Small on purpose: decision latency only bites under contention.
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)

SCHEDULERS = available_schedulers(include_llmsched=True)


def is_monotone_degradation(jcts):
    """Non-decreasing along the latency grid and strictly worse overall."""
    eps = 1e-9
    return all(b >= a - eps for a, b in zip(jcts, jcts[1:])) and jcts[-1] > jcts[0]


def test_bench_async_latency_degradation():
    applications = default_applications()
    priors = build_priors(applications, BENCH_SETTINGS)
    profiler = build_profiler(applications, BENCH_SETTINGS)

    curves = {}
    monotone = []
    for name in SCHEDULERS:
        sync = run_single(
            name,
            SPEC,
            applications=applications,
            settings=BENCH_SETTINGS,
            priors=priors,
            profiler=profiler,
            cluster_config=CLUSTER,
        )
        jcts = []
        for latency in LATENCIES:
            metrics = run_single(
                name,
                SPEC,
                applications=applications,
                settings=BENCH_SETTINGS,
                priors=priors,
                profiler=profiler,
                cluster_config=CLUSTER,
                async_config=AsyncConfig(latency=latency),
            )
            if latency == 0.0:
                # The async backend at latency 0 must be the synchronous
                # engine bit for bit, for every scheduler.
                assert metrics.job_completion_times == sync.job_completion_times, name
                assert metrics.makespan == sync.makespan, name
            jcts.append(metrics.average_jct)
        curves[name] = jcts
        if is_monotone_degradation(jcts):
            monotone.append(name)

    print(f"\nasync decision-latency degradation ({NUM_JOBS} jobs, latencies {LATENCIES}):")
    for name, jcts in curves.items():
        curve = "  ".join(f"{j:8.2f}" for j in jcts)
        tag = "monotone" if name in monotone else "        "
        print(f"  {name:>12}  {curve}   x{jcts[-1] / jcts[0]:.2f}  {tag}")

    assert len(monotone) >= MIN_MONOTONE_SCHEDULERS, (
        f"only {monotone} degrade monotonically with decision latency "
        f"(need >= {MIN_MONOTONE_SCHEDULERS})"
    )

    record_bench_section(
        "async_latency_degradation",
        {
            "num_jobs": NUM_JOBS,
            "latencies": list(LATENCIES),
            "average_jct_by_scheduler": {
                name: dict(zip(map(str, LATENCIES), jcts)) for name, jcts in curves.items()
            },
            "degradation_at_max_latency": {
                name: jcts[-1] / jcts[0] for name, jcts in curves.items()
            },
            "monotone_schedulers": monotone,
        },
        filename=OUTPUT_FILE,
    )
