"""Decision-latency degradation benchmark: JCT vs charged decision latency.

Every registered scheduler replays the *identical* workload draw on the
identical (deliberately congested) cluster behind an
:class:`~repro.simulator.async_sched.AsyncSchedulerBackend`, sweeping the
charged decision latency through the declarative API
(:func:`repro.api.run` with an ``async`` section).  The curve quantifies
how much of each scheduler's paper-reported advantage survives realistic
control-plane delay; latency 0 in non-pipelined mode is asserted
**bit-identical** to the synchronous engine, so the curves are anchored at
today's golden numbers.  Asserts a monotone (non-decreasing, strictly
growing overall) degradation curve for at least 3 schedulers — the ISSUE 4
acceptance bar — and dumps everything into ``BENCH_4.json`` (CI artifact +
regression baseline), including per-run ``Result.to_dict()`` payloads so
the file shares one schema with the CLI and the regression gate.

Smoke mode (``BENCH_SCALE=smoke``) shrinks the job count for CI.
"""

import os

from bench_output import record_results
from conftest import BENCH_SETTINGS
from repro.api import (
    AsyncSection,
    ClusterSection,
    ScenarioSpec,
    SchedulerSection,
    WorkloadSection,
    build_priors,
    build_profiler,
    run,
)
from repro.schedulers.registry import available_schedulers
from repro.simulator.cluster import ClusterConfig
from repro.workloads.mixtures import default_applications

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
NUM_JOBS = 30 if SMOKE else 80
LATENCIES = (0.0, 1.0, 2.0, 5.0)
MIN_MONOTONE_SCHEDULERS = 3
OUTPUT_FILE = "BENCH_4.json"

WORKLOAD = WorkloadSection.closed_loop("mixed", num_jobs=NUM_JOBS, arrival_rate=1.2, seed=7)
#: Small on purpose: decision latency only bites under contention.
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)

SCHEDULERS = available_schedulers(include_llmsched=True)


def is_monotone_degradation(jcts):
    """Non-decreasing along the latency grid and strictly worse overall."""
    eps = 1e-9
    return all(b >= a - eps for a, b in zip(jcts, jcts[1:])) and jcts[-1] > jcts[0]


def test_bench_async_latency_degradation():
    applications = default_applications()
    priors = build_priors(applications, BENCH_SETTINGS)
    profiler = build_profiler(applications, BENCH_SETTINGS)

    def scenario(name, latency=None):
        return ScenarioSpec(
            scheduler=SchedulerSection(name),
            workload=WORKLOAD,
            cluster=ClusterSection(config=CLUSTER),
            async_=AsyncSection(latency=latency) if latency is not None else None,
            settings=BENCH_SETTINGS,
        )

    curves = {}
    monotone = []
    results = {}
    for name in SCHEDULERS:
        sync = run(
            scenario(name), applications=applications, priors=priors, profiler=profiler
        ).metrics
        jcts = []
        for latency in LATENCIES:
            result = run(
                scenario(name, latency=latency),
                applications=applications,
                priors=priors,
                profiler=profiler,
            )
            metrics = result.metrics
            if latency == 0.0:
                # The async backend at latency 0 must be the synchronous
                # engine bit for bit, for every scheduler.
                assert metrics.job_completion_times == sync.job_completion_times, name
                assert metrics.makespan == sync.makespan, name
            jcts.append(metrics.average_jct)
            results[f"{name}@{latency:g}s"] = result
        curves[name] = jcts
        if is_monotone_degradation(jcts):
            monotone.append(name)

    print(f"\nasync decision-latency degradation ({NUM_JOBS} jobs, latencies {LATENCIES}):")
    for name, jcts in curves.items():
        curve = "  ".join(f"{j:8.2f}" for j in jcts)
        tag = "monotone" if name in monotone else "        "
        print(f"  {name:>12}  {curve}   x{jcts[-1] / jcts[0]:.2f}  {tag}")

    assert len(monotone) >= MIN_MONOTONE_SCHEDULERS, (
        f"only {monotone} degrade monotonically with decision latency "
        f"(need >= {MIN_MONOTONE_SCHEDULERS})"
    )

    record_results(
        "async_latency_degradation",
        results,
        filename=OUTPUT_FILE,
        extra={
            "num_jobs": NUM_JOBS,
            "latencies": list(LATENCIES),
            "average_jct_by_scheduler": {
                name: dict(zip(map(str, LATENCIES), jcts)) for name, jcts in curves.items()
            },
            "degradation_at_max_latency": {
                name: jcts[-1] / jcts[0] for name, jcts in curves.items()
            },
            "monotone_schedulers": monotone,
        },
    )
