"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at a reduced
scale so the whole suite completes in minutes; the paper-scale runs are
available through each experiment module's CLI (see EXPERIMENTS.md).
"""

import os

import pytest

from repro.core.llmsched import LLMSchedConfig
from repro.experiments.runner import ExperimentSettings


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as ``bench`` so the default test
    run can deselect it with ``-m "not bench"`` (markers in pytest.ini).

    The hook sees the whole session's items, so filter to this directory.
    """
    for item in items:
        path = os.path.abspath(str(item.fspath))
        if path.startswith(_BENCH_DIR + os.sep):
            item.add_marker(pytest.mark.bench)


#: Reduced-scale settings shared by all benchmark runs: fewer profiling jobs
#: keeps the offline phase fast without changing the comparison's shape.
BENCH_SETTINGS = ExperimentSettings(profile_jobs=80, prior_samples=50, llmsched=LLMSchedConfig())

#: Job counts used by the benchmark variants of the paper-scale experiments.
BENCH_NUM_JOBS = 100


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    return BENCH_SETTINGS
