"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at a reduced
scale so the whole suite completes in minutes; the paper-scale runs are
available through each experiment module's CLI (see EXPERIMENTS.md).
"""

import pytest

from repro.core.llmsched import LLMSchedConfig
from repro.experiments.runner import ExperimentSettings


#: Reduced-scale settings shared by all benchmark runs: fewer profiling jobs
#: keeps the offline phase fast without changing the comparison's shape.
BENCH_SETTINGS = ExperimentSettings(profile_jobs=80, prior_samples=50, llmsched=LLMSchedConfig())

#: Job counts used by the benchmark variants of the paper-scale experiments.
BENCH_NUM_JOBS = 100


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    return BENCH_SETTINGS
