"""Benchmark regenerating Fig. 5 — inter-stage correlation heatmaps."""

from repro.experiments import fig5_heatmap


def test_bench_fig5_heatmap(benchmark):
    matrices = benchmark.pedantic(
        fig5_heatmap.run, kwargs={"n_jobs": 300, "seed": 0}, rounds=1, iterations=1
    )
    sorting = matrices["sequence_sorting"]
    codegen = matrices["code_generation"]
    # Paper Fig. 5a: the split stage correlates strongly with the sort stages.
    assert sorting["ss_split"]["ss_sort_1"] > 0.4
    assert sorting["ss_split"]["ss_merge"] > 0.4
    # Paper Fig. 5b: stages of the same repair iteration correlate strongly
    # (a reflex stage implies the following code-gen and exec stages run).
    assert codegen["cg_reflex_1"]["cg_codegen_1"] > 0.4
    # Diagonals are exactly 1.
    assert sorting["ss_split"]["ss_split"] == 1.0
