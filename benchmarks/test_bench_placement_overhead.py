"""Placement-layer overhead benchmark.

PR 1 inlined greedy placement in the engine; PR 2 routes every placement
through a pluggable policy and the pool abstraction.  This benchmark
quantifies what that indirection costs on the identical workload:

* ``default`` — the refactored engine with the default greedy policy on a
  two-pool cluster (what every pre-existing experiment now runs), and
* ``best_fit`` / multi-pool variants for the policy dispatch cost on a
  heterogeneous four-pool layout.

Results are printed with ``-s`` and recorded in ``BENCH_2.json``
(``placement_overhead`` section) so the cost is tracked across PRs; the
hard ≥3x-vs-seed floor lives in ``test_bench_engine_throughput.py``.
"""

import os
import time

from bench_output import record_bench_section
from repro.dag.task import TaskType
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.placement import create_placement_policy
from repro.simulator.pool import PoolSpec
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, generate_workload

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
NUM_JOBS = 80 if SMOKE else 400

TWO_POOL = ClusterConfig(num_regular_executors=16, num_llm_executors=6, max_batch_size=8)
FOUR_POOL = (
    PoolSpec("cpu-a", TaskType.REGULAR, 8),
    PoolSpec("cpu-b", TaskType.REGULAR, 8),
    PoolSpec("gpu-a", TaskType.LLM, 3, max_batch_size=8),
    PoolSpec("gpu-b", TaskType.LLM, 3, max_batch_size=8),
)


def workload():
    spec = WorkloadSpec(
        workload_type=WorkloadType.MIXED, num_jobs=NUM_JOBS, arrival_rate=2.0, seed=11
    )
    return generate_workload(spec)


def timed(cluster, placement):
    engine = SimulationEngine(workload(), FcfsScheduler(), cluster=cluster, placement=placement)
    started = time.perf_counter()
    metrics = engine.run()
    elapsed = time.perf_counter() - started
    return metrics, elapsed


def test_bench_placement_layer_overhead():
    results = {}
    metrics_default, elapsed_default = timed(Cluster(TWO_POOL), None)
    results["default_greedy_two_pool"] = {
        "elapsed_sec": elapsed_default,
        "events_per_sec": metrics_default.num_events / elapsed_default,
    }
    for name in ("greedy", "best_fit"):
        metrics, elapsed = timed(Cluster(pools=FOUR_POOL), create_placement_policy(name))
        results[f"{name}_four_pool"] = {
            "elapsed_sec": elapsed,
            "events_per_sec": metrics.num_events / elapsed,
            "jobs_completed": len(metrics.job_completion_times),
        }
        assert len(metrics.job_completion_times) == NUM_JOBS

    print(f"\nplacement-layer overhead ({NUM_JOBS} jobs closed-loop):")
    for name, row in results.items():
        print(f"  {name}: {row['events_per_sec']:,.0f} events/s ({row['elapsed_sec']:.2f}s)")
    record_bench_section("placement_overhead", {"num_jobs": NUM_JOBS, **results})

    # The policy indirection must stay in the noise: a four-pool cluster
    # with explicit policies may not be drastically slower than the default
    # two-pool fast path on the same workload.  Smoke runs (~70ms) are too
    # noise-dominated for a wall-clock ratio, so the gate is full-scale only.
    if not SMOKE:
        slowest = max(row["elapsed_sec"] for row in results.values())
        assert slowest <= elapsed_default * 3.0, (
            f"placement layer costs {slowest / elapsed_default:.1f}x the default path"
        )
