"""Benchmark regenerating Fig. 10 — ablation study."""

from conftest import BENCH_NUM_JOBS, BENCH_SETTINGS

from repro.experiments import fig10_ablation
from repro.workloads.mixtures import WorkloadType


def test_bench_fig10_ablation(benchmark):
    rows = benchmark.pedantic(
        fig10_ablation.run,
        kwargs={
            "num_jobs": BENCH_NUM_JOBS,
            "workload_types": (WorkloadType.MIXED, WorkloadType.PREDEFINED),
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2
    for row in rows:
        assert row["llmsched_avg_jct"] > 0
        # Paper Fig. 10: removing the Bayesian network hurts — the historical
        # mean estimator cannot track per-job deviations.
        assert row["wo_bn_norm"] > 0.9
        assert row["wo_uncertainty_norm"] > 0.0
