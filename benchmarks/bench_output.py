"""Machine-readable benchmark results: BENCH_<PR>.json.

Benchmarks print human-readable evidence with ``-s``; this module
additionally persists the numbers so performance is tracked across PRs.
Each benchmark records a named section; sections accumulate in one JSON
file (default ``BENCH_2.json`` in the repo root, override with the
``BENCH_OUTPUT`` environment variable).  CI uploads the file as a workflow
artifact and the regression gate (``benchmarks/check_regression.py``)
compares smoke-scale regenerations against ``benchmarks/baselines/``.

Benchmarks that run through :func:`repro.api.run` should persist
:class:`repro.api.Result` objects via :func:`record_results` instead of
hand-picking metric fields: ``Result.to_dict()`` is the one schema the
CLI ``--output``, the BENCH files and the regression gate all consume.

Every section additionally lands in the content-addressed run store
(:mod:`repro.store`) when a store root is given — via the ``store=``
argument or the ``BENCH_STORE`` environment variable — so BENCH artifacts
and README tables can be regenerated from provenance-stamped records
instead of hand-maintained copies.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional

__all__ = ["record_bench_section", "record_results", "bench_output_path"]

_DEFAULT_FILENAME = "BENCH_2.json"


def _record_into_store(path: str, section: str, payload: Dict[str, object], store) -> None:
    """Mirror one just-written section into a run store (if one is configured)."""
    root = store or os.environ.get("BENCH_STORE")
    if not root:
        return
    from repro.store import RunStore  # deferred: benchmarks import this module early

    RunStore(root).ingest_bench_payload(
        os.path.basename(path), {section: payload}, source=f"bench:{section}"
    )


def bench_output_path(filename: str = None) -> str:
    override = os.environ.get("BENCH_OUTPUT")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, filename or _DEFAULT_FILENAME)


def record_bench_section(
    section: str,
    payload: Dict[str, object],
    filename: str = None,
    store: Optional[str] = None,
) -> str:
    """Merge ``payload`` under ``section`` in the benchmark results file.

    Read-modify-write keeps sections from independent benchmark runs; the
    scale tag records whether a section came from a smoke (CI) or full run.
    ``filename`` targets a different per-PR results file (e.g. the
    federation benchmark writes ``BENCH_3.json``); the ``BENCH_OUTPUT``
    environment variable overrides both.  The section also lands in the
    run store named by ``store`` or ``BENCH_STORE`` (see module docstring).
    """
    path = bench_output_path(filename)
    data: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    enriched = dict(payload)
    enriched.setdefault("scale", os.environ.get("BENCH_SCALE", "full"))
    data[section] = enriched
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    _record_into_store(path, section, enriched, store)
    return path


def record_results(
    section: str,
    results: Mapping[str, "object"],
    filename: str = None,
    extra: Dict[str, object] = None,
    include_spec: bool = False,
    store: Optional[str] = None,
) -> str:
    """Persist a mapping of labelled :class:`repro.api.Result` objects.

    Each result is serialized through ``Result.to_dict()`` so the BENCH
    file carries the same metrics schema as the CLI and the regression
    gate; ``extra`` merges additional summary keys (degradation ratios,
    scaling factors) into the section and ``include_spec`` optionally
    keeps the resolved specs (off by default for lean artifacts).
    """
    payload: Dict[str, object] = {
        "results": {
            label: result.to_dict(include_spec=include_spec)
            for label, result in results.items()
        }
    }
    if extra:
        payload.update(extra)
    return record_bench_section(section, payload, filename=filename, store=store)
