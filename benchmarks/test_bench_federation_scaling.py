"""Federation scaling benchmark: aggregate event throughput vs shard count.

The same congested open-loop Poisson stream is pushed through fleets of
1, 2 and 4 shards built from the *identical total hardware* (the total
cluster config is split across shards by the declarative API's federated
cluster section), so the measurement isolates what sharding buys: each
shard's scheduling pass sees only its own active jobs, and per-event cost
shrinks with the shard's share of the backlog.  Asserts ≥ 2.5x aggregate
events/second at 4 shards vs 1 shard (the ISSUE 3 acceptance bar) and
dumps the curve into ``BENCH_3.json``.

Smoke mode (``BENCH_SCALE=smoke``) shrinks the stream for CI; the bar is
relaxed there because short runs never build the deep backlog the
speedup comes from.
"""

import os
import time

from bench_output import record_bench_section
from repro.api import (
    ClusterSection,
    ScenarioSpec,
    SchedulerSection,
    WorkloadSection,
    run,
)
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.federation import (
    FederatedCluster,
    FederatedSimulationEngine,
    LeastLoadedRouter,
)
from repro.workloads.arrivals import PoissonProcess

SMOKE = os.environ.get("BENCH_SCALE") == "smoke"
STREAM_JOBS = 300 if SMOKE else 1500
ARRIVAL_RATE = 12.0
MIN_SCALING_AT_4 = 1.3 if SMOKE else 2.5
SHARD_COUNTS = (1, 2, 4)
OUTPUT_FILE = "BENCH_3.json"

#: Total fleet hardware, split evenly across the shard counts under test.
TOTAL_CLUSTER = ClusterConfig(num_regular_executors=16, num_llm_executors=8, max_batch_size=8)


def run_fleet(num_shards):
    """One fleet cell through the declarative front door.

    A 1-shard "fleet" runs through the federated engine directly (the spec
    API maps ``num_shards=1`` to the plain single engine, which would skew
    the throughput baseline of this scaling curve).
    """
    workload = WorkloadSection.open_loop(
        PoissonProcess(rate=ARRIVAL_RATE, seed=11),
        seed=11,
        max_jobs=STREAM_JOBS,
        name="open_loop_poisson",
    )
    if num_shards == 1:
        stream = workload.to_open_loop_spec().jobs(None)
        fleet = FederatedCluster(
            [("shard-0", Cluster(TOTAL_CLUSTER))], router=LeastLoadedRouter()
        )
        engine = FederatedSimulationEngine(
            stream, FcfsScheduler, fleet, workload_name="open_loop_poisson"
        )
        started = time.perf_counter()
        return engine.run(), time.perf_counter() - started
    spec = ScenarioSpec(
        scheduler=SchedulerSection("fcfs"),
        workload=workload,
        cluster=ClusterSection(config=TOTAL_CLUSTER, num_shards=num_shards),
    )
    result = run(spec)
    return result.metrics, result.wall_clock_sec


def test_bench_federation_shard_scaling():
    results = {}
    for num_shards in SHARD_COUNTS:
        metrics, elapsed = run_fleet(num_shards)
        assert len(metrics.job_completion_times) == STREAM_JOBS
        results[num_shards] = {
            "events": metrics.num_events,
            "elapsed_sec": elapsed,
            "events_per_sec": metrics.num_events / elapsed,
            "average_jct": metrics.average_jct,
            "makespan": metrics.makespan,
        }

    base = results[1]["events_per_sec"]
    print(
        f"\nfederation scaling ({STREAM_JOBS} jobs, Poisson rate {ARRIVAL_RATE}/s, "
        f"{TOTAL_CLUSTER.num_regular_executors}+{TOTAL_CLUSTER.num_llm_executors} "
        "executors total):"
    )
    for num_shards, row in results.items():
        scaling = row["events_per_sec"] / base
        row["scaling_vs_1_shard"] = scaling
        print(
            f"  {num_shards} shard(s): {row['events_per_sec']:,.0f} events/s "
            f"({row['elapsed_sec']:.2f}s wall, {scaling:.2f}x)"
        )

    record_bench_section(
        "federation_shard_scaling",
        {
            "stream_jobs": STREAM_JOBS,
            "arrival_rate": ARRIVAL_RATE,
            "total_regular_executors": TOTAL_CLUSTER.num_regular_executors,
            "total_llm_executors": TOTAL_CLUSTER.num_llm_executors,
            "router": "least_loaded",
            "by_shard_count": {str(k): v for k, v in results.items()},
            "scaling_at_4_shards": results[4]["scaling_vs_1_shard"],
            "min_required_scaling": MIN_SCALING_AT_4,
        },
        filename=OUTPUT_FILE,
    )
    assert results[4]["scaling_vs_1_shard"] >= MIN_SCALING_AT_4, (
        f"4-shard fleet is only {results[4]['scaling_vs_1_shard']:.2f}x the 1-shard "
        f"event throughput (required: {MIN_SCALING_AT_4}x)"
    )


def test_bench_federated_migration_overhead():
    """Migration keeps a skewed fleet healthy without measurable slowdown.

    A hash-skewed 2-shard fleet (all jobs on one shard) runs once without
    and once with rebalancing; the custom skew router is injected through
    :func:`repro.api.run`'s ``router`` override.  The benchmark records the
    JCT win and the wall-clock cost of the migration machinery.
    """
    from repro.simulator.federation import HashRouter, MigrationConfig

    class AllToZero(HashRouter):
        def select_shard(self, shards, job):
            return 0

    jobs = 120 if SMOKE else 400

    def run_skewed(migration):
        spec = ScenarioSpec(
            scheduler=SchedulerSection("fcfs"),
            workload=WorkloadSection.open_loop(
                PoissonProcess(rate=4.0, seed=23), seed=23, max_jobs=jobs
            ),
            cluster=ClusterSection(
                config=TOTAL_CLUSTER, num_shards=2, migration=migration
            ),
        )
        result = run(spec, router=AllToZero())
        return result.metrics, result.wall_clock_sec

    skewed, skewed_elapsed = run_skewed(None)
    balanced, balanced_elapsed = run_skewed(
        MigrationConfig(interval=10.0, imbalance_threshold=0.2, max_migrations_per_check=4)
    )
    assert balanced.num_migrations > 0
    assert len(balanced.job_completion_times) == jobs
    jct_win = 1.0 - balanced.average_jct / skewed.average_jct
    print(
        f"\nfederated migration ({jobs} jobs, 2 shards, hash-skewed): "
        f"{balanced.num_migrations} migrations, JCT {skewed.average_jct:.1f}s -> "
        f"{balanced.average_jct:.1f}s ({jct_win:.0%} win), wall "
        f"{skewed_elapsed:.2f}s -> {balanced_elapsed:.2f}s"
    )
    record_bench_section(
        "federated_migration",
        {
            "jobs": jobs,
            "num_migrations": balanced.num_migrations,
            "migrated_work": balanced.migrated_work,
            "skewed_average_jct": skewed.average_jct,
            "balanced_average_jct": balanced.average_jct,
            "jct_reduction": jct_win,
            "skewed_elapsed_sec": skewed_elapsed,
            "balanced_elapsed_sec": balanced_elapsed,
        },
        filename=OUTPUT_FILE,
    )
    # Rebalancing must pay for itself on a pathologically skewed fleet.
    assert balanced.average_jct < skewed.average_jct
