"""Benchmark regenerating Fig. 9 — sensitivity to epsilon, r and lambda."""

from conftest import BENCH_NUM_JOBS, BENCH_SETTINGS

from repro.experiments import fig9_sensitivity
from repro.workloads.mixtures import WorkloadType


def test_bench_fig9a_epsilon(benchmark):
    series = benchmark.pedantic(
        fig9_sensitivity.run_epsilon_sweep,
        kwargs={
            "epsilons": (0.0, 0.1, 0.4, 0.8),
            "num_jobs": BENCH_NUM_JOBS,
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    assert set(series) == {0.0, 0.1, 0.4, 0.8}
    assert all(value > 0 for value in series.values())
    # Paper Fig. 9a: very aggressive exploration degrades the average JCT
    # relative to the sweet spot.
    assert series[0.8] >= min(series.values())


def test_bench_fig9b_sampling_ratio(benchmark):
    series = benchmark.pedantic(
        fig9_sensitivity.run_sampling_sweep,
        kwargs={
            "ratios": (0.1, 0.3, 1.0),
            "num_jobs": BENCH_NUM_JOBS,
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    assert set(series) == {0.1, 0.3, 1.0}
    assert all(value > 0 for value in series.values())


def test_bench_fig9c_arrival_rate(benchmark):
    result = benchmark.pedantic(
        fig9_sensitivity.run_arrival_sweep,
        kwargs={
            "arrival_rates": (0.6, 0.9, 1.2),
            "workload_types": (WorkloadType.MIXED, WorkloadType.CHAIN),
            "num_jobs": BENCH_NUM_JOBS,
            "settings": BENCH_SETTINGS,
        },
        rounds=1,
        iterations=1,
    )
    for series in result.values():
        # Paper Fig. 9c: the average JCT grows as jobs arrive more frequently.
        assert series[1.2] >= series[0.6]
