"""Inspect the profiler's view of a running job: posteriors, entropy, R(X).

The example walks one task-automation job through its planning stage and
shows how the Bayesian profiler's remaining-duration estimate and the
uncertainty-reduction scores change as evidence arrives — the mechanism
behind the paper's Fig. 2 motivation example.
"""

import numpy as np

from repro import BayesianProfiler, UncertaintyQuantifier
from repro.workloads import TaskAutomationApplication


def complete_stage(job, stage_id: str, at_time: float) -> None:
    stage = job.stage(stage_id)
    stage.mark_running()
    for task in stage.tasks:
        task.mark_running(at_time, "executor")
        task.mark_finished(at_time + task.work)
    job.notify_stage_finished(stage_id, at_time + max(t.work for t in stage.tasks))


def main() -> None:
    app = TaskAutomationApplication()
    profiler = BayesianProfiler().fit([app], n_profile_jobs=200, seed=0)
    quantifier = UncertaintyQuantifier(profiler)

    rng = np.random.default_rng(11)
    job = app.sample_job("demo-job", 0.0, rng)
    planner = job.stage(app.PLAN_KEY)
    dynamic = job.stage(app.DYNAMIC_KEY)

    print("=== before any stage runs ===")
    print(f"true total work of this job: {job.true_total_work:.2f} s (hidden from the scheduler)")
    print(f"posterior remaining estimate: {profiler.estimate_remaining_duration(job):.2f} s")
    print(f"planner entropy:              {quantifier.stage_entropy(job, planner):.2f} bits")
    print(f"dynamic-stage entropy:        {quantifier.stage_entropy(job, dynamic):.2f} bits")
    print(f"uncertainty reduction R(plan): {quantifier.uncertainty_reduction(job, planner):.1f}")

    complete_stage(job, app.PLAN_KEY, 0.0)
    revealed = [s.stage_id for s in job.stages.values() if s.stage_id.startswith("tool_")]
    print("\n=== after the planning stage completes ===")
    print(f"revealed tools: {revealed}")
    print(f"posterior remaining estimate: {profiler.estimate_remaining_duration(job):.2f} s")
    print(f"true remaining work:          {job.true_remaining_work():.2f} s")
    print(f"uncertainty reduction R(plan): {quantifier.uncertainty_reduction(job, planner):.1f} (resolved)")


if __name__ == "__main__":
    main()
