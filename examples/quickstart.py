"""Quickstart: schedule a mixed compound-LLM workload with LLMSched.

Run with::

    python examples/quickstart.py

The script (1) profiles the six bundled compound LLM applications offline,
(2) generates a mixed workload with Poisson arrivals, (3) runs it through
the cluster simulator under LLMSched and under Shortest Job First, and
(4) prints the average job completion times.
"""

from repro import (
    BayesianProfiler,
    Cluster,
    ClusterConfig,
    LLMSchedScheduler,
    SimulationEngine,
    WorkloadSpec,
    WorkloadType,
    create_scheduler,
    default_applications,
    generate_workload,
)
from repro.schedulers.priors import ApplicationPriors


def main() -> None:
    applications = default_applications()

    # Offline phase: per-application historical priors (for the baselines)
    # and Bayesian-network profiles (for LLMSched).
    priors = ApplicationPriors.from_applications(applications.values(), n_samples=60, seed=0)
    profiler = BayesianProfiler().fit(applications.values(), n_profile_jobs=100, seed=0)

    # A mixed workload: 120 jobs across all six applications, lambda = 0.9.
    spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=120, arrival_rate=0.9, seed=42)
    cluster_config = ClusterConfig(num_regular_executors=6, num_llm_executors=3, max_batch_size=4)

    results = {}
    for name, scheduler in [
        ("sjf", create_scheduler("sjf", priors=priors)),
        ("llmsched", LLMSchedScheduler(profiler)),
    ]:
        jobs = generate_workload(spec, applications=applications)
        engine = SimulationEngine(jobs, scheduler, cluster=Cluster(cluster_config), workload_name="mixed")
        results[name] = engine.run()

    print("Mixed workload, 120 jobs, lambda=0.9")
    for name, metrics in results.items():
        print(
            f"  {name:10s} avg JCT = {metrics.average_jct:7.2f} s   "
            f"p95 = {metrics.jct_summary()['p95']:7.2f} s   "
            f"scheduling overhead = {metrics.average_scheduling_overhead_ms:.2f} ms"
        )
    improvement = 1.0 - results["llmsched"].average_jct / results["sjf"].average_jct
    print(f"  LLMSched reduces the average JCT by {improvement:.1%} vs SJF")


if __name__ == "__main__":
    main()
