"""Asynchronous scheduling: what decision latency and stale views cost.

Run with::

    PYTHONPATH=src python examples/async_staleness.py

Two experiments, both kept fast with the FCFS baseline (no profiler
fitting needed):

1. **Decision latency** — the same congested workload is scheduled
   synchronously, then behind an asynchronous backend charging a growing
   decision latency, then with pipelining (next snapshot taken while the
   previous decision is still in flight).  Latency stretches JCT; the
   pipeline claws part of it back by keeping decisions overlapping, at
   the price of conflicts between decisions computed from overlapping
   snapshots (dropped placements are requeued and metered, never lost).

2. **Stale cluster views** — a three-shard federation routes the same
   Poisson stream least-loaded, but reading shard loads refreshed only
   every ``view_refresh_interval`` seconds.  A fresh view (interval 0)
   is exact least-loaded routing; as the view ages, arrival bursts pile
   onto whichever shard *looked* coldest when the window opened, and the
   fleet JCT degrades toward blind routing.
"""

from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator import (
    AsyncConfig,
    AsyncSchedulerBackend,
    Cluster,
    ClusterConfig,
    FederatedCluster,
    FederatedSimulationEngine,
    LeastLoadedRouter,
    SimulationEngine,
    StaleLeastLoadedRouter,
)
from repro.workloads.arrivals import PoissonProcess, open_loop_jobs
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications, generate_workload

APPLICATIONS = default_applications()

#: Deliberately small: decision latency only bites under contention.
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)
SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=60, arrival_rate=1.2, seed=7)

SHARD = ClusterConfig(num_regular_executors=2, num_llm_executors=1, max_batch_size=4)
STREAM_JOBS = 120


def run_async(async_config=None):
    jobs = generate_workload(SPEC, applications=APPLICATIONS)
    backend = AsyncSchedulerBackend(async_config) if async_config is not None else None
    engine = SimulationEngine(
        jobs, FcfsScheduler(), cluster=Cluster(CLUSTER), async_backend=backend
    )
    return engine.run()


def decision_latency_experiment():
    print("=== decision latency (60 jobs, congested 3+2 cluster, FCFS) ===")
    sync = run_async()
    print(f"  synchronous                 mean JCT {sync.average_jct:8.2f}s")
    for latency in (0.5, 2.0, 5.0):
        m = run_async(AsyncConfig(latency=latency))
        print(
            f"  latency {latency:4.1f}s               mean JCT {m.average_jct:8.2f}s"
            f"  (x{m.average_jct / sync.average_jct:.2f}, "
            f"{m.num_async_decisions} async decisions)"
        )
    for latency in (2.0, 5.0):
        m = run_async(AsyncConfig(latency=latency, pipelined=True, max_in_flight=3))
        print(
            f"  latency {latency:4.1f}s, pipelined x3  mean JCT {m.average_jct:8.2f}s"
            f"  (x{m.average_jct / sync.average_jct:.2f}, "
            f"{m.num_stale_placements} stale placements, "
            f"{m.num_placement_conflicts} conflicts)"
        )


def stale_view_experiment():
    print("\n=== stale cluster views (3 shards, least-loaded routing) ===")

    def run(router):
        stream = open_loop_jobs(
            PoissonProcess(rate=2.0, seed=5), seed=5, max_jobs=STREAM_JOBS
        )
        fleet = FederatedCluster(
            [(f"shard-{i}", Cluster(SHARD)) for i in range(3)], router=router
        )
        return FederatedSimulationEngine(
            stream, FcfsScheduler, fleet, workload_name="poisson"
        ).run()

    fresh = run(LeastLoadedRouter())
    print(f"  fresh view (synchronous)    fleet JCT {fresh.average_jct:8.2f}s")
    for interval in (5.0, 30.0, 120.0):
        m = run(StaleLeastLoadedRouter(view_refresh_interval=interval))
        print(
            f"  view refreshed every {interval:5.1f}s fleet JCT {m.average_jct:8.2f}s"
            f"  (x{m.average_jct / fresh.average_jct:.2f})"
        )


if __name__ == "__main__":
    decision_latency_experiment()
    stale_view_experiment()
