"""Compare every scheduler on each of the paper's four workload types.

A scaled-down version of the paper's Fig. 7/8 comparison that finishes in a
couple of minutes::

    python examples/scheduler_comparison.py --num-jobs 120
"""

import argparse

from repro.api import (
    PAPER_BASELINES,
    ExperimentSettings,
    ScenarioSpec,
    WorkloadSection,
    build_priors,
    build_profiler,
    compare,
)
from repro.experiments.report import format_table
from repro.workloads.mixtures import WorkloadType, default_applications


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, default=120)
    parser.add_argument("--arrival-rate", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    settings = ExperimentSettings(profile_jobs=100, prior_samples=60)
    applications = default_applications()
    priors = build_priors(applications, settings)
    profiler = build_profiler(applications, settings)
    schedulers = PAPER_BASELINES + ["llmsched"]

    rows = []
    for workload_type in WorkloadType:
        scenario = ScenarioSpec(
            workload=WorkloadSection.closed_loop(
                workload_type.value,
                num_jobs=args.num_jobs,
                arrival_rate=args.arrival_rate,
                seed=args.seed,
            ),
            settings=settings,
        )
        comparison = compare(
            scenario,
            schedulers,
            applications=applications,
            priors=priors,
            profiler=profiler,
        )
        row = {"workload": workload_type.value}
        row.update({name: comparison.metrics[name].average_jct for name in schedulers})
        rows.append(row)

    print(
        format_table(
            rows,
            columns=["workload"] + schedulers,
            title=f"Average JCT (s) per scheduler — {args.num_jobs} jobs, lambda={args.arrival_rate}",
        )
    )


if __name__ == "__main__":
    main()
