"""Compare every scheduler on each of the paper's four workload types.

A scaled-down version of the paper's Fig. 7/8 comparison that finishes in a
couple of minutes::

    python examples/scheduler_comparison.py --num-jobs 120
"""

import argparse

from repro.experiments.report import format_table
from repro.experiments.runner import (
    PAPER_BASELINES,
    ExperimentSettings,
    build_priors,
    build_profiler,
    run_comparison,
    size_cluster_for_workload,
)
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--num-jobs", type=int, default=120)
    parser.add_argument("--arrival-rate", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    settings = ExperimentSettings(profile_jobs=100, prior_samples=60)
    applications = default_applications()
    priors = build_priors(applications, settings)
    profiler = build_profiler(applications, settings)
    schedulers = PAPER_BASELINES + ["llmsched"]

    rows = []
    for workload_type in WorkloadType:
        spec = WorkloadSpec(
            workload_type=workload_type,
            num_jobs=args.num_jobs,
            arrival_rate=args.arrival_rate,
            seed=args.seed,
        )
        cluster = size_cluster_for_workload(spec, applications, settings)
        comparison = run_comparison(
            spec,
            schedulers,
            applications=applications,
            settings=settings,
            priors=priors,
            profiler=profiler,
            cluster_config=cluster,
        )
        row = {"workload": workload_type.value}
        row.update({name: comparison.metrics[name].average_jct for name in schedulers})
        rows.append(row)

    print(
        format_table(
            rows,
            columns=["workload"] + schedulers,
            title=f"Average JCT (s) per scheduler — {args.num_jobs} jobs, lambda={args.arrival_rate}",
        )
    )


if __name__ == "__main__":
    main()
