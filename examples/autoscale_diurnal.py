"""Autoscaling a heterogeneous cluster under a diurnal arrival process.

Run with::

    PYTHONPATH=src python examples/autoscale_diurnal.py

The script streams jobs from a sinusoidal (diurnal) arrival process
through the simulation engine twice on the same heterogeneous pool layout:
once statically sized at the off-peak floor, and once with the threshold
autoscaler resizing the pools every 20 simulated seconds.  It prints every
pool resize event and compares the resulting job completion times.

No profiler fitting is needed — the FCFS baseline keeps the example fast.
"""

from repro.dag.task import TaskType
from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator import (
    AutoscalerConfig,
    Cluster,
    PoolSpec,
    SimulationEngine,
    ThresholdAutoscaler,
)
from repro.workloads.arrivals import DiurnalProcess, open_loop_jobs

#: Off-peak floor sizing: 2 CPU containers and 1 batched LLM engine.  The
#: autoscaler may grow the pools to the max_executors ceilings at peak.
POOLS = (
    PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=2, max_executors=24),
    PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=4, min_executors=1, max_executors=12),
)

#: One "day" is compressed to 600 simulated seconds so the example runs in
#: moments; amplitude 0.9 swings the rate between 0.1x and 1.9x the mean.
PROCESS = DiurnalProcess(mean_rate=1.0, amplitude=0.9, period=600.0, seed=3)
NUM_JOBS = 150


def run(autoscaler):
    stream = open_loop_jobs(PROCESS, seed=3, max_jobs=NUM_JOBS)
    engine = SimulationEngine(
        stream,
        FcfsScheduler(),
        cluster=Cluster(pools=POOLS),
        workload_name="diurnal",
        autoscaler=autoscaler,
    )
    metrics = engine.run()
    return engine, metrics


def main() -> None:
    autoscaler = ThresholdAutoscaler(
        AutoscalerConfig(interval=20.0, scale_up_occupancy=0.85, scale_down_occupancy=0.25, step=2)
    )
    _, static_metrics = run(None)
    engine, elastic_metrics = run(autoscaler)

    print(f"Diurnal arrivals: {NUM_JOBS} jobs, mean rate 1.0/s, period 600 s")
    print("\nScale events (elastic run):")
    for event in elastic_metrics.scale_events:
        direction = "up" if event["delta"] > 0 else "down"
        print(
            f"  t={event['time']:7.1f}s  {event['pool']:>4s} scale-{direction} "
            f"{event['delta']:+d}  (occupancy {event['occupancy']:.2f}, "
            f"backlog {event['backlog']})"
        )
    final = {pool.name: pool.num_active_executors for pool in engine.cluster.pools}
    print(f"\nFinal pool sizes: {final}")

    print("\n              static floor    autoscaled")
    print(
        f"  avg JCT    {static_metrics.average_jct:10.2f} s  {elastic_metrics.average_jct:10.2f} s"
    )
    print(
        f"  p95 JCT    {static_metrics.jct_summary()['p95']:10.2f} s  "
        f"{elastic_metrics.jct_summary()['p95']:10.2f} s"
    )
    print(
        f"  makespan   {static_metrics.makespan:10.2f} s  {elastic_metrics.makespan:10.2f} s"
    )
    improvement = 1.0 - elastic_metrics.average_jct / static_metrics.average_jct
    print(f"\nAutoscaling reduces the average JCT by {improvement:.1%} at the diurnal peak")


if __name__ == "__main__":
    main()
