"""Define a custom compound LLM application and schedule it with LLMSched.

This example shows the full extension path a downstream user would take:

1. subclass :class:`repro.dag.application.ApplicationTemplate` to describe a
   new compound application (here: a retrieval-augmented QA pipeline with an
   LLM rewrite stage, a parallel retrieval fan-out, and an LLM answer stage),
2. profile it together with the bundled applications,
3. run a workload that mixes the new application with an existing one.
"""

from typing import List, Tuple

import numpy as np

from repro import BayesianProfiler, Cluster, ClusterConfig, LLMSchedScheduler, SimulationEngine
from repro.dag.application import ApplicationTemplate, StageDraw
from repro.dag.job import Job
from repro.dag.stage import StageSpec, StageType
from repro.workloads import WebSearchApplication
from repro.workloads.base import LatentScaledDuration, sample_lognormal


class RagPipelineApplication(ApplicationTemplate):
    """Retrieval-augmented QA: rewrite (LLM) -> k retrievals -> answer (LLM)."""

    name = "rag_pipeline"
    category = "predefined"

    RETRIEVERS = 3

    _REWRITE = LatentScaledDuration(base=0.8, scale_per_unit=0.3, noise_sigma=0.2)
    _RETRIEVE = LatentScaledDuration(base=0.5, scale_per_unit=0.05, noise_sigma=0.2)
    _ANSWER = LatentScaledDuration(base=1.5, scale_per_unit=0.6, noise_sigma=0.2)

    def profile_variables(self) -> List[str]:
        return ["rag_rewrite", "rag_retrieve", "rag_answer"]

    def profile_edges(self) -> List[Tuple[str, str]]:
        return [("rag_rewrite", "rag_retrieve"), ("rag_retrieve", "rag_answer")]

    def llm_profile_keys(self) -> List[str]:
        return ["rag_rewrite", "rag_answer"]

    def sample_job(self, job_id: str, arrival_time: float, rng: np.random.Generator) -> Job:
        # Latent question complexity drives every stage (correlated durations).
        complexity = rng.uniform(1.0, 5.0)
        verbosity = sample_lognormal(rng, 1.0, 0.35)
        draws = [
            StageDraw(
                spec=StageSpec("rag_rewrite", StageType.LLM, name="rewrite", profile_key="rag_rewrite"),
                task_durations=[self._REWRITE.sample(rng, complexity) * verbosity],
            ),
            StageDraw(
                spec=StageSpec(
                    "rag_retrieve",
                    StageType.REGULAR,
                    name="retrieve",
                    num_tasks=self.RETRIEVERS,
                    profile_key="rag_retrieve",
                ),
                task_durations=[self._RETRIEVE.sample(rng, complexity) for _ in range(self.RETRIEVERS)],
            ),
            StageDraw(
                spec=StageSpec("rag_answer", StageType.LLM, name="answer", profile_key="rag_answer"),
                task_durations=[self._ANSWER.sample(rng, complexity) * verbosity],
            ),
        ]
        return self.build_job(job_id, arrival_time, draws, self.profile_edges())


def main() -> None:
    rag = RagPipelineApplication()
    web = WebSearchApplication()
    applications = {app.name: app for app in (rag, web)}

    profiler = BayesianProfiler().fit(applications.values(), n_profile_jobs=120, seed=1)
    profile = profiler.profile_for("rag_pipeline")
    print("Learned BN edges for the custom application:", profile.network.edges)

    # Build a small interleaved workload by hand.
    rng = np.random.default_rng(7)
    jobs = []
    time = 0.0
    for i in range(60):
        time += float(rng.exponential(1.0))
        app = rag if i % 2 == 0 else web
        jobs.append(app.sample_job(f"job-{i:03d}", time, rng))

    cluster = Cluster(ClusterConfig(num_regular_executors=4, num_llm_executors=1, max_batch_size=4))
    metrics = SimulationEngine(jobs, LLMSchedScheduler(profiler), cluster=cluster, workload_name="custom").run()

    print(f"Scheduled {len(metrics.job_completion_times)} jobs; average JCT = {metrics.average_jct:.2f} s")
    for application, jct in sorted(metrics.jct_by_application().items()):
        print(f"  {application:14s} avg JCT = {jct:.2f} s")


if __name__ == "__main__":
    main()
