"""Sharded federation: route a diurnal stream, rebalance with migration.

Run with::

    PYTHONPATH=src python examples/federated_sharding.py

The script streams jobs from a diurnal arrival process into an
*unequal* two-shard fleet (east is three times the size of west) three
times: routed by stable hashing (sticky, but oblivious to both load and
shard size — it splits jobs ~50/50 and drowns the small shard), routed
least-loaded (adapts to the size difference), and routed by hash *with*
cross-shard migration checkpointing work off the drowning shard.  It
prints the per-shard job counts, every migration, and the fleet-level
JCT of each configuration.

No profiler fitting is needed — the FCFS baseline keeps the example fast.
"""

from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator import (
    Cluster,
    ClusterConfig,
    FederatedCluster,
    FederatedSimulationEngine,
    MigrationConfig,
    create_job_router,
)
from repro.workloads.arrivals import DiurnalProcess, open_loop_jobs

#: Unequal shards: a hash router sends each ~half the jobs anyway.
EAST_CONFIG = ClusterConfig(num_regular_executors=6, num_llm_executors=3, max_batch_size=4)
WEST_CONFIG = ClusterConfig(num_regular_executors=2, num_llm_executors=1, max_batch_size=4)

#: One "day" compressed to 600 simulated seconds, swinging between 0.2x
#: and 1.8x the mean rate — peak traffic overloads a badly routed shard.
PROCESS = DiurnalProcess(mean_rate=1.6, amplitude=0.8, period=600.0, seed=4)
NUM_JOBS = 200


def run(router_name, migration=None):
    stream = open_loop_jobs(PROCESS, seed=4, max_jobs=NUM_JOBS)
    fleet = FederatedCluster(
        [("east", Cluster(EAST_CONFIG)), ("west", Cluster(WEST_CONFIG))],
        router=create_job_router(router_name),
    )
    engine = FederatedSimulationEngine(
        stream,
        FcfsScheduler,
        fleet,
        workload_name="diurnal",
        migration=migration,
    )
    return engine.run()


def describe(label, metrics):
    shares = {name: len(m.job_completion_times) for name, m in metrics.shards.items()}
    print(
        f"  {label:<22s} avg JCT {metrics.average_jct:8.2f} s   "
        f"jobs per shard {shares}   migrations {metrics.num_migrations}"
    )


def main() -> None:
    print(
        f"Diurnal arrivals: {NUM_JOBS} jobs over 2 unequal shards "
        f"(east {EAST_CONFIG.num_regular_executors}+{EAST_CONFIG.num_llm_executors}, "
        f"west {WEST_CONFIG.num_regular_executors}+{WEST_CONFIG.num_llm_executors} executors)\n"
    )

    hashed = run("hash")
    least = run("least_loaded")
    migrated = run(
        "hash",
        migration=MigrationConfig(
            interval=15.0, imbalance_threshold=0.25, max_migrations_per_check=2, cost=1.0
        ),
    )

    print("Fleet comparison:")
    describe("hash router", hashed)
    describe("least-loaded router", least)
    describe("hash + migration", migrated)

    if migrated.migration_events:
        shown = migrated.migration_events[:10]
        print(f"\nMigrations (hash + migration run, first {len(shown)} of {len(migrated.migration_events)}):")
        for event in shown:
            print(
                f"  t={event['time']:7.1f}s  {event['job_id']} "
                f"{event['source']} -> {event['target']} "
                f"({event['checkpointed_tasks']} running tasks checkpointed, "
                f"{event['remaining_work']:.1f}s of work moved)"
            )

    win = 1.0 - migrated.average_jct / hashed.average_jct
    print(
        f"\nMigration repaired the hash router's imbalance: "
        f"{hashed.average_jct:.2f}s -> {migrated.average_jct:.2f}s mean JCT "
        f"({win:.0%} reduction, {migrated.migration_cost:.0f}s total migration cost metered)"
    )


if __name__ == "__main__":
    main()
