"""Tests for discrete factors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes.factor import DiscreteFactor


def make_factor(variables, cards, values):
    return DiscreteFactor(variables, cards, np.asarray(values, dtype=float))


class TestConstruction:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_factor(["a"], {"a": 3}, [0.5, 0.5])

    def test_negative_values_raise(self):
        with pytest.raises(ValueError):
            make_factor(["a"], {"a": 2}, [-0.5, 1.5])

    def test_duplicate_variables_raise(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a", "a"], {"a": 2}, np.ones((2, 2)))

    def test_zero_cardinality_raises(self):
        with pytest.raises(ValueError):
            DiscreteFactor(["a"], {"a": 0}, np.ones((0,)))

    def test_uniform(self):
        factor = DiscreteFactor.uniform(["a", "b"], {"a": 2, "b": 3})
        assert factor.total == pytest.approx(1.0)
        assert np.allclose(factor.values, 1.0 / 6)

    def test_identity(self):
        identity = DiscreteFactor.identity()
        assert identity.variables == []
        assert identity.total == pytest.approx(1.0)


class TestProduct:
    def test_product_with_identity(self):
        factor = make_factor(["a"], {"a": 2}, [0.3, 0.7])
        result = factor.product(DiscreteFactor.identity())
        assert result.variables == ["a"]
        assert np.allclose(result.values, [0.3, 0.7])

    def test_product_disjoint_is_outer_product(self):
        fa = make_factor(["a"], {"a": 2}, [0.3, 0.7])
        fb = make_factor(["b"], {"b": 2}, [0.4, 0.6])
        result = fa.product(fb)
        assert set(result.variables) == {"a", "b"}
        assert result.get({"a": 0, "b": 1}) == pytest.approx(0.3 * 0.6)
        assert result.get({"a": 1, "b": 0}) == pytest.approx(0.7 * 0.4)

    def test_product_shared_variable(self):
        fa = make_factor(["a", "b"], {"a": 2, "b": 2}, [[1.0, 2.0], [3.0, 4.0]])
        fb = make_factor(["b"], {"b": 2}, [10.0, 100.0])
        result = fa.product(fb)
        assert result.get({"a": 0, "b": 0}) == pytest.approx(10.0)
        assert result.get({"a": 1, "b": 1}) == pytest.approx(400.0)

    def test_product_axis_order_independent(self):
        fa = make_factor(["a", "b"], {"a": 2, "b": 3}, np.arange(6).reshape(2, 3) + 1.0)
        fb = make_factor(["b", "a"], {"b": 3, "a": 2}, np.arange(6).reshape(3, 2) + 1.0)
        result = fa.product(fb)
        for a in range(2):
            for b in range(3):
                expected = fa.get({"a": a, "b": b}) * fb.get({"a": a, "b": b})
                assert result.get({"a": a, "b": b}) == pytest.approx(expected)

    def test_cardinality_mismatch_raises(self):
        fa = make_factor(["a"], {"a": 2}, [0.5, 0.5])
        fb = make_factor(["a"], {"a": 3}, [0.2, 0.3, 0.5])
        with pytest.raises(ValueError):
            fa.product(fb)


class TestMarginalizeReduce:
    def test_marginalize_sums_out(self):
        factor = make_factor(["a", "b"], {"a": 2, "b": 2}, [[0.1, 0.2], [0.3, 0.4]])
        result = factor.marginalize(["b"])
        assert result.variables == ["a"]
        assert np.allclose(result.values, [0.3, 0.7])

    def test_marginalize_unknown_variable_raises(self):
        factor = make_factor(["a"], {"a": 2}, [0.5, 0.5])
        with pytest.raises(ValueError):
            factor.marginalize(["b"])

    def test_reduce_conditions(self):
        factor = make_factor(["a", "b"], {"a": 2, "b": 2}, [[0.1, 0.2], [0.3, 0.4]])
        result = factor.reduce({"b": 1})
        assert result.variables == ["a"]
        assert np.allclose(result.values, [0.2, 0.4])

    def test_reduce_ignores_irrelevant_evidence(self):
        factor = make_factor(["a"], {"a": 2}, [0.5, 0.5])
        result = factor.reduce({"z": 0})
        assert result.variables == ["a"]

    def test_reduce_out_of_range_raises(self):
        factor = make_factor(["a"], {"a": 2}, [0.5, 0.5])
        with pytest.raises(ValueError):
            factor.reduce({"a": 5})

    def test_marginal_of_variable(self):
        factor = make_factor(["a", "b"], {"a": 2, "b": 2}, [[0.1, 0.2], [0.3, 0.4]])
        marg = factor.marginal("b")
        assert marg == pytest.approx([0.4, 0.6])


class TestNormalize:
    def test_normalize_sums_to_one(self):
        factor = make_factor(["a"], {"a": 3}, [1.0, 2.0, 7.0])
        result = factor.normalize()
        assert result.total == pytest.approx(1.0)
        assert result.values[2] == pytest.approx(0.7)

    def test_normalize_zero_factor_returns_uniform(self):
        factor = make_factor(["a"], {"a": 4}, [0.0, 0.0, 0.0, 0.0])
        result = factor.normalize()
        assert np.allclose(result.values, 0.25)


class TestAssignments:
    def test_assignment_iteration_covers_all(self):
        factor = make_factor(["a", "b"], {"a": 2, "b": 2}, [[1.0, 2.0], [3.0, 4.0]])
        items = list(factor.assignments())
        assert len(items) == 4
        total = sum(value for _, value in items)
        assert total == pytest.approx(10.0)

    def test_scalar_assignment(self):
        items = list(DiscreteFactor.identity().assignments())
        assert items == [({}, 1.0)]


@st.composite
def random_factor(draw):
    n_vars = draw(st.integers(min_value=1, max_value=3))
    names = [f"v{i}" for i in range(n_vars)]
    cards = {name: draw(st.integers(min_value=1, max_value=3)) for name in names}
    shape = tuple(cards[n] for n in names)
    size = int(np.prod(shape))
    values = draw(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=size, max_size=size)
    )
    return DiscreteFactor(names, cards, np.asarray(values).reshape(shape))


class TestFactorProperties:
    @given(random_factor(), random_factor())
    @settings(max_examples=50, deadline=None)
    def test_product_total_is_consistent(self, fa, fb):
        # Renaming fb's variables makes the two factors disjoint, so the
        # product's total must equal the product of totals.
        renamed = DiscreteFactor(
            [f"w{i}" for i in range(len(fb.variables))],
            {f"w{i}": fb.cardinalities[v] for i, v in enumerate(fb.variables)},
            fb.values,
        )
        product = fa.product(renamed)
        assert product.total == pytest.approx(fa.total * renamed.total, rel=1e-6, abs=1e-9)

    @given(random_factor())
    @settings(max_examples=50, deadline=None)
    def test_marginalize_preserves_total(self, factor):
        result = factor.marginalize(factor.variables[:1])
        assert result.total == pytest.approx(factor.total, rel=1e-9, abs=1e-9)

    @given(random_factor())
    @settings(max_examples=50, deadline=None)
    def test_normalize_idempotent(self, factor):
        once = factor.normalize()
        twice = once.normalize()
        assert np.allclose(once.values, twice.values)
