"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, derive_rng, make_rng


class TestMakeRng:
    def test_from_int_seed_is_deterministic(self):
        a = make_rng(123)
        b = make_rng(123)
        assert a.integers(0, 1000, 10).tolist() == b.integers(0, 1000, 10).tolist()

    def test_different_seeds_differ(self):
        a = make_rng(1)
        b = make_rng(2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_child_streams_are_independent_of_key(self):
        parent1 = make_rng(42)
        parent2 = make_rng(42)
        child_a = derive_rng(parent1, "job", 1)
        child_b = derive_rng(parent2, "job", 1)
        assert child_a.integers(0, 10**9, 5).tolist() == child_b.integers(0, 10**9, 5).tolist()

    def test_different_keys_give_different_streams(self):
        parent = make_rng(42)
        child_a = derive_rng(parent, "job", 1)
        child_b = derive_rng(parent, "job", 2)
        assert child_a.integers(0, 10**9, 5).tolist() != child_b.integers(0, 10**9, 5).tolist()


class TestRngMixin:
    class Thing(RngMixin):
        def __init__(self, seed=None):
            self._seed = seed

    def test_lazy_rng_deterministic(self):
        a = self.Thing(5)
        b = self.Thing(5)
        assert a.rng.integers(0, 100, 3).tolist() == b.rng.integers(0, 100, 3).tolist()

    def test_reseed_resets_stream(self):
        thing = self.Thing(5)
        first = thing.rng.integers(0, 100, 3).tolist()
        thing.reseed(5)
        second = thing.rng.integers(0, 100, 3).tolist()
        assert first == second
