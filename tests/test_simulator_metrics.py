"""Tests for simulation metrics."""

import pytest

from repro.simulator.metrics import SimulationMetrics


class TestSimulationMetrics:
    def test_average_jct(self):
        metrics = SimulationMetrics()
        metrics.record_job_completion("a", "app1", 10.0)
        metrics.record_job_completion("b", "app2", 20.0)
        assert metrics.average_jct == pytest.approx(15.0)

    def test_empty_average_jct_is_zero(self):
        assert SimulationMetrics().average_jct == 0.0

    def test_negative_jct_rejected(self):
        with pytest.raises(ValueError):
            SimulationMetrics().record_job_completion("a", "app", -1.0)

    def test_overhead_in_milliseconds(self):
        metrics = SimulationMetrics()
        metrics.record_scheduler_invocation(0.002)
        metrics.record_scheduler_invocation(0.004)
        assert metrics.average_scheduling_overhead_ms == pytest.approx(3.0)
        assert metrics.num_scheduler_invocations == 2

    def test_overhead_zero_without_invocations(self):
        assert SimulationMetrics().average_scheduling_overhead_ms == 0.0

    def test_jct_by_application(self):
        metrics = SimulationMetrics()
        metrics.record_job_completion("a", "app1", 10.0)
        metrics.record_job_completion("b", "app1", 30.0)
        metrics.record_job_completion("c", "app2", 5.0)
        breakdown = metrics.jct_by_application()
        assert breakdown["app1"] == pytest.approx(20.0)
        assert breakdown["app2"] == pytest.approx(5.0)

    def test_to_dict_contains_key_fields(self):
        metrics = SimulationMetrics(scheduler_name="sjf", workload_name="mixed")
        metrics.record_job_completion("a", "app", 4.0)
        summary = metrics.to_dict()
        assert summary["scheduler"] == "sjf"
        assert summary["workload"] == "mixed"
        assert summary["num_jobs"] == 1
        assert summary["average_jct"] == pytest.approx(4.0)
