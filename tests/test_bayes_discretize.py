"""Tests for duration discretisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes.discretize import DiscretizationSpec, Discretizer


class TestFit:
    def test_max_intervals_respected(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(1.0, 100.0, 500)
        spec = Discretizer(max_intervals=6).fit(samples)
        assert spec.cardinality <= 6
        assert not spec.has_zero_state

    def test_zero_state_reserved_when_zeros_present(self):
        samples = [0.0, 0.0, 5.0, 6.0, 7.0, 8.0]
        spec = Discretizer(max_intervals=3, zero_state=True).fit(samples)
        assert spec.has_zero_state
        assert spec.representatives[0] == 0.0

    def test_all_zero_samples(self):
        spec = Discretizer(zero_state=True).fit([0.0, 0.0, 0.0])
        assert spec.cardinality == 1
        assert spec.representatives == (0.0,)

    def test_constant_positive_samples_single_interval(self):
        spec = Discretizer(max_intervals=6).fit([5.0] * 20)
        assert spec.cardinality == 1
        assert spec.representatives[0] == pytest.approx(5.0)

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            Discretizer().fit([-1.0, 2.0])

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Discretizer().fit([])

    def test_invalid_max_intervals(self):
        with pytest.raises(ValueError):
            Discretizer(max_intervals=0)


class TestTransform:
    def test_round_trip_training_samples_in_range(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(20.0, 300)
        discretizer = Discretizer(max_intervals=6)
        spec, states = discretizer.fit_transform(samples)
        assert min(states) >= 0
        assert max(states) < spec.cardinality

    def test_monotone_mapping(self):
        samples = list(np.linspace(1, 100, 200))
        discretizer = Discretizer(max_intervals=5)
        spec = discretizer.fit(samples)
        states = [discretizer.transform(v, spec) for v in samples]
        assert states == sorted(states)

    def test_out_of_range_values_clamped(self):
        discretizer = Discretizer(max_intervals=4)
        spec = discretizer.fit(list(np.linspace(10, 20, 100)))
        assert discretizer.transform(0.5, spec) == (1 if spec.has_zero_state else 0)
        assert discretizer.transform(1000.0, spec) == spec.cardinality - 1

    def test_zero_maps_to_zero_state(self):
        discretizer = Discretizer(max_intervals=4, zero_state=True)
        spec = discretizer.fit([0.0, 1.0, 2.0, 3.0, 4.0])
        assert discretizer.transform(0.0, spec) == 0
        assert discretizer.transform(2.5, spec) > 0

    def test_representative_lookup(self):
        discretizer = Discretizer(max_intervals=3)
        spec = discretizer.fit([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        rep = Discretizer.representative(0, spec)
        assert rep > 0


class TestValueRange:
    def test_range_spans_representatives(self):
        spec = DiscretizationSpec(edges=(0.0, 1.0, 2.0), representatives=(0.0, 0.5, 1.5), has_zero_state=True)
        assert spec.value_range == pytest.approx(1.5)

    def test_single_state_range_zero(self):
        spec = DiscretizationSpec(edges=(0.0, 0.0), representatives=(0.0,), has_zero_state=True)
        assert spec.value_range == 0.0


class TestProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=200),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_training_sample_maps_to_valid_state(self, samples, k):
        discretizer = Discretizer(max_intervals=k, zero_state=True)
        spec = discretizer.fit(samples)
        for value in samples:
            state = discretizer.transform(value, spec)
            assert 0 <= state < spec.cardinality

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_representatives_sorted_for_positive_samples(self, samples):
        discretizer = Discretizer(max_intervals=6)
        spec = discretizer.fit(samples)
        reps = list(spec.representatives)
        assert reps == sorted(reps)
