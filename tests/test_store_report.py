"""Report regeneration: the ISSUE 10 acceptance bar.

``repro store report`` must reproduce the README scheduler/pareto tables
and every BENCH-shaped artifact **byte-for-byte** from store contents
alone — and the committed ``benchmarks/baselines/store/`` must stay in
lockstep with the legacy flat snapshots it replaced (the regression gate
reads golden values through the store view, with the flat files kept as a
covered fallback)."""

import importlib.util
import json
import shutil
import sys
from pathlib import Path

import pytest

from repro.store import RunStore
from repro.store.report import (
    ReportError,
    baseline_payloads,
    bench_artifact,
    bench_artifacts,
    diff_payloads,
    readme_async_table,
    readme_pareto_table,
    readme_tables,
    render_bench_artifact,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
BENCH_FILES = sorted(p.name for p in REPO_ROOT.glob("BENCH_*.json"))


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def full_store(tmp_path_factory):
    """Every repo-root BENCH artifact, ingested once."""
    store = RunStore(tmp_path_factory.mktemp("full") / "store")
    for name in BENCH_FILES:
        store.ingest_bench_file(REPO_ROOT / name)
    return store


class TestBenchArtifacts:
    def test_every_artifact_byte_for_byte(self, full_store):
        assert BENCH_FILES, "repo-root BENCH_*.json artifacts must exist"
        for name in BENCH_FILES:
            regenerated = render_bench_artifact(bench_artifact(full_store, name))
            assert regenerated == (REPO_ROOT / name).read_text(), name

    def test_bench_artifacts_enumerates_all(self, full_store):
        assert sorted(bench_artifacts(full_store)) == BENCH_FILES
        assert baseline_payloads(full_store) == bench_artifacts(full_store)

    def test_unknown_bench_file(self, full_store):
        with pytest.raises(ReportError, match="no sections"):
            bench_artifact(full_store, "BENCH_999.json")


class TestReadmeTables:
    def test_async_table_matches_readme_verbatim(self, full_store):
        table = readme_async_table(full_store)
        assert table in (REPO_ROOT / "README.md").read_text()

    def test_pareto_table_matches_readme_verbatim(self, full_store):
        table = readme_pareto_table(full_store)
        assert table in (REPO_ROOT / "README.md").read_text()

    def test_readme_tables_collects_both(self, full_store):
        tables = readme_tables(full_store)
        assert set(tables) == {"async", "pareto"}

    def test_missing_section_raises(self, tmp_path):
        empty = RunStore(tmp_path / "empty")
        with pytest.raises(ReportError, match="async_latency_degradation"):
            readme_async_table(empty)
        assert readme_tables(empty) == {}


class TestCommittedBaselineStore:
    """The committed store is the source of truth — and stays in sync."""

    def test_store_reconstructs_flat_baselines_byte_for_byte(self):
        store = RunStore(BASELINE_DIR / "store")
        artifacts = bench_artifacts(store)
        flat = sorted(p.name for p in BASELINE_DIR.glob("BENCH_*.json"))
        assert sorted(artifacts) == flat
        for name in flat:
            assert render_bench_artifact(artifacts[name]) == (
                BASELINE_DIR / name
            ).read_text(), f"{name}: committed store and flat baseline diverged"

    def test_committed_records_pass_integrity(self):
        store = RunStore(BASELINE_DIR / "store")
        assert len(store.records(verify=True)) == len(store)


class TestRegressionGateStoreView:
    def test_gate_passes_through_store_view(self, capsys):
        gate = _load_check_regression()
        rc = gate.main(
            ["--current-dir", str(BASELINE_DIR), "--min-throughput-ratio", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "via store:" in out

    def test_gate_bites_on_tampered_record(self, tmp_path, capsys):
        tampered_root = tmp_path / "store"
        shutil.copytree(BASELINE_DIR / "store", tampered_root)
        store = RunStore(tampered_root)
        victim = next(
            r for r in store.records() if r.section == "async_latency_degradation"
        )
        data = json.loads(store._record_path(victim.record_id).read_text())
        data["payload"]["average_jct_by_scheduler"]["fcfs"]["0.0"] += 1.0
        store._record_path(victim.record_id).write_text(json.dumps(data) + "\n")

        gate = _load_check_regression()
        rc = gate.main(
            [
                "--current-dir", str(BASELINE_DIR),
                "--baseline-store", str(tampered_root),
                "--min-throughput-ratio", "0",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "golden drift" in err

    def test_legacy_flat_fallback(self, tmp_path, capsys):
        legacy = tmp_path / "baselines"
        legacy.mkdir()
        for path in BASELINE_DIR.glob("*.json"):  # BENCH files + calibration
            shutil.copy(path, legacy / path.name)
        gate = _load_check_regression()
        rc = gate.main(
            [
                "--baseline-dir", str(legacy),
                "--current-dir", str(BASELINE_DIR),
                "--min-throughput-ratio", "0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "via flat:" in out

    def test_load_baselines_prefers_store(self):
        gate = _load_check_regression()
        payloads, view = gate.load_baselines(str(BASELINE_DIR))
        assert view.startswith("store:")
        flat = {
            p.name: json.loads(p.read_text())
            for p in BASELINE_DIR.glob("BENCH_*.json")
        }
        assert payloads == flat


class TestDiff:
    def test_diff_payloads_reports_leaf_changes(self):
        old = {"a": 1, "nested": {"x": 2.0}, "gone": "yes"}
        new = {"a": 1, "nested": {"x": 3.0}, "fresh": [1]}
        lines = diff_payloads(old, new)
        assert any(line.startswith("~ nested.x:") for line in lines)
        assert any(line.startswith("- gone") for line in lines)
        assert any(line.startswith("+ fresh") for line in lines)
        assert diff_payloads(old, old) == []


@pytest.fixture(autouse=True)
def _drop_check_regression_module():
    yield
    sys.modules.pop("check_regression", None)
