"""Tests for the experiment runner plumbing (sizing, priors, comparisons)."""

import pytest

from repro.core.llmsched import LLMSchedConfig
from repro.experiments.runner import (
    ComparisonResult,
    ExperimentSettings,
    PAPER_BASELINES,
    SweepCell,
    build_priors,
    build_profiler,
    run_cells_parallel,
    run_comparison,
    run_single,
    run_single_open_loop,
    size_cluster_for_workload,
    sweep_arrival_rates,
    sweep_decision_latency,
)
from repro.simulator.async_sched import AsyncConfig
from repro.simulator.metrics import SimulationMetrics
from repro.workloads.arrivals import OpenLoopSpec, PoissonProcess
from repro.workloads.mixtures import WorkloadSpec, WorkloadType, default_applications

#: Tiny settings so every experiment-level test stays fast.
TINY = ExperimentSettings(profile_jobs=30, prior_samples=15, llmsched=LLMSchedConfig(seed=0))


@pytest.fixture(scope="module")
def prepared():
    applications = default_applications()
    priors = build_priors(applications, TINY)
    profiler = build_profiler(applications, TINY)
    return applications, priors, profiler


class TestSettings:
    def test_invalid_target_load(self):
        with pytest.raises(ValueError):
            ExperimentSettings(target_load=0.0)
        with pytest.raises(ValueError):
            ExperimentSettings(target_load=2.5)

    def test_paper_baseline_order(self):
        assert PAPER_BASELINES == ["fcfs", "sjf", "fair", "argus", "decima", "carbyne"]


class TestPreparation:
    def test_priors_cover_all_applications(self, prepared):
        applications, priors, _ = prepared
        for name in applications:
            assert priors.knows(name)
            assert priors.mean_duration(name) > 0

    def test_profiler_covers_all_applications(self, prepared):
        applications, _, profiler = prepared
        assert set(profiler.applications) == set(applications)

    def test_cluster_sizing_scales_with_workload(self, prepared):
        applications, _, _ = prepared
        heavy = size_cluster_for_workload(
            WorkloadSpec(WorkloadType.PREDEFINED, num_jobs=50, arrival_rate=0.9), applications, TINY
        )
        light = size_cluster_for_workload(
            WorkloadSpec(WorkloadType.PLANNING, num_jobs=50, arrival_rate=0.9), applications, TINY
        )
        # Predefined jobs carry far more LLM work per job than planning jobs.
        assert heavy.num_llm_executors > light.num_llm_executors
        assert light.num_regular_executors >= 2

    def test_cluster_sizing_scales_with_arrival_rate(self, prepared):
        applications, _, _ = prepared
        slow = size_cluster_for_workload(
            WorkloadSpec(WorkloadType.MIXED, num_jobs=50, arrival_rate=0.5), applications, TINY
        )
        fast = size_cluster_for_workload(
            WorkloadSpec(WorkloadType.MIXED, num_jobs=50, arrival_rate=1.5), applications, TINY
        )
        assert fast.num_llm_executors >= slow.num_llm_executors


class TestRuns:
    def test_run_single_produces_metrics(self, prepared):
        applications, priors, profiler = prepared
        spec = WorkloadSpec(WorkloadType.CHAIN, num_jobs=15, arrival_rate=1.0, seed=2)
        metrics = run_single(
            "fcfs", spec, applications=applications, settings=TINY, priors=priors, profiler=profiler
        )
        assert isinstance(metrics, SimulationMetrics)
        assert len(metrics.job_completion_times) == 15

    @pytest.mark.parametrize(
        "name", ["llmsched", "llmsched_wo_bn", "llmsched_wo_uncertainty", "llmsched_wo_calibration"]
    )
    def test_llmsched_variants_run(self, prepared, name):
        applications, priors, profiler = prepared
        spec = WorkloadSpec(WorkloadType.PLANNING, num_jobs=12, arrival_rate=1.0, seed=3)
        metrics = run_single(
            name, spec, applications=applications, settings=TINY, priors=priors, profiler=profiler
        )
        assert metrics.scheduler_name == name
        assert len(metrics.job_completion_times) == 12

    def test_run_comparison_shares_workload_draw(self, prepared):
        applications, priors, profiler = prepared
        spec = WorkloadSpec(WorkloadType.MIXED, num_jobs=18, arrival_rate=1.2, seed=4)
        result = run_comparison(
            spec, ["fcfs", "sjf"], applications=applications, settings=TINY,
            priors=priors, profiler=profiler,
        )
        assert isinstance(result, ComparisonResult)
        assert set(result.average_jcts()) == {"fcfs", "sjf"}
        normalized = result.normalized_to("fcfs")
        assert normalized["fcfs"] == pytest.approx(1.0)
        improvement = result.improvement_over("fcfs", target="sjf")
        assert improvement == pytest.approx(1.0 - normalized["sjf"])

    def test_run_single_open_loop(self, prepared):
        applications, priors, profiler = prepared
        spec = OpenLoopSpec(process=PoissonProcess(rate=1.0, seed=5), seed=5, max_jobs=15)
        metrics = run_single_open_loop(
            "fcfs", spec, applications=applications, settings=TINY,
            priors=priors, profiler=profiler,
        )
        assert len(metrics.job_completion_times) == 15
        assert metrics.workload_name == "open_loop"

    def test_open_loop_sizing_requires_a_rate(self, prepared):
        applications, priors, profiler = prepared
        spec = OpenLoopSpec(process=PoissonProcess(rate=1.0, seed=5).take(5), seed=5)
        with pytest.raises(ValueError, match="nominal_rate"):
            run_single_open_loop(
                "fcfs", spec, applications=applications, settings=TINY,
                priors=priors, profiler=profiler,
            )


class TestParallelSweeps:
    def test_run_cells_parallel_matches_serial(self):
        spec = WorkloadSpec(WorkloadType.MIXED, num_jobs=10, arrival_rate=1.0, seed=6)
        cells = [SweepCell("fcfs", spec), SweepCell("sjf", spec)]
        serial = run_cells_parallel(cells, settings=TINY, processes=1)
        parallel = run_cells_parallel(cells, settings=TINY, processes=2)
        assert [c.scheduler_name for c, _ in serial] == [c.scheduler_name for c, _ in parallel]
        for (_, a), (_, b) in zip(serial, parallel, strict=True):
            # Workers must reproduce the in-process results bit for bit.
            assert a.job_completion_times == b.job_completion_times

    def test_sweep_arrival_rates_groups_by_rate(self):
        base = WorkloadSpec(WorkloadType.MIXED, num_jobs=10, arrival_rate=1.0, seed=6)
        results = sweep_arrival_rates(
            [0.8, 1.6], ["fcfs", "sjf"], base_spec=base, settings=TINY, processes=2
        )
        assert set(results) == {0.8, 1.6}
        for rate, comparison in results.items():
            assert comparison.workload.arrival_rate == rate
            assert set(comparison.metrics) == {"fcfs", "sjf"}
            assert all(
                len(m.job_completion_times) == 10 for m in comparison.metrics.values()
            )

    def test_sweep_validates_inputs(self):
        with pytest.raises(ValueError):
            sweep_arrival_rates([], ["fcfs"])
        with pytest.raises(ValueError):
            sweep_arrival_rates([1.0], [])

    def test_sweep_decision_latency_groups_by_latency(self):
        base = WorkloadSpec(WorkloadType.MIXED, num_jobs=10, arrival_rate=1.0, seed=6)
        results = sweep_decision_latency(
            [0.0, 2.0], ["fcfs", "sjf"], base_spec=base, settings=TINY, processes=2
        )
        assert set(results) == {0.0, 2.0}
        for comparison in results.values():
            assert set(comparison.metrics) == {"fcfs", "sjf"}
            assert all(
                len(m.job_completion_times) == 10 for m in comparison.metrics.values()
            )
        # Latency 0 is the synchronous engine bit for bit.
        sync = run_single("fcfs", base, settings=TINY)
        assert (
            results[0.0].metrics["fcfs"].job_completion_times
            == sync.job_completion_times
        )
        # Charged latency must not help.
        assert (
            results[2.0].metrics["fcfs"].average_jct
            >= results[0.0].metrics["fcfs"].average_jct
        )

    def test_sweep_decision_latency_validates_inputs(self):
        with pytest.raises(ValueError):
            sweep_decision_latency([], ["fcfs"])
        with pytest.raises(ValueError):
            sweep_decision_latency([1.0], [])
        with pytest.raises(ValueError):
            sweep_decision_latency([-1.0], ["fcfs"])

    def test_run_single_async_config_plumbed(self):
        spec = WorkloadSpec(WorkloadType.MIXED, num_jobs=10, arrival_rate=1.5, seed=6)
        metrics = run_single(
            "fcfs", spec, settings=TINY, async_config=AsyncConfig(latency=1.0)
        )
        assert metrics.num_async_decisions > 0
        assert len(metrics.job_completion_times) == 10


class TestPlacementAndAutoscaling:
    def _pools(self):
        from repro.dag.task import TaskType
        from repro.simulator.pool import PoolSpec

        return (
            PoolSpec("cpu", TaskType.REGULAR, 4),
            PoolSpec("gpu-a", TaskType.LLM, 1, max_batch_size=4),
            PoolSpec("gpu-b", TaskType.LLM, 1, max_batch_size=4),
        )

    def test_sweep_placement_policies(self):
        from repro.experiments.runner import sweep_placement_policies

        spec = WorkloadSpec(WorkloadType.MIXED, num_jobs=8, arrival_rate=1.2, seed=6)
        results = sweep_placement_policies(
            ["greedy", "best_fit"], self._pools(), scheduler_name="fcfs",
            base_spec=spec, settings=TINY, processes=1,
        )
        assert set(results) == {"greedy", "best_fit"}
        for metrics in results.values():
            assert len(metrics.job_completion_times) == 8

    def test_run_autoscaled_diurnal(self, prepared):
        from repro.dag.task import TaskType
        from repro.experiments.runner import run_autoscaled_diurnal
        from repro.simulator.autoscaler import AutoscalerConfig
        from repro.simulator.pool import PoolSpec
        from repro.workloads.arrivals import DiurnalProcess

        applications, priors, profiler = prepared
        spec = OpenLoopSpec(
            process=DiurnalProcess(mean_rate=1.0, amplitude=0.9, period=300.0, seed=4),
            seed=4,
            max_jobs=40,
            name="diurnal",
        )
        pools = (
            PoolSpec("cpu", TaskType.REGULAR, 2, min_executors=2, max_executors=16),
            PoolSpec("gpu", TaskType.LLM, 1, max_batch_size=4, min_executors=1, max_executors=8),
        )
        metrics = run_autoscaled_diurnal(
            "fcfs", spec, pools,
            autoscaler_config=AutoscalerConfig(interval=15.0, step=2),
            applications=applications, settings=TINY, priors=priors, profiler=profiler,
        )
        assert len(metrics.job_completion_times) == 40
        assert metrics.scale_events


class TestFederation:
    def test_split_cluster_config_preserves_totals(self):
        from repro.experiments.runner import split_cluster_config
        from repro.simulator.cluster import ClusterConfig

        total = ClusterConfig(num_regular_executors=10, num_llm_executors=5, max_batch_size=4)
        shards = split_cluster_config(total, 4)
        assert sum(c.num_regular_executors for c in shards) == 10
        assert sum(c.num_llm_executors for c in shards) == 5
        assert all(c.num_llm_executors >= 1 for c in shards)
        assert all(c.max_batch_size == 4 for c in shards)
        with pytest.raises(ValueError, match="cannot split"):
            split_cluster_config(total, 6)  # only 5 LLM executors to go around

    def test_run_federated(self, prepared):
        from repro.experiments.runner import run_federated
        from repro.simulator.cluster import ClusterConfig
        from repro.simulator.federation import MigrationConfig

        applications, priors, profiler = prepared
        spec = OpenLoopSpec(
            process=PoissonProcess(rate=2.0, seed=5), seed=5, max_jobs=30, name="poisson"
        )
        metrics = run_federated(
            "fcfs",
            spec,
            num_shards=2,
            cluster_config=ClusterConfig(num_regular_executors=6, num_llm_executors=2),
            migration=MigrationConfig(interval=20.0, imbalance_threshold=0.3),
            applications=applications,
            settings=TINY,
            priors=priors,
            profiler=profiler,
        )
        assert len(metrics.job_completion_times) == 30
        assert set(metrics.shards) == {"shard-0", "shard-1"}
        assert metrics.router_name == "least_loaded"

    def test_sweep_shard_counts_same_jobs_every_cell(self):
        from repro.experiments.runner import sweep_shard_counts
        from repro.simulator.cluster import ClusterConfig

        spec = OpenLoopSpec(
            process=PoissonProcess(rate=3.0, seed=9), seed=9, max_jobs=24, name="poisson"
        )
        results = sweep_shard_counts(
            [1, 2],
            spec,
            ClusterConfig(num_regular_executors=8, num_llm_executors=4),
            scheduler_name="fcfs",
            settings=TINY,
            processes=1,
        )
        assert set(results) == {1, 2}
        jobs_1 = set(results[1].job_completion_times)
        jobs_2 = set(results[2].job_completion_times)
        assert jobs_1 == jobs_2  # identical stream replayed per cell
        assert len(results[2].shards) == 2

    def test_sweep_shard_counts_validates_inputs(self):
        from repro.experiments.runner import sweep_shard_counts
        from repro.simulator.cluster import ClusterConfig

        spec = OpenLoopSpec(process=PoissonProcess(rate=1.0, seed=1), seed=1, max_jobs=5)
        with pytest.raises(ValueError):
            sweep_shard_counts([], spec, ClusterConfig())
