"""Token-model workload tests: seeded sampling, pure decomposition, serving
accounting invariants — and the tentpole opt-in guarantee: attaching the
token model leaves every incumbent scheduler's golden trace bit-identical,
because prefill/decode is a pure decomposition of the existing ``work`` and
token events are observation only.
"""

import json

import pytest

from repro.dag.task import TaskType
from repro.simulator.cluster import Cluster
from repro.simulator.engine import SimulationEngine
from repro.workloads.mixtures import generate_workload
from repro.workloads.serving import (
    DEFAULT_SLO_TARGETS,
    TOKEN_MIXES,
    attach_token_model,
    available_token_mixes,
)

# Reuse the golden harness (same workload draw, cluster, scheduler builds)
# so the token-enabled runs are compared against the *committed* traces.
from test_golden_traces import (
    CLUSTER,
    GOLDEN_DIR,
    SCHEDULER_NAMES,
    SPEC,
    make_scheduler,
)
from repro.core.profiler import BayesianProfiler
from repro.schedulers.priors import ApplicationPriors
from repro.workloads.mixtures import default_applications


@pytest.fixture(scope="module")
def applications():
    return default_applications()


@pytest.fixture(scope="module")
def priors(applications):
    return ApplicationPriors.from_applications(applications.values(), n_samples=40, seed=9)


@pytest.fixture(scope="module")
def profiler(applications):
    profiler = BayesianProfiler()
    profiler.fit(applications.values(), n_profile_jobs=40, seed=9)
    return profiler


def llm_tasks(jobs):
    return [
        task
        for job in jobs
        for stage in job.stages.values()
        for task in stage.tasks
        if task.task_type is TaskType.LLM
    ]


class TestTokenModel:
    def test_available_mixes(self):
        assert set(available_token_mixes()) == set(TOKEN_MIXES) >= {
            "chat",
            "batch",
            "agentic",
        }
        for tier, targets in DEFAULT_SLO_TARGETS.items():
            assert set(targets) <= {"ttft", "tpot"}
            assert all(v > 0 for v in targets.values()), tier

    def test_attach_unknown_mix_raises(self):
        jobs = generate_workload(SPEC)
        with pytest.raises(ValueError, match="chat"):
            attach_token_model(jobs, "bogus-mix")

    def test_attach_is_deterministic(self, applications):
        def draw(seed):
            jobs = generate_workload(SPEC, applications=applications)
            attach_token_model(jobs, "chat", seed=seed)
            return [
                (t.prompt_tokens, t.output_tokens, t.prefill_work)
                for t in llm_tasks(jobs)
            ]

        assert draw(5) == draw(5)
        assert draw(5) != draw(6)

    def test_attach_is_pure_decomposition(self, applications):
        jobs = generate_workload(SPEC, applications=applications)
        baseline_work = [t.work for t in llm_tasks(jobs)]
        attach_token_model(jobs, "agentic", seed=3)
        tasks = llm_tasks(jobs)
        assert [t.work for t in tasks] == baseline_work  # work untouched
        for task in tasks:
            assert task.has_token_model
            # The executor still advances the original float `work` — the
            # phases are a view over it (decode_work := work - prefill_work),
            # which is what keeps legacy traces bit-identical.
            assert task.prefill_work + task.decode_work == pytest.approx(
                task.work, rel=1e-12
            )
            assert 0.0 <= task.prefill_work <= task.work
            assert task.prompt_tokens >= 1
            assert task.output_tokens >= 1
        tiers = {job.priority for job in jobs}
        mix_tiers = {profile.tier for profile, _ in TOKEN_MIXES["agentic"]}
        assert tiers <= mix_tiers | {"default"}


class TestGoldenIdentityWithTokens:
    """Token model attached, schedulers unchanged => traces unchanged."""

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_token_enabled_trace_matches_golden(
        self, name, priors, profiler, applications
    ):
        jobs = generate_workload(SPEC, applications=applications)
        attach_token_model(jobs, "chat", seed=3)
        engine = SimulationEngine(
            jobs,
            make_scheduler(name, priors, profiler),
            cluster=Cluster(CLUSTER),
            workload_name=SPEC.workload_type.value,
        )
        engine.metrics.slo_targets = {t: dict(v) for t, v in DEFAULT_SLO_TARGETS.items()}
        metrics = engine.run()
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert dict(sorted(metrics.job_completion_times.items())) == golden["jct"]
        assert metrics.makespan == golden["makespan"]
        assert metrics.num_tasks_executed == golden["num_tasks_executed"]
        # ...and the run now carries serving samples on top.
        assert metrics.has_serving_samples


class TestServingAccountingInvariants:
    @pytest.fixture(scope="class")
    def finished_run(self, applications):
        jobs = generate_workload(SPEC, applications=applications)
        attach_token_model(jobs, "chat", seed=3)
        engine = SimulationEngine(
            jobs,
            make_scheduler("fcfs", None, None),
            cluster=Cluster(CLUSTER),
        )
        engine.metrics.slo_targets = {t: dict(v) for t, v in DEFAULT_SLO_TARGETS.items()}
        metrics = engine.run()
        return jobs, metrics

    def test_tokens_out_equal_tokens_sampled_over_executed_tasks(self, finished_run):
        jobs, metrics = finished_run
        executed = [
            t
            for t in llm_tasks(jobs)
            if t.has_token_model and t.finish_time is not None
        ]
        summary = metrics.serving_summary()
        assert summary["num_requests"] == len(executed) > 0
        assert summary["total_output_tokens"] == sum(t.output_tokens for t in executed)
        assert summary["total_prompt_tokens"] == sum(t.prompt_tokens for t in executed)

    def test_ttft_at_least_queue_plus_prefill(self, finished_run):
        jobs, metrics = finished_run
        for request in metrics.serving_requests:
            assert request["ttft"] >= 0.0
            assert request["first_token_time"] >= request["ready_time"]
            if request["tpot"] is not None:
                assert request["tpot"] >= 0.0
        # Executors never run faster than speed 1, so the first token can
        # never beat the request's own prefill work.
        for task in llm_tasks(jobs):
            if task.first_token_time is None or not task.has_token_model:
                continue
            assert (
                task.first_token_time - task.ready_time >= task.prefill_work - 1e-9
            )

    def test_serving_summary_goodput_within_bounds(self, finished_run):
        _, metrics = finished_run
        summary = metrics.serving_summary()
        assert 0.0 <= summary["goodput_overall"] <= 1.0
        for tier, value in summary["goodput"].items():
            assert 0.0 <= value <= 1.0, tier
        assert summary["tps_per_gpu"] > 0.0
        assert summary["tps_per_user"] > 0.0
