"""Tests for the six application generators.

Besides structural correctness these tests check that the synthetic
generators reproduce the characteristics reported in the paper's workload
analysis (Section III): job-duration ranges, chain-length ranges, generated
stage counts, and strong inter-stage duration correlations.
"""

import numpy as np
import pytest

from repro.dag.stage import StageType
from repro.utils.rng import make_rng
from repro.utils.stats import pearson_correlation
from repro.workloads import (
    CodeGenerationApplication,
    DocumentMergingApplication,
    LlmCompilerApplication,
    SequenceSortingApplication,
    TaskAutomationApplication,
    WebSearchApplication,
)

ALL_APPLICATIONS = [
    SequenceSortingApplication,
    DocumentMergingApplication,
    CodeGenerationApplication,
    WebSearchApplication,
    TaskAutomationApplication,
    LlmCompilerApplication,
]


@pytest.mark.parametrize("app_cls", ALL_APPLICATIONS)
class TestCommonApplicationContract:
    def test_sample_job_is_well_formed(self, app_cls):
        app = app_cls()
        job = app.sample_job("j0", 1.5, make_rng(0))
        assert job.application == app.name
        assert job.arrival_time == 1.5
        assert len(job.stages) >= 2
        assert not job.is_finished
        # At least one stage must be immediately schedulable.
        assert job.schedulable_stages()

    def test_profile_variables_unique_and_edges_consistent(self, app_cls):
        app = app_cls()
        variables = app.profile_variables()
        assert len(variables) == len(set(variables))
        for parent, child in app.profile_edges():
            assert parent in variables
            assert child in variables

    def test_stage_profile_keys_are_known_variables(self, app_cls):
        app = app_cls()
        variables = set(app.profile_variables())
        job = app.sample_job("j0", 0.0, make_rng(1))
        for stage in job.stages.values():
            if stage.is_dynamic:
                continue
            assert stage.profile_key in variables

    def test_llm_profile_keys_subset_of_variables(self, app_cls):
        app = app_cls()
        assert set(app.llm_profile_keys()) <= set(app.profile_variables())

    def test_estimate_mean_duration_positive(self, app_cls):
        app = app_cls()
        assert app.estimate_mean_duration(make_rng(2), n_samples=10) > 0

    def test_sample_jobs_batch(self, app_cls):
        app = app_cls()
        jobs = app.sample_jobs(5, make_rng(3), arrival_times=[0, 1, 2, 3, 4])
        assert len(jobs) == 5
        assert [j.arrival_time for j in jobs] == [0, 1, 2, 3, 4]
        assert len({j.job_id for j in jobs}) == 5


def complete_job_serially(job):
    """Complete every schedulable stage in topological order; return makespan."""
    time = job.arrival_time
    while not job.is_finished:
        stages = job.schedulable_stages()
        assert stages, f"job {job.job_id} deadlocked"
        for stage in stages:
            stage.mark_running()
            for task in stage.tasks:
                task.mark_running(time, "e")
                task.mark_finished(time + task.work)
            time = max(time, max(t.finish_time for t in stage.tasks))
            job.notify_stage_finished(stage.stage_id, time)
    return time


@pytest.mark.parametrize("app_cls", ALL_APPLICATIONS)
class TestJobsRunToCompletion:
    def test_serial_execution_terminates(self, app_cls):
        app = app_cls()
        rng = make_rng(7)
        for i in range(5):
            job = app.sample_job(f"j{i}", 0.0, rng)
            complete_job_serially(job)
            assert job.is_finished
            assert job.jct is not None and job.jct >= 0


class TestSequenceSortingCharacteristics:
    def test_duration_range_matches_paper(self):
        """Paper Fig. 1a: job durations roughly 10s to 300s, widely spread."""
        app = SequenceSortingApplication()
        rng = make_rng(0)
        totals = [app.sample_job(f"j{i}", 0.0, rng).true_total_work for i in range(300)]
        assert min(totals) > 5.0
        assert max(totals) < 400.0
        assert np.std(totals) > 5.0

    def test_split_and_sort_durations_correlated(self):
        """Paper Fig. 5a: stage 0 and stage 3 correlation around 0.7."""
        app = SequenceSortingApplication()
        rng = make_rng(1)
        splits, sorts = [], []
        for i in range(300):
            job = app.sample_job(f"j{i}", 0.0, rng)
            splits.append(job.stage("ss_split").total_work)
            sorts.append(job.stage("ss_sort_1").total_work)
        assert pearson_correlation(splits, sorts) > 0.4

    def test_all_stages_execute(self):
        app = SequenceSortingApplication()
        job = app.sample_job("j0", 0.0, make_rng(2))
        assert all(s.will_execute for s in job.stages.values())


class TestCodeGenerationCharacteristics:
    def test_chain_length_range(self):
        """Paper Fig. 1b: executed chain length between 3 and 15 stages."""
        app = CodeGenerationApplication()
        rng = make_rng(0)
        lengths = []
        for i in range(300):
            job = app.sample_job(f"j{i}", 0.0, rng)
            executed = sum(1 for s in job.stages.values() if s.will_execute)
            lengths.append(executed)
        assert min(lengths) >= 3
        assert max(lengths) <= 15
        assert len(set(lengths)) > 2

    def test_padded_chain_has_fifteen_stages(self):
        app = CodeGenerationApplication()
        assert len(app.profile_variables()) == 15
        job = app.sample_job("j0", 0.0, make_rng(1))
        assert len(job.stages) == 15

    def test_iteration_durations_strongly_correlated(self):
        """Paper Fig. 5b: successive code-gen stages correlate strongly."""
        app = CodeGenerationApplication()
        rng = make_rng(2)
        first, second = [], []
        for i in range(400):
            job = app.sample_job(f"j{i}", 0.0, rng)
            if job.stage("cg_codegen_1").will_execute:
                first.append(job.stage("cg_codegen_0").total_work)
                second.append(job.stage("cg_codegen_1").total_work)
        assert len(first) > 30
        assert pearson_correlation(first, second) > 0.5

    def test_duration_range_matches_paper(self):
        """Paper: code generation jobs take roughly 2s to 50s."""
        app = CodeGenerationApplication()
        rng = make_rng(3)
        totals = [app.sample_job(f"j{i}", 0.0, rng).true_total_work for i in range(300)]
        assert min(totals) > 1.0
        assert max(totals) < 80.0


class TestWebSearchCharacteristics:
    def test_rounds_bounded(self):
        app = WebSearchApplication()
        rng = make_rng(0)
        for i in range(50):
            job = app.sample_job(f"j{i}", 0.0, rng)
            executed = sum(1 for s in job.stages.values() if s.will_execute)
            assert 1 <= executed <= 1 + 2 * app.MAX_ROUNDS

    def test_think_stages_are_llm(self):
        app = WebSearchApplication()
        job = app.sample_job("j0", 0.0, make_rng(1))
        assert job.stage("ws_think_0").stage_type is StageType.LLM
        assert job.stage("ws_search_1").stage_type is StageType.REGULAR


class TestTaskAutomationCharacteristics:
    def test_generated_stage_count_matches_paper(self):
        """Paper Fig. 1c: 1 to 8 generated stages per job."""
        app = TaskAutomationApplication()
        rng = make_rng(0)
        counts = []
        for i in range(300):
            job = app.sample_job(f"j{i}", 0.0, rng)
            tools = [s for s in job.stages.values() if s.stage_id.startswith("tool_")]
            counts.append(len(tools))
        assert min(counts) >= 1
        assert max(counts) <= 8
        assert len(set(counts)) >= 4

    def test_tools_hidden_until_planner_finishes(self):
        app = TaskAutomationApplication()
        job = app.sample_job("j0", 0.0, make_rng(1))
        hidden = [s for s in job.stages.values() if s.stage_id.startswith("tool_")]
        assert hidden
        assert all(not s.visible for s in hidden)
        assert {s.stage_id for s in job.schedulable_stages()} == {"ta_plan"}

    def test_dynamic_candidates_exposed(self):
        app = TaskAutomationApplication()
        candidates = app.dynamic_candidates()[app.DYNAMIC_KEY]
        assert len(candidates) == len(app.TOOLS)
        assert all(0 < c.selection_probability < 1 for c in candidates)

    def test_duration_range_has_long_tail(self):
        """Paper: task automation jobs range from ~1s to ~116s."""
        app = TaskAutomationApplication()
        rng = make_rng(2)
        totals = [app.sample_job(f"j{i}", 0.0, rng).true_total_work for i in range(400)]
        assert min(totals) < 10.0
        assert max(totals) > 30.0
        assert max(totals) < 200.0


class TestLlmCompilerCharacteristics:
    def test_parallel_calls_between_two_and_six(self):
        app = LlmCompilerApplication()
        rng = make_rng(0)
        for i in range(100):
            job = app.sample_job(f"j{i}", 0.0, rng)
            calls = [s for s in job.stages.values() if s.stage_id.startswith("call_")]
            assert 2 <= len(calls) <= 6

    def test_join_runs_after_all_calls(self):
        app = LlmCompilerApplication()
        job = app.sample_job("j0", 0.0, make_rng(1))
        parents_of_join = set(job.parents(app.JOIN_KEY))
        assert app.DYNAMIC_KEY in parents_of_join

    def test_plan_and_join_are_llm_stages(self):
        app = LlmCompilerApplication()
        job = app.sample_job("j0", 0.0, make_rng(2))
        assert job.stage(app.PLAN_KEY).is_llm
        assert job.stage(app.JOIN_KEY).is_llm
