"""Tests for validation helpers."""

import pytest

from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x"):
            require_positive(0.0, "x")
        with pytest.raises(ValueError):
            require_positive(-1, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestRequireProbability:
    def test_accepts_bounds(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_probability(1.5, "p")
        with pytest.raises(ValueError):
            require_probability(-0.5, "p")


class TestRequireInRange:
    def test_accepts_inside(self):
        assert require_in_range(5, 0, 10, "x") == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(11, 0, 10, "x")
