"""Both engines must satisfy the shared SimulationEngineProtocol contract."""

import pytest

from repro.schedulers.fcfs import FcfsScheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.federation import FederatedCluster, FederatedSimulationEngine
from repro.simulator.protocol import SimulationEngineProtocol, ensure_engine_protocol
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=12, arrival_rate=1.5, seed=3)
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)


@pytest.fixture(scope="module")
def applications():
    return default_applications()


def fresh_jobs(applications):
    # Jobs are mutable runtime objects; every engine needs its own draw.
    return generate_workload(SPEC, applications=applications)


def single_engine(applications):
    return SimulationEngine(
        fresh_jobs(applications), FcfsScheduler(), cluster=Cluster(CLUSTER)
    )


def federated_engine(applications):
    fleet = FederatedCluster([("s0", Cluster(CLUSTER)), ("s1", Cluster(CLUSTER))])
    return FederatedSimulationEngine(fresh_jobs(applications), FcfsScheduler, fleet)


class TestProtocolConformance:
    def test_single_engine_satisfies_protocol(self, applications):
        engine = single_engine(applications)
        assert isinstance(engine, SimulationEngineProtocol)
        assert ensure_engine_protocol(engine) is engine

    def test_federated_engine_satisfies_protocol(self, applications):
        engine = federated_engine(applications)
        assert isinstance(engine, SimulationEngineProtocol)
        assert ensure_engine_protocol(engine) is engine

    def test_non_engine_rejected(self):
        class NotAnEngine:
            def run(self):
                return None

        with pytest.raises(TypeError, match="SimulationEngineProtocol"):
            ensure_engine_protocol(NotAnEngine())


class TestStepSemantics:
    """step()-until-False + finalize() must equal run() on both engines."""

    @pytest.mark.parametrize("factory", [single_engine, federated_engine])
    def test_manual_stepping_matches_run(self, factory, applications):
        ran = factory(applications).run()
        stepped_engine = factory(applications)
        steps = 0
        while stepped_engine.step():
            steps += 1
        stepped = stepped_engine.finalize()
        assert steps > 0
        assert stepped.job_completion_times == ran.job_completion_times
        assert stepped.makespan == ran.makespan

    @pytest.mark.parametrize("factory", [single_engine, federated_engine])
    def test_step_false_after_drain(self, factory, applications):
        engine = factory(applications)
        while engine.step():
            pass
        # Once drained, further steps are no-ops returning False.
        assert engine.step() is False
        assert engine.step() is False

    @pytest.mark.parametrize("factory", [single_engine, federated_engine])
    def test_clock_monotone_across_steps(self, factory, applications):
        engine = factory(applications)
        last = engine.current_time
        while engine.step():
            assert engine.current_time >= last
            last = engine.current_time
