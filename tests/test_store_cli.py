"""``python -m repro store ...`` behavior through the real argv entry point."""

import json
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.store import RunStore

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture()
def ingested(tmp_path):
    root = tmp_path / "store"
    rc = main(
        [
            "store", "ingest", str(root),
            str(REPO_ROOT / "BENCH_4.json"),
            str(REPO_ROOT / "BENCH_6.json"),
        ]
    )
    assert rc == 0
    return root


class TestIngestListQuery:
    def test_ingest_reports_dedup(self, ingested, capsys):
        rc = main(["store", "ingest", str(ingested), str(REPO_ROOT / "BENCH_4.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0/33 new record(s)" in out

    def test_list(self, ingested, capsys):
        rc = main(["store", "list", str(ingested)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "record(s)" in out
        assert "slo_serving_pareto" in out

    def test_query_human(self, ingested, capsys):
        rc = main(["store", "query", str(ingested), "--kind", "section"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.strip().endswith("matching record(s)")

    def test_query_json_merges_payload(self, ingested, capsys):
        rc = main(
            [
                "store", "query", str(ingested), "--kind", "result",
                "--label", "fcfs@0s", "--format", "json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        (payload,) = json.loads(out)
        assert payload["label"] == "fcfs@0s"
        assert "average_jct" in payload["merged_payload"]["metrics"]

    def test_query_verify_flags_tampering(self, ingested, capsys):
        store = RunStore(ingested)
        victim = store.record_ids()[0]
        path = store._record_path(victim)
        data = json.loads(path.read_text())
        data["payload"]["tampered"] = True
        path.write_text(json.dumps(data) + "\n")
        rc = main(["store", "query", str(ingested), "--verify"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "integrity" in err


class TestDiff:
    def test_diff_identical(self, ingested, capsys):
        store = RunStore(ingested)
        rid = store.record_ids()[0]
        rc = main(["store", "diff", str(ingested), rid, rid])
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical payloads" in out

    def test_diff_different_records(self, ingested, capsys):
        store = RunStore(ingested)
        labels = {r.label: r.record_id for r in store.records() if r.label}
        rc = main(
            ["store", "diff", str(ingested),
             labels["fcfs@0s"][:12], labels["fcfs@5s"][:12]]
        )
        out = capsys.readouterr().out
        assert rc == 1  # differences found
        assert "metrics.average_jct" in out

    def test_diff_ambiguous_prefix(self, ingested, capsys):
        rc = main(["store", "diff", str(ingested), "", ""])
        err = capsys.readouterr().err
        assert rc == 1
        assert "ambiguous" in err


class TestReport:
    def test_report_tables_match_readme(self, ingested, capsys):
        rc = main(["store", "report", str(ingested)])
        out = capsys.readouterr().out
        readme = (REPO_ROOT / "README.md").read_text()
        assert rc == 0
        async_table, pareto_table = out.split("\n\n")
        assert async_table + "\n" in readme
        assert pareto_table in readme

    def test_report_out_writes_byte_exact_artifacts(self, ingested, tmp_path, capsys):
        out_dir = tmp_path / "regen"
        rc = main(
            ["store", "report", str(ingested), "--table", "none", "--out", str(out_dir)]
        )
        capsys.readouterr()
        assert rc == 0
        for name in ("BENCH_4.json", "BENCH_6.json"):
            assert (out_dir / name).read_text() == (REPO_ROOT / name).read_text(), name

    def test_report_single_bench_to_stdout(self, ingested, capsys):
        rc = main(["store", "report", str(ingested), "--table", "none", "--bench", "BENCH_4.json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out == (REPO_ROOT / "BENCH_4.json").read_text()

    def test_report_empty_store_errors(self, tmp_path, capsys):
        rc = main(["store", "report", str(tmp_path / "nothing"), "--table", "pareto"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err


class TestRunStoreFlag:
    def test_run_records_into_store(self, tmp_path, capsys):
        spec = {
            "schema_version": 2,
            "scheduler": {"name": "fcfs"},
            "workload": {
                "mode": "closed", "workload_type": "mixed",
                "num_jobs": 6, "arrival_rate": 1.2, "seed": 7,
            },
            "cluster": {"config": {
                "num_regular_executors": 2, "num_llm_executors": 1,
                "max_batch_size": 4,
            }},
        }
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps(spec))
        root = tmp_path / "store"
        assert main(["run", str(spec_path), "--store", str(root)]) == 0
        capsys.readouterr()
        store = RunStore(root)
        assert len(store) == 1
        (record,) = store.records(verify=True)
        assert record.scheduler == "fcfs" and record.seed == 7
