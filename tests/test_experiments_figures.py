"""Tests for the figure/table regeneration modules (tiny scale)."""

import pytest

from repro.core.llmsched import LLMSchedConfig
from repro.experiments import (
    fig1_characterization,
    fig5_heatmap,
    fig7_simulation,
    fig10_ablation,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import ExperimentSettings
from repro.workloads.mixtures import WorkloadType

TINY = ExperimentSettings(profile_jobs=30, prior_samples=15, llmsched=LLMSchedConfig(seed=0))


class TestReport:
    def test_format_table_alignment_and_floats(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 7.0, "b": "longer"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text and "longer" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_series(self):
        text = format_series({0.1: 1.0, 0.2: 1.5}, "x", "y")
        assert "0.1" in text and "1.500" in text


class TestFig1:
    def test_run_shapes(self):
        results = fig1_characterization.run(n_jobs=60, seed=0)
        assert set(results) == {
            "fig1a_job_duration",
            "fig1b_chain_length",
            "fig1c_generated_stages",
        }
        assert sum(results["fig1a_job_duration"]["probability"]) == pytest.approx(1.0)
        assert sum(results["fig1b_chain_length"]["probability"].values()) == pytest.approx(1.0)
        assert 1 <= results["fig1c_generated_stages"]["min"]

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            fig1_characterization.run(n_jobs=5)

    def test_main_prints(self, capsys):
        fig1_characterization.main(["--n-jobs", "40"])
        out = capsys.readouterr().out
        assert "Fig. 1a" in out and "Fig. 1c" in out


class TestFig5:
    def test_matrices_symmetric_with_unit_diagonal(self):
        matrices = fig5_heatmap.run(n_jobs=80, seed=0)
        assert set(matrices) == {"sequence_sorting", "code_generation"}
        matrix = matrices["sequence_sorting"]
        for a in matrix:
            assert matrix[a][a] == 1.0
            for b in matrix:
                assert matrix[a][b] == pytest.approx(matrix[b][a])

    def test_invalid_n_jobs(self):
        with pytest.raises(ValueError):
            fig5_heatmap.run(n_jobs=2)


class TestFig7:
    def test_rows_cover_grid(self):
        rows = fig7_simulation.run(
            num_jobs_values=(12,),
            workload_types=(WorkloadType.PLANNING,),
            scheduler_names=("fcfs", "llmsched"),
            seed=1,
            settings=TINY,
        )
        assert len(rows) == 2
        assert {r["scheduler"] for r in rows} == {"fcfs", "llmsched"}
        assert all(r["average_jct"] > 0 for r in rows)


class TestFig10:
    def test_normalisation_and_calibration_ablation(self):
        rows = fig10_ablation.run(
            num_jobs=12,
            workload_types=(WorkloadType.CHAIN,),
            settings=TINY,
            include_calibration_ablation=True,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["llmsched_avg_jct"] > 0
        for key in ("wo_bn_norm", "wo_uncertainty_norm", "wo_calibration_norm"):
            assert row[key] > 0
