"""Golden-trace regression tests for the simulation engine.

Per registered scheduler, a small fixed workload is simulated and the
per-job JCTs and makespan are compared **exactly** (no tolerance) against a
recorded trace in ``tests/golden/``.  Any silent behavior drift in the
engine fast path — a reordered completion, a changed tie-break, a float
computed along a different path — shows up as a failed trace.

As a second line of defense, every trace is also recomputed with the
pre-refactor :class:`ReferenceSimulationEngine` and must match the fast
engine bit for bit.

Regenerate the traces (after an *intentional* behavior change) with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_traces.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.calibration import BatchingAwareCalibrator
from repro.core.llmsched import LLMSchedConfig, LLMSchedScheduler
from repro.core.profiler import BayesianProfiler
from repro.schedulers.priors import ApplicationPriors
from repro.schedulers.registry import available_schedulers, create_scheduler
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.engine import SimulationEngine
from repro.simulator.latency import DecodingLatencyProfile
from repro.simulator.reference import ReferenceSimulationEngine
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

SPEC = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=20, arrival_rate=1.2, seed=7)
CLUSTER = ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)

SCHEDULER_NAMES = available_schedulers(include_llmsched=True)


@pytest.fixture(scope="module")
def applications():
    return default_applications()


@pytest.fixture(scope="module")
def priors(applications):
    return ApplicationPriors.from_applications(applications.values(), n_samples=40, seed=9)


@pytest.fixture(scope="module")
def profiler(applications):
    profiler = BayesianProfiler()
    profiler.fit(applications.values(), n_profile_jobs=40, seed=9)
    return profiler


def make_scheduler(name, priors, profiler):
    if name == "llmsched":
        calibrator = BatchingAwareCalibrator(DecodingLatencyProfile(slope=0.06))
        return LLMSchedScheduler(profiler, config=LLMSchedConfig(), calibrator=calibrator)
    return create_scheduler(name, priors=priors)


def run_trace(engine_cls, name, priors, profiler, applications):
    jobs = generate_workload(SPEC, applications=applications)
    engine = engine_cls(
        jobs,
        make_scheduler(name, priors, profiler),
        cluster=Cluster(CLUSTER),
        workload_name=SPEC.workload_type.value,
    )
    metrics = engine.run()
    return {
        "scheduler": name,
        "workload": {
            "type": SPEC.workload_type.value,
            "num_jobs": SPEC.num_jobs,
            "arrival_rate": SPEC.arrival_rate,
            "seed": SPEC.seed,
        },
        "jct": dict(sorted(metrics.job_completion_times.items())),
        "makespan": metrics.makespan,
        "num_tasks_executed": metrics.num_tasks_executed,
    }


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_golden_trace(name, priors, profiler, applications):
    trace = run_trace(SimulationEngine, name, priors, profiler, applications)
    golden_path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(trace, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"updated {golden_path}")
    assert golden_path.exists(), (
        f"missing golden trace {golden_path}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(golden_path.read_text())
    # Exact comparison on purpose: JSON round-trips floats via repr, so any
    # difference here is a real behavior change, not serialization noise.
    assert trace["jct"] == golden["jct"]
    assert trace["makespan"] == golden["makespan"]
    assert trace["num_tasks_executed"] == golden["num_tasks_executed"]


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_fast_engine_matches_reference(name, priors, profiler, applications):
    fast = run_trace(SimulationEngine, name, priors, profiler, applications)
    reference = run_trace(ReferenceSimulationEngine, name, priors, profiler, applications)
    assert fast["jct"] == reference["jct"]
    assert fast["makespan"] == reference["makespan"]
    assert fast["num_tasks_executed"] == reference["num_tasks_executed"]
