"""Tests for the scheduler interface, priors, and decision validation."""

import pytest

from repro.dag.job import Job
from repro.dag.stage import Stage, StageSpec, StageType
from repro.dag.task import Task, TaskType
from repro.schedulers.base import (
    SchedulingContext,
    SchedulingDecision,
    flatten_stage_tasks,
    interleave_by_job,
    interleave_tasks,
)
from repro.schedulers.priors import ApplicationPriors
from repro.utils.rng import make_rng
from repro.workloads import SequenceSortingApplication, WebSearchApplication


def make_job(job_id="j0", arrival=0.0, llm_work=2.0, reg_work=1.0):
    job = Job(job_id, "app", arrival)
    job.add_stage(Stage(StageSpec("llm", StageType.LLM), job_id, [llm_work]))
    job.add_stage(Stage(StageSpec("reg", StageType.REGULAR), job_id, [reg_work]))
    job.add_dependency("llm", "reg")
    job.finalize()
    return job


class TestSchedulingDecision:
    def test_type_validation(self):
        llm = Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=1.0)
        reg = Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=1.0)
        with pytest.raises(ValueError):
            SchedulingDecision(regular_tasks=[llm])
        with pytest.raises(ValueError):
            SchedulingDecision(llm_tasks=[reg])

    def test_from_tasks_splits_by_type(self):
        llm = Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=1.0)
        reg = Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=1.0)
        decision = SchedulingDecision.from_tasks([llm, reg])
        assert decision.llm_tasks == [llm]
        assert decision.regular_tasks == [reg]
        assert decision.total_tasks == 2


class TestSchedulingContext:
    def test_schedulable_views(self):
        job = make_job()
        context = SchedulingContext(time=0.0, jobs=[job])
        stages = context.schedulable_stages()
        assert [s.stage_id for s in stages] == ["llm"]
        tasks = context.schedulable_tasks()
        assert len(tasks) == 1 and tasks[0].is_llm

    def test_job_of(self):
        job = make_job()
        context = SchedulingContext(time=0.0, jobs=[job])
        task = context.schedulable_tasks()[0]
        assert context.job_of(task) is job
        stray = Task(job_id="other", stage_id="s", task_type=TaskType.LLM, work=1.0)
        with pytest.raises(KeyError):
            context.job_of(stray)

    def test_average_llm_batch_size(self):
        context = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[2, 4])
        assert context.average_llm_batch_size == pytest.approx(3.0)
        empty = SchedulingContext(time=0.0, jobs=[])
        assert empty.average_llm_batch_size == 1.0

    def test_average_llm_batch_size_excludes_idle_executors(self):
        # Idle executors (batch 0) used to deflate the average — with one
        # busy executor at batch 4 and three idle ones the old code said
        # max(1.0, 4/4) = 1.0; a request landing on the busy executor
        # actually shares a batch of 4.
        context = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[4, 0, 0, 0])
        assert context.average_llm_batch_size == pytest.approx(4.0)
        mixed = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[0, 2, 0, 4])
        assert mixed.average_llm_batch_size == pytest.approx(3.0)
        all_idle = SchedulingContext(time=0.0, jobs=[], llm_batch_sizes=[0, 0])
        assert all_idle.average_llm_batch_size == 1.0

    def test_flatten_stage_tasks_keeps_order(self):
        job_a = make_job("a")
        job_b = make_job("b")
        stages = job_a.schedulable_stages() + job_b.schedulable_stages()
        tasks = flatten_stage_tasks(stages)
        assert [t.job_id for t in tasks] == ["a", "b"]

    def test_interleave_tasks_round_robins_across_stages(self):
        job_a = Job("a", "app", 0.0)
        job_a.add_stage(Stage(StageSpec("wide", StageType.REGULAR), "a", [1.0, 1.0, 1.0]))
        job_a.finalize()
        job_b = Job("b", "app", 0.0)
        job_b.add_stage(Stage(StageSpec("narrow", StageType.REGULAR), "b", [1.0]))
        job_b.finalize()
        stages = job_a.schedulable_stages() + job_b.schedulable_stages()
        # flatten: all of a's tasks first; interleave: one per stage per round.
        assert [t.job_id for t in flatten_stage_tasks(stages)] == ["a", "a", "a", "b"]
        assert [t.job_id for t in interleave_tasks(stages)] == ["a", "b", "a", "a"]
        assert interleave_tasks([]) == []

    def test_interleave_by_job_is_deprecated_alias(self):
        job_a = make_job("a")
        stages = job_a.schedulable_stages()
        with pytest.warns(DeprecationWarning, match="misnomer"):
            tasks = interleave_by_job(stages)
        assert tasks == flatten_stage_tasks(stages)


class TestApplicationPriors:
    def test_from_applications(self):
        apps = [SequenceSortingApplication(), WebSearchApplication()]
        priors = ApplicationPriors.from_applications(apps, n_samples=10, seed=0)
        assert priors.knows("sequence_sorting")
        assert priors.mean_duration("sequence_sorting") > priors.mean_duration("web_search")

    def test_estimate_total_falls_back_for_unknown_app(self):
        priors = ApplicationPriors({"known": 10.0})
        job = make_job()
        assert priors.estimate_total(job) == pytest.approx(10.0)

    def test_estimate_remaining_decreases_with_progress(self):
        priors = ApplicationPriors({"app": 10.0})
        job = make_job()
        before = priors.estimate_remaining(job)
        # Finish the LLM stage (2 seconds of observed work).
        stage = job.stage("llm")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(2.0)
        job.notify_stage_finished("llm", 2.0)
        after = priors.estimate_remaining(job)
        assert after < before
        assert after == pytest.approx(8.0)

    def test_remaining_never_negative(self):
        priors = ApplicationPriors({"app": 0.5})
        job = make_job()
        stage = job.stage("llm")
        stage.mark_running()
        stage.tasks[0].mark_running(0.0, "e")
        stage.tasks[0].mark_finished(2.0)
        job.notify_stage_finished("llm", 2.0)
        assert priors.estimate_remaining(job) > 0

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            ApplicationPriors({"app": 0.0})

    def test_unknown_application_lookup_raises(self):
        with pytest.raises(KeyError):
            ApplicationPriors({"app": 1.0}).mean_duration("other")
