"""CLI tests: ``python -m repro`` run / grid / validate / list-schedulers."""

import json

import pytest

from repro.api import ClusterSection, ExperimentSettings, ScenarioSpec, WorkloadSection
from repro.api.cli import main
from repro.simulator.cluster import ClusterConfig

TINY = ExperimentSettings(profile_jobs=30, prior_samples=15)


@pytest.fixture()
def spec_file(tmp_path):
    spec = ScenarioSpec(
        workload=WorkloadSection.closed_loop("mixed", num_jobs=6, arrival_rate=1.2, seed=7),
        cluster=ClusterSection(
            config=ClusterConfig(num_regular_executors=3, num_llm_executors=2, max_batch_size=4)
        ),
        settings=TINY,
    )
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return path


class TestRun:
    def test_run_prints_summary(self, spec_file, capsys):
        assert main(["run", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "fcfs" in out and "avg JCT" in out

    def test_run_writes_result_json(self, spec_file, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        assert main(["run", str(spec_file), "--output", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["metrics"]["num_jobs"] == 6
        assert payload["spec"]["scheduler"]["name"] == "fcfs"

    def test_run_missing_file_fails(self, capsys):
        assert main(["run", "/does/not/exist.json"]) == 1
        assert "cannot read spec file" in capsys.readouterr().err


class TestGrid:
    def test_grid_runs_axes(self, spec_file, tmp_path, capsys):
        out_path = tmp_path / "grid.json"
        code = main(
            [
                "grid",
                str(spec_file),
                "--axis",
                "scheduler.name=fcfs,fair",
                "--processes",
                "1",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        rows = json.loads(out_path.read_text())
        assert [row["overrides"]["scheduler.name"] for row in rows] == ["fcfs", "fair"]
        assert all(row["metrics"]["num_jobs"] == 6 for row in rows)

    def test_grid_requires_axes(self, spec_file, capsys):
        assert main(["grid", str(spec_file)]) == 1
        assert "--axis" in capsys.readouterr().err

    def test_grid_bad_axis_syntax(self, spec_file, capsys):
        assert main(["grid", str(spec_file), "--axis", "nonsense"]) == 1
        assert "invalid --axis" in capsys.readouterr().err


class TestValidate:
    def test_validate_ok(self, spec_file, capsys):
        assert main(["validate", str(spec_file)]) == 0
        assert "ok (schema v2, fcfs, closed-loop, 1 shard(s))" in capsys.readouterr().out

    def test_validate_reports_v1_upcast(self, spec_file, tmp_path, capsys):
        doc = json.loads(spec_file.read_text())
        doc["schema_version"] = 1
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps(doc))
        assert main(["validate", str(v1)]) == 0
        assert "ok (schema v1 upcast to v2," in capsys.readouterr().out

    def test_validate_reports_actionable_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"scheduler": {"name": "warp-speed"}}))
        assert main(["validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "unknown scheduler" in err and "fcfs" in err

    def test_validate_catches_section_conflicts(self, tmp_path, capsys):
        bad = tmp_path / "conflict.json"
        bad.write_text(
            json.dumps(
                {
                    "workload": {"mode": "closed"},
                    "cluster": {
                        "config": {"num_regular_executors": 2, "num_llm_executors": 1},
                        "pools": [{"name": "cpu", "task_type": "regular", "num_executors": 2}],
                    },
                }
            )
        )
        assert main(["validate", str(bad)]) == 1
        assert "not both" in capsys.readouterr().err


class TestListSchedulers:
    def test_lists_everything(self, capsys):
        assert main(["list-schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("fcfs", "llmsched", "srtf_preempt", "llmsched_wo_bn"):
            assert name in out
        assert "placement policies:" in out and "job routers:" in out
