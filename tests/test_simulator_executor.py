"""Tests for regular and batched LLM executors."""

import pytest

from repro.dag.task import Task, TaskType
from repro.simulator.executor import LLMExecutor, RegularExecutor
from repro.simulator.latency import DecodingLatencyProfile


def regular_task(work=2.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.REGULAR, work=work)


def llm_task(work=4.0):
    return Task(job_id="j", stage_id="s", task_type=TaskType.LLM, work=work)


class TestRegularExecutor:
    def test_assign_and_finish(self):
        executor = RegularExecutor("r0")
        task = regular_task(3.0)
        executor.assign(task, 1.0)
        assert not executor.is_idle
        assert executor.completion_time() == pytest.approx(4.0)
        finished = executor.finish_current(4.0)
        assert finished is task
        assert executor.is_idle
        assert executor.busy_time == pytest.approx(3.0)

    def test_cannot_double_assign(self):
        executor = RegularExecutor("r0")
        executor.assign(regular_task(), 0.0)
        with pytest.raises(RuntimeError):
            executor.assign(regular_task(), 0.0)

    def test_rejects_llm_task(self):
        with pytest.raises(ValueError):
            RegularExecutor("r0").assign(llm_task(), 0.0)

    def test_finish_when_idle_raises(self):
        with pytest.raises(RuntimeError):
            RegularExecutor("r0").finish_current(1.0)

    def test_completion_time_none_when_idle(self):
        assert RegularExecutor("r0").completion_time() is None


class TestLLMExecutorSingleTask:
    def test_single_task_runs_at_full_speed(self):
        executor = LLMExecutor("l0", max_batch_size=4, latency_profile=DecodingLatencyProfile(0.1))
        task = llm_task(5.0)
        executor.add_task(task, 0.0)
        finish_time, finishing_task = executor.next_completion()
        assert finishing_task is task
        assert finish_time == pytest.approx(5.0)
        executor.advance_to(5.0)
        executor.finish_task(task, 5.0)
        assert executor.is_idle
        assert task.is_finished

    def test_rejects_regular_task(self):
        with pytest.raises(ValueError):
            LLMExecutor("l0", 4).add_task(regular_task(), 0.0)

    def test_batch_capacity_enforced(self):
        executor = LLMExecutor("l0", max_batch_size=1)
        executor.add_task(llm_task(), 0.0)
        with pytest.raises(RuntimeError):
            executor.add_task(llm_task(), 0.0)

    def test_finish_with_remaining_work_raises(self):
        executor = LLMExecutor("l0", 4)
        task = llm_task(10.0)
        executor.add_task(task, 0.0)
        executor.advance_to(1.0)
        with pytest.raises(RuntimeError):
            executor.finish_task(task, 1.0)

    def test_time_cannot_move_backwards(self):
        executor = LLMExecutor("l0", 4)
        executor.add_task(llm_task(), 0.0)
        executor.advance_to(2.0)
        with pytest.raises(ValueError):
            executor.advance_to(1.0)


class TestLLMExecutorBatching:
    def test_batched_tasks_slow_down(self):
        """Two tasks sharing the batch progress at latency-scaled speed."""
        profile = DecodingLatencyProfile(slope=0.5)  # batch of 2 -> 1.5x latency
        executor = LLMExecutor("l0", max_batch_size=4, latency_profile=profile)
        a, b = llm_task(3.0), llm_task(6.0)
        executor.add_task(a, 0.0)
        executor.add_task(b, 0.0)
        finish_time, first = executor.next_completion()
        assert first is a
        # 3.0 units of work at speed 1/1.5 takes 4.5 seconds.
        assert finish_time == pytest.approx(4.5)

    def test_batch_change_rescales_remaining_duration(self):
        """Adding a request mid-flight stretches the remaining duration."""
        profile = DecodingLatencyProfile(slope=0.5)
        executor = LLMExecutor("l0", max_batch_size=4, latency_profile=profile)
        a = llm_task(4.0)
        executor.add_task(a, 0.0)
        # Run alone for 2 seconds -> 2.0 work left.
        executor.advance_to(2.0)
        assert a.remaining_work == pytest.approx(2.0)
        b = llm_task(10.0)
        executor.add_task(b, 2.0)
        finish_time, first = executor.next_completion()
        assert first is a
        # 2.0 remaining at speed 1/1.5 -> finishes 3 seconds later.
        assert finish_time == pytest.approx(5.0)

    def test_departure_speeds_up_remaining_tasks(self):
        profile = DecodingLatencyProfile(slope=1.0)  # batch 2 -> half speed
        executor = LLMExecutor("l0", max_batch_size=2, latency_profile=profile)
        a, b = llm_task(2.0), llm_task(4.0)
        executor.add_task(a, 0.0)
        executor.add_task(b, 0.0)
        # a finishes after 4 seconds of wall clock (2 work at half speed).
        executor.advance_to(4.0)
        executor.finish_task(a, 4.0)
        # b has 2 work left and now runs at full speed.
        finish_time, task = executor.next_completion()
        assert task is b
        assert finish_time == pytest.approx(6.0)

    def test_busy_time_accrues_only_when_running(self):
        executor = LLMExecutor("l0", 4)
        executor.advance_to(5.0)
        assert executor.busy_time == 0.0
        executor.add_task(llm_task(1.0), 5.0)
        executor.advance_to(6.0)
        assert executor.busy_time == pytest.approx(1.0)

    def test_finished_tasks_at_horizon(self):
        executor = LLMExecutor("l0", 4)
        a, b = llm_task(1.0), llm_task(5.0)
        executor.add_task(a, 0.0)
        executor.add_task(b, 0.0)
        done = executor.finished_tasks_at(1.1)
        assert a in done and b not in done
