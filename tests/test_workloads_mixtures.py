"""Tests for workload mixtures and arrival processes."""

import numpy as np
import pytest

from repro.utils.rng import make_rng
from repro.workloads.mixtures import (
    WorkloadSpec,
    WorkloadType,
    default_applications,
    generate_workload,
    poisson_arrival_times,
)


class TestPoissonArrivals:
    def test_monotonically_increasing(self):
        times = poisson_arrival_times(100, 0.9, make_rng(0))
        assert all(b >= a for a, b in zip(times, times[1:], strict=False))

    def test_rate_approximately_respected(self):
        times = poisson_arrival_times(3000, 2.0, make_rng(1))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.5, rel=0.1)

    def test_zero_count(self):
        assert poisson_arrival_times(0, 1.0, make_rng(0)) == []

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(10, 0.0, make_rng(0))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(-1, 1.0, make_rng(0))


class TestWorkloadSpec:
    def test_invalid_num_jobs(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_jobs=0)

    def test_application_names_per_type(self):
        assert len(WorkloadSpec(workload_type=WorkloadType.MIXED).application_names) == 6
        assert WorkloadSpec(workload_type=WorkloadType.PREDEFINED).application_names == [
            "sequence_sorting",
            "document_merging",
        ]
        assert WorkloadSpec(workload_type=WorkloadType.CHAIN).application_names == [
            "code_generation",
            "web_search",
        ]
        assert WorkloadSpec(workload_type=WorkloadType.PLANNING).application_names == [
            "task_automation",
            "llm_compiler",
        ]


class TestGenerateWorkload:
    def test_job_count_and_sorted_arrivals(self):
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=60, seed=0)
        jobs = generate_workload(spec)
        assert len(jobs) == 60
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_uniform_application_mix(self):
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=60, seed=1)
        jobs = generate_workload(spec)
        counts = {}
        for job in jobs:
            counts[job.application] = counts.get(job.application, 0) + 1
        assert len(counts) == 6
        assert all(count == 10 for count in counts.values())

    def test_chain_workload_uses_only_chain_apps(self):
        spec = WorkloadSpec(workload_type=WorkloadType.CHAIN, num_jobs=20, seed=2)
        jobs = generate_workload(spec)
        assert {j.application for j in jobs} == {"code_generation", "web_search"}

    def test_deterministic_for_same_seed(self):
        spec = WorkloadSpec(workload_type=WorkloadType.PLANNING, num_jobs=30, seed=5)
        jobs_a = generate_workload(spec)
        jobs_b = generate_workload(spec)
        assert [j.application for j in jobs_a] == [j.application for j in jobs_b]
        assert [j.arrival_time for j in jobs_a] == pytest.approx(
            [j.arrival_time for j in jobs_b]
        )
        assert [j.true_total_work for j in jobs_a] == pytest.approx(
            [j.true_total_work for j in jobs_b]
        )

    def test_different_seeds_differ(self):
        base = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=30, seed=1)
        other = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=30, seed=2)
        work_a = [j.true_total_work for j in generate_workload(base)]
        work_b = [j.true_total_work for j in generate_workload(other)]
        assert work_a != pytest.approx(work_b)

    def test_missing_application_rejected(self):
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=10)
        apps = default_applications()
        del apps["web_search"]
        with pytest.raises(ValueError):
            generate_workload(spec, applications=apps)

    def test_unique_job_ids(self):
        spec = WorkloadSpec(workload_type=WorkloadType.MIXED, num_jobs=40, seed=3)
        jobs = generate_workload(spec)
        assert len({j.job_id for j in jobs}) == 40
