"""Tests for tabular CPDs."""

import numpy as np
import pytest

from repro.bayes.cpd import TabularCPD


class TestConstruction:
    def test_root_cpd_from_1d(self):
        cpd = TabularCPD("a", 2, np.array([0.3, 0.7]))
        assert cpd.parents == []
        assert cpd.table.shape == (2, 1)

    def test_columns_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TabularCPD("a", 2, np.array([[0.3], [0.3]]))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            TabularCPD("a", 2, np.array([[-0.1], [1.1]]))

    def test_shape_must_match_parent_cards(self):
        with pytest.raises(ValueError):
            TabularCPD("a", 2, np.ones((2, 3)) / 2, parents=["b"], parent_cardinalities={"b": 2})

    def test_uniform_constructor(self):
        cpd = TabularCPD.uniform("a", 4, parents=["b"], parent_cardinalities={"b": 3})
        assert cpd.table.shape == (4, 3)
        assert np.allclose(cpd.table, 0.25)

    def test_from_marginal(self):
        cpd = TabularCPD.from_marginal("a", [0.2, 0.8])
        assert cpd.table[:, 0] == pytest.approx([0.2, 0.8])


class TestColumnFor:
    def test_root_column(self):
        cpd = TabularCPD.from_marginal("a", [0.2, 0.8])
        assert cpd.column_for({}) == pytest.approx([0.2, 0.8])

    def test_parent_indexing_row_major(self):
        # parents = [b, c], b has card 2, c has card 3; column = b * 3 + c
        table = np.zeros((2, 6))
        for col in range(6):
            table[0, col] = col / 10.0
            table[1, col] = 1.0 - col / 10.0
        cpd = TabularCPD(
            "a", 2, table, parents=["b", "c"], parent_cardinalities={"b": 2, "c": 3}
        )
        assert cpd.column_for({"b": 1, "c": 2})[0] == pytest.approx(0.5)
        assert cpd.column_for({"b": 0, "c": 1})[0] == pytest.approx(0.1)

    def test_out_of_range_parent_state_raises(self):
        cpd = TabularCPD.uniform("a", 2, parents=["b"], parent_cardinalities={"b": 2})
        with pytest.raises(ValueError):
            cpd.column_for({"b": 5})


class TestToFactor:
    def test_factor_values_match_table(self):
        table = np.array([[0.9, 0.2], [0.1, 0.8]])
        cpd = TabularCPD("a", 2, table, parents=["b"], parent_cardinalities={"b": 2})
        factor = cpd.to_factor()
        assert set(factor.variables) == {"a", "b"}
        assert factor.get({"a": 0, "b": 0}) == pytest.approx(0.9)
        assert factor.get({"a": 1, "b": 1}) == pytest.approx(0.8)

    def test_root_factor(self):
        cpd = TabularCPD.from_marginal("a", [0.25, 0.75])
        factor = cpd.to_factor()
        assert factor.variables == ["a"]
        assert factor.values == pytest.approx([0.25, 0.75])
